// Package obs is the observability layer of the system: a lock-cheap
// runtime metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms and Welford statistics), a structured trace layer with
// pluggable sinks, a chrome://tracing exporter for committed schedules and
// worker timelines, and an HTTP debug endpoint.
//
// The package exists to make every scheduling decision traceable (which
// chain was tried, which maximal hole was probed, which tie-breaker fired)
// and every hot path measurable while it runs, without perturbing the
// unobserved fast path: all hooks are nil-checked at the call site, so a
// scheduler, arbitrator, runtime or sim engine without an attached
// Observer pays no instrumentation cost.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"

	"milan/internal/metrics"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (delta may be negative only to correct over-counting;
// counters are conventionally monotonic).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge: a point-in-time level (queue depth,
// reserved area, alive workers).
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Hist is a fixed-bucket histogram over [Lo, Hi) with atomic buckets, safe
// for concurrent Observe inside hot loops.  Observations outside the range
// saturate into under/over buckets (they still count toward N and Sum).
//
// Two bucket layouts exist: the classic uniform layout (NewHist: n equal
// buckets over [lo, hi)) and a log-linear layout (NewHistLogLinear:
// power-of-two octaves each split into `sub` equal sub-buckets, the
// HDR-histogram shape), which keeps relative error bounded across many
// decades of latency.  Both index in O(1) with no locks.
type Hist struct {
	lo, hi  float64
	width   float64
	buckets []atomic.Int64
	under   atomic.Int64
	over    atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-added

	// Log-linear layout (nil bounds ⇒ uniform).  bounds[i] is bucket i's
	// upper edge; bucket i covers [edge(i-1), bounds[i]) with edge(-1)=lo.
	bounds []float64
	oct0   int // exponent of the first octave: lo == 2^oct0
	sub    int // sub-buckets per octave
}

// NewHist returns a histogram with n buckets over [lo, hi).
func NewHist(lo, hi float64, n int) *Hist {
	if n < 1 || !(hi > lo) {
		panic(fmt.Sprintf("obs: bad histogram range [%v,%v) x%d", lo, hi, n))
	}
	return &Hist{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]atomic.Int64, n)}
}

// NewHistLogLinear returns a log-linear histogram covering [2^oct0,
// 2^(oct0+octaves)) with sub equal-width sub-buckets per power-of-two
// octave (octaves*sub buckets total).  Relative bucket width is bounded
// by 1/sub everywhere in range, so one histogram spans nanoseconds to
// seconds without the uniform layout's resolution collapse.
func NewHistLogLinear(oct0, octaves, sub int) *Hist {
	if octaves < 1 || sub < 1 {
		panic(fmt.Sprintf("obs: bad log-linear shape octaves=%d sub=%d", octaves, sub))
	}
	bounds := LogLinearBounds(oct0, octaves, sub)
	return &Hist{
		lo:      math.Ldexp(1, oct0),
		hi:      bounds[len(bounds)-1],
		buckets: make([]atomic.Int64, len(bounds)),
		bounds:  bounds,
		oct0:    oct0,
		sub:     sub,
	}
}

// LogLinearBounds returns the bucket upper edges of the log-linear layout
// (exported so decoders and tests can reconstruct and verify shapes).
func LogLinearBounds(oct0, octaves, sub int) []float64 {
	bounds := make([]float64, 0, octaves*sub)
	for o := 0; o < octaves; o++ {
		base := math.Ldexp(1, oct0+o)
		for j := 1; j <= sub; j++ {
			bounds = append(bounds, base+base*float64(j)/float64(sub))
		}
	}
	return bounds
}

// logLinearIndex locates x (known to be in [lo, hi)) in O(1): the octave
// comes from the float's exponent (Frexp), the sub-bucket from the
// mantissa's position within the octave.
func (h *Hist) logLinearIndex(x float64) int {
	frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
	oct := exp - 1 - h.oct0    // octave of x relative to the first
	// Position within the octave: x/2^octBase - 1 in [0, 1).
	j := int((frac*2 - 1) * float64(h.sub))
	if j >= h.sub { // guard float rounding at the octave edge
		j = h.sub - 1
	}
	i := oct*h.sub + j
	if i < 0 {
		return 0
	}
	if i >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}

// Observe incorporates one observation.
func (h *Hist) Observe(x float64) {
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	switch {
	case x < h.lo:
		h.under.Add(1)
	case x >= h.hi:
		h.over.Add(1)
	case h.bounds != nil:
		h.buckets[h.logLinearIndex(x)].Add(1)
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i].Add(1)
	}
}

// Snapshot returns a point-in-time copy of the histogram's state.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Lo:      h.lo,
		Hi:      h.hi,
		Buckets: make([]int64, len(h.buckets)),
		Under:   h.under.Load(),
		Over:    h.over.Load(),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Bounds:  h.bounds, // immutable after construction, safe to share
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable histogram state, mergeable across shards or
// runs and serializable to JSON.  Bounds, when non-nil, gives each
// bucket's upper edge (the log-linear layout); nil Bounds means the
// classic uniform layout over [Lo, Hi).
type HistSnapshot struct {
	Lo      float64   `json:"lo"`
	Hi      float64   `json:"hi"`
	Buckets []int64   `json:"buckets"`
	Under   int64     `json:"under"`
	Over    int64     `json:"over"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds,omitempty"`
}

// BucketUpper returns bucket i's upper edge under either layout.
func (s HistSnapshot) BucketUpper(i int) float64 {
	if s.Bounds != nil {
		return s.Bounds[i]
	}
	return s.Lo + float64(i+1)*(s.Hi-s.Lo)/float64(len(s.Buckets))
}

// bucketLower returns bucket i's lower edge under either layout.
func (s HistSnapshot) bucketLower(i int) float64 {
	if i == 0 {
		return s.Lo
	}
	return s.BucketUpper(i - 1)
}

// SameShape reports whether two snapshots can merge: identical range,
// bucket count, and bucket-edge layout.
func (s HistSnapshot) SameShape(o HistSnapshot) bool {
	if s.Lo != o.Lo || s.Hi != o.Hi || len(s.Buckets) != len(o.Buckets) || len(s.Bounds) != len(o.Bounds) {
		return false
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return false
		}
	}
	return true
}

// Mean returns the mean observation (0 with no observations).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an approximate q-quantile (q in [0, 1]) assuming
// observations are uniform within buckets; out-of-range observations clamp
// to the range edges.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return s.Lo
	}
	target := q * float64(s.Count)
	cum := float64(s.Under)
	if target <= cum {
		return s.Lo
	}
	for i, c := range s.Buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			lo := s.bucketLower(i)
			return lo + frac*(s.BucketUpper(i)-lo)
		}
		cum = next
	}
	return s.Hi
}

// Merge folds another snapshot into this one.  The snapshots must have the
// same bucket shape.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if !s.SameShape(o) {
		return fmt.Errorf("obs: merging mismatched histograms [%v,%v)x%d/%d and [%v,%v)x%d/%d",
			s.Lo, s.Hi, len(s.Buckets), len(s.Bounds), o.Lo, o.Hi, len(o.Buckets), len(o.Bounds))
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Under += o.Under
	s.Over += o.Over
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Stat is a mutex-protected Welford accumulator: mean, variance and CI of a
// stream of observations.  It reuses the numerically stable one-pass
// algorithm from internal/metrics.
type Stat struct {
	mu sync.Mutex
	w  metrics.Welford
}

// Observe incorporates one observation.
func (s *Stat) Observe(x float64) {
	s.mu.Lock()
	s.w.Add(x)
	s.mu.Unlock()
}

// Snapshot returns the accumulated statistics.
func (s *Stat) Snapshot() StatSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StatSnapshot{N: s.w.N(), Mean: s.w.Mean(), Std: s.w.Std(), CI95: s.w.CI95()}
}

// StatSnapshot is an immutable Stat state.
type StatSnapshot struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
}

// Registry is a named collection of metrics.  Metric lookup takes a short
// RWMutex; the metrics themselves are atomic, so the idiomatic pattern in
// hot code is to resolve each metric once and retain the pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	stats    map[string]*Stat
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		stats:    make(map[string]*Stat),
		help:     make(map[string]string),
	}
}

// Describe registers one-line help text for the named metric; the
// Prometheus exposition emits it as the metric's # HELP line.  Metrics
// without registered help get a generated placeholder so every family
// still carries HELP metadata.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// HelpFor returns the registered help text for name ("" if none).
func (r *Registry) HelpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// Help returns a copy of the registered help strings, keyed by metric
// name (used by telemetry snapshot frames so an aggregator can render
// HELP lines for metrics it has never seen locally).
func (r *Registry) Help() map[string]string { return r.helpSnapshot() }

// helpSnapshot copies the help map for exposition.
func (r *Registry) helpSnapshot() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.help))
	for k, v := range r.help {
		out[k] = v
	}
	return out
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given shape
// on first use (the shape of an existing histogram is kept).
func (r *Registry) Histogram(name string, lo, hi float64, n int) *Hist {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHist(lo, hi, n)
	r.hists[name] = h
	return h
}

// HistogramLogLinear returns the named log-linear histogram, creating it
// with the given shape on first use (the shape of an existing histogram
// is kept, exactly like Histogram).
func (r *Registry) HistogramLogLinear(name string, oct0, octaves, sub int) *Hist {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistLogLinear(oct0, octaves, sub)
	r.hists[name] = h
	return h
}

// Stat returns the named Welford accumulator, creating it on first use.
func (r *Registry) Stat(name string) *Stat {
	r.mu.RLock()
	s, ok := r.stats[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.stats[name]; ok {
		return s
	}
	s = &Stat{}
	r.stats[name] = s
	return s
}

// Snapshot captures the registry's state: a consistent-enough copy for
// reporting (individual metrics are read atomically; the set is read under
// the registry lock).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		Stats:      make(map[string]StatSnapshot, len(r.stats)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, st := range r.stats {
		s.Stats[name] = st.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time registry state, serializable and mergeable.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Stats      map[string]StatSnapshot `json:"stats"`
}

// Clone returns a deep copy of the snapshot (bucket slices included),
// safe to mutate or Merge into without aliasing the original.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
		Stats:      make(map[string]StatSnapshot, len(s.Stats)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, h := range s.Histograms {
		h.Buckets = append([]int64(nil), h.Buckets...)
		out.Histograms[k] = h
	}
	for k, v := range s.Stats {
		out.Stats[k] = v
	}
	return out
}

// Merge folds another snapshot into this one: counters and histogram
// buckets add, gauges take the other side's value (last write wins), stats
// merge their moments.
func (s *Snapshot) Merge(o Snapshot) error {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistSnapshot)
	}
	if s.Stats == nil {
		s.Stats = make(map[string]StatSnapshot)
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] = v
	}
	for name, h := range o.Histograms {
		mine, ok := s.Histograms[name]
		if !ok {
			cp := h
			cp.Buckets = append([]int64(nil), h.Buckets...)
			s.Histograms[name] = cp
			continue
		}
		mine.Buckets = append([]int64(nil), mine.Buckets...)
		if err := mine.Merge(h); err != nil {
			return err
		}
		s.Histograms[name] = mine
	}
	for name, st := range o.Stats {
		mine, ok := s.Stats[name]
		if !ok {
			s.Stats[name] = st
			continue
		}
		// Approximate merge of summary stats: weight means by N.  (Exact
		// variance merging needs the raw moments; Stat.Snapshot exposes
		// only the summary, which suffices for reporting.)
		n := mine.N + st.N
		if n > 0 {
			mine.Mean = (mine.Mean*float64(mine.N) + st.Mean*float64(st.N)) / float64(n)
		}
		mine.N = n
		s.Stats[name] = mine
	}
	return nil
}

// WriteJSON writes the registry snapshot as indented expvar-style JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteTable renders the registry snapshot as a sorted, tab-aligned table:
// one row per metric, histograms summarized as count/mean/p50/p99.
func (r *Registry) WriteTable(w io.Writer) error {
	s := r.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\ttype\tvalue")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "%s\tcounter\t%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "%s\tgauge\t%.6g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(tw, "%s\thistogram\tn=%d mean=%.4g p50=%.4g p99=%.4g\n",
			name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
	}
	for _, name := range sortedKeys(s.Stats) {
		st := s.Stats[name]
		fmt.Fprintf(tw, "%s\tstat\tn=%d mean=%.4g std=%.4g ci95=%.4g\n",
			name, st.N, st.Mean, st.Std, st.CI95)
	}
	return tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
