package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistObserveAndSnapshot(t *testing.T) {
	h := NewHist(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Observe(x)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Under != 1 || s.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", s.Under, s.Over)
	}
	if s.Buckets[0] != 2 { // 0 and 0.5
		t.Fatalf("bucket0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[5] != 1 || s.Buckets[9] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	wantSum := -1 + 0 + 0.5 + 5 + 9.999 + 10 + 42
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if mean := s.Mean(); math.Abs(mean-wantSum/7) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); math.Abs(p50-50) > 1.5 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p99 := s.Quantile(0.99); math.Abs(p99-99) > 1.5 {
		t.Fatalf("p99 = %v, want ~99", p99)
	}
	empty := NewHist(2, 4, 2).Snapshot()
	if q := empty.Quantile(0.5); q != 2 {
		t.Fatalf("empty quantile = %v, want lo", q)
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist(0, 10, 5)
	b := NewHist(0, 10, 5)
	a.Observe(1)
	a.Observe(11) // over
	b.Observe(1)
	b.Observe(-1) // under
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 4 || sa.Under != 1 || sa.Over != 1 || sa.Buckets[0] != 2 {
		t.Fatalf("merged = %+v", sa)
	}
	mismatched := NewHist(0, 5, 5).Snapshot()
	if err := sa.Merge(mismatched); err == nil {
		t.Fatal("merging mismatched shapes succeeded")
	}
}

func TestStat(t *testing.T) {
	var s Stat
	for _, x := range []float64{1, 2, 3, 4} {
		s.Observe(x)
	}
	snap := s.Snapshot()
	if snap.N != 4 || math.Abs(snap.Mean-2.5) > 1e-12 {
		t.Fatalf("stat = %+v", snap)
	}
	if snap.Std <= 0 {
		t.Fatalf("std = %v, want > 0", snap.Std)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter identity lost across lookups")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge identity lost across lookups")
	}
	h := r.Histogram("h", 0, 1, 10)
	if r.Histogram("h", 0, 99, 3) != h {
		t.Fatal("histogram identity lost across lookups")
	}
	if len(h.Snapshot().Buckets) != 10 {
		t.Fatal("second lookup changed histogram shape")
	}
	if r.Stat("s") != r.Stat("s") {
		t.Fatal("stat identity lost across lookups")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", 0, 1, 4).Observe(0.5)
				r.Stat("s").Observe(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["c"])
	}
	if s.Gauges["g"] != 8000 {
		t.Fatalf("gauge = %v, want 8000", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", s.Histograms["h"].Count)
	}
	if s.Stats["s"].N != 8000 {
		t.Fatalf("stat n = %d, want 8000", s.Stats["s"].N)
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("jobs").Add(3)
	r2.Counter("jobs").Add(4)
	r2.Counter("only2").Inc()
	r1.Gauge("level").Set(1)
	r2.Gauge("level").Set(2)
	r1.Histogram("lat", 0, 1, 4).Observe(0.1)
	r2.Histogram("lat", 0, 1, 4).Observe(0.9)
	r1.Stat("st").Observe(1)
	r2.Stat("st").Observe(3)

	s := r1.Snapshot()
	if err := s.Merge(r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s.Counters["jobs"] != 7 || s.Counters["only2"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["level"] != 2 {
		t.Fatalf("gauge = %v, want 2 (last write wins)", s.Gauges["level"])
	}
	if s.Histograms["lat"].Count != 2 {
		t.Fatalf("hist count = %d, want 2", s.Histograms["lat"].Count)
	}
	if st := s.Stats["st"]; st.N != 2 || math.Abs(st.Mean-2) > 1e-12 {
		t.Fatalf("stat = %+v", st)
	}
	// Merge into an empty snapshot.
	var empty Snapshot
	if err := empty.Merge(s); err != nil {
		t.Fatal(err)
	}
	if empty.Counters["jobs"] != 7 {
		t.Fatalf("empty-merge counters = %v", empty.Counters)
	}
}

func TestWriteJSONAndTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("admitted").Add(12)
	r.Gauge("area").Set(3.5)
	r.Histogram("lat", 0, 1, 4).Observe(0.25)
	r.Stat("quality").Observe(0.8)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output not parseable: %v", err)
	}
	if snap.Counters["admitted"] != 12 || snap.Gauges["area"] != 3.5 {
		t.Fatalf("round-trip = %+v", snap)
	}

	buf.Reset()
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metric", "admitted", "counter", "12", "area", "gauge", "lat", "histogram", "quality", "stat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestNewHistPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{{0, 1, 0}, {1, 1, 4}, {2, 1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHist(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHist(tc.lo, tc.hi, tc.n)
		}()
	}
}
