package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the observer's debug endpoint:
//
//	/metrics  expvar-style JSON snapshot of the metrics registry
//	/trace    recent ring-buffer events as JSON (?n=K limits the count)
//	/spans    completed request spans as JSON (empty without tracing)
//	/gantt    chrome://tracing-loadable JSON of the collected schedule,
//	          worker timelines, decision events and request span trees
//	/healthz  liveness + registered readiness checks (health.go)
//	/         a tiny index
//
// Extensions mounted via Handle (e.g. the SLO engine's /slo) are
// dispatched dynamically: they may be added before or after Handler() is
// called.  Mount it on any mux or serve it directly
// (qosnet.Server.EnableDebug and junctiond -debug-addr do exactly that).
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("milan debug endpoint\n\n/metrics  registry snapshot (JSON; ?format=prom for Prometheus text)\n/trace    recent trace events (JSON, ?n=K)\n/spans    completed request spans (JSON)\n/gantt    chrome://tracing schedule download\n/healthz  liveness + readiness checks\n"))
		for _, p := range o.extraRoutes() {
			help := ""
			o.webMu.Lock()
			if r, ok := o.extra[p]; ok {
				help = r.help
			}
			o.webMu.Unlock()
			fmt.Fprintf(w, "%-9s %s\n", p, help)
		}
	})
	mux.HandleFunc("/healthz", o.healthz)
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := o.tracer.Spans() // nil-safe
		if spans == nil {
			spans = []SpanRec{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Content negotiation: ?format=prom (or a Prometheus scraper's
		// Accept header) selects the text exposition format; the default
		// stays the expvar-style JSON snapshot.
		if wantsProm(r) {
			w.Header().Set("Content-Type", PromContentType)
			if err := o.Reg.WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := o.Reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		evs := o.Recent(n)
		if evs == nil {
			evs = []Event{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(evs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/gantt", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if err := o.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h, ok := o.lookupExtra(r.URL.Path); ok {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}
