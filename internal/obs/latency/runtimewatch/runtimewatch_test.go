package runtimewatch

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"milan/internal/obs"
)

func TestPollPopulatesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(reg)
	// Force a GC so cumulative GC metrics are non-trivial, and some heap
	// traffic so live bytes are nonzero.
	runtime.GC()
	w.Poll()
	runtime.GC()
	w.Poll()

	s := reg.Snapshot()
	if g, ok := s.Gauges["runtime_goroutines"]; !ok || g < 1 {
		t.Fatalf("runtime_goroutines = %v (present=%v)", g, ok)
	}
	if g, ok := s.Gauges["runtime_heap_live_bytes"]; !ok || g <= 0 {
		t.Fatalf("runtime_heap_live_bytes = %v (present=%v)", g, ok)
	}
	if g, ok := s.Gauges["runtime_mem_total_bytes"]; !ok || g <= 0 {
		t.Fatalf("runtime_mem_total_bytes = %v (present=%v)", g, ok)
	}
	if c, ok := s.Counters["runtime_gc_cycles_total"]; !ok || c < 1 {
		t.Fatalf("runtime_gc_cycles_total = %v (present=%v): a forced GC between polls must show", c, ok)
	}
	// The profile-delta counters exist even when profiling is disarmed.
	for _, name := range []string{"runtime_mutex_profile_records_total", "runtime_block_profile_records_total"} {
		if _, ok := s.Counters[name]; !ok {
			t.Fatalf("%s not registered", name)
		}
	}
}

// With the mutex profile armed, contention between polls must surface
// as profile-record deltas.
func TestMutexProfileDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(reg)
	w.Poll() // prime the previous counts

	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				mu.Lock()
				time.Sleep(10 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	w.Poll()
	if c := reg.Snapshot().Counters["runtime_mutex_profile_records_total"]; c < 1 {
		t.Fatalf("mutex contention produced no profile-record delta (count=%d)", c)
	}
}

func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(reg)
	w.Start(time.Millisecond)
	w.Start(time.Millisecond) // idempotent
	time.Sleep(10 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
	if g := reg.Snapshot().Gauges["runtime_goroutines"]; g < 1 {
		t.Fatalf("polling loop never ran (goroutines=%v)", g)
	}
	// Restart after stop works.
	w.Start(time.Millisecond)
	w.Stop()
}

func TestNilWatcherSafe(t *testing.T) {
	var w *Watcher
	w.Poll()
	w.Start(time.Millisecond)
	w.Stop()
}
