// Package runtimewatch polls the Go runtime's health signals — GC pause
// and scheduler latency distributions, goroutine count, heap size — from
// runtime/metrics, plus mutex/block profile record deltas, into the
// mergeable obs.Registry, so admission latency anomalies can be
// correlated with runtime pressure (a GC pause spike explains a plan-
// phase tail better than any amount of re-profiling after the fact).
//
// The watcher intersects its wanted metric names with what the running
// toolchain actually exports (runtime/metrics names vary across Go
// releases), so it degrades gracefully instead of failing to build or
// panicking on older runtimes.
package runtimewatch

import (
	"math"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"

	"milan/internal/obs"
)

// runtimeMetric maps one runtime/metrics name (with fallbacks for
// renamed metrics across Go releases) onto registry instruments.
type runtimeMetric struct {
	names []string // first available name wins
	apply func(w *Watcher, v metrics.Value)
}

var wanted = []runtimeMetric{
	{
		names: []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"},
		apply: func(w *Watcher, v metrics.Value) {
			h := v.Float64Histogram()
			w.gcPauseP50.Set(histQuantile(h, 0.50) * 1e9)
			w.gcPauseP99.Set(histQuantile(h, 0.99) * 1e9)
		},
	},
	{
		names: []string{"/sched/latencies:seconds"},
		apply: func(w *Watcher, v metrics.Value) {
			h := v.Float64Histogram()
			w.schedP50.Set(histQuantile(h, 0.50) * 1e9)
			w.schedP99.Set(histQuantile(h, 0.99) * 1e9)
		},
	},
	{
		names: []string{"/sched/goroutines:goroutines"},
		apply: func(w *Watcher, v metrics.Value) { w.goroutines.Set(float64(v.Uint64())) },
	},
	{
		names: []string{"/memory/classes/heap/objects:bytes"},
		apply: func(w *Watcher, v metrics.Value) { w.heapLive.Set(float64(v.Uint64())) },
	},
	{
		names: []string{"/memory/classes/total:bytes"},
		apply: func(w *Watcher, v metrics.Value) { w.memTotal.Set(float64(v.Uint64())) },
	},
	{
		names: []string{"/gc/cycles/total:gc-cycles"},
		apply: func(w *Watcher, v metrics.Value) {
			n := int64(v.Uint64())
			if d := n - w.prevGC; d > 0 && w.prevGC >= 0 {
				w.gcCycles.Add(d)
			} else if w.prevGC < 0 {
				w.gcCycles.Add(n)
			}
			w.prevGC = n
		},
	},
	{
		names: []string{"/sync/mutex/wait/total:seconds"},
		apply: func(w *Watcher, v metrics.Value) { w.mutexWait.Set(v.Float64()) },
	},
}

// Watcher polls runtime health into a registry.  Poll is the unit of
// work (call it from tests for deterministic coverage); Start/Stop run
// it on a cadence for daemons.
type Watcher struct {
	reg     *obs.Registry
	samples []metrics.Sample
	applies []func(w *Watcher, v metrics.Value)

	gcPauseP50, gcPauseP99 *obs.Gauge
	schedP50, schedP99     *obs.Gauge
	goroutines             *obs.Gauge
	heapLive, memTotal     *obs.Gauge
	mutexWait              *obs.Gauge
	gcCycles               *obs.Counter
	mutexRecs, blockRecs   *obs.Counter

	prevGC    int64
	prevMutex int64
	prevBlock int64

	mu      sync.Mutex
	stop    chan struct{}
	stopped sync.WaitGroup
}

// New builds a watcher over reg, registering its metric families.
func New(reg *obs.Registry) *Watcher {
	w := &Watcher{reg: reg, prevGC: -1, prevMutex: -1, prevBlock: -1}
	describe := func(name, help string) *obs.Gauge {
		reg.Describe(name, help)
		return reg.Gauge(name)
	}
	w.gcPauseP50 = describe("runtime_gc_pause_p50_ns", "GC stop-the-world pause p50 (cumulative distribution), nanoseconds.")
	w.gcPauseP99 = describe("runtime_gc_pause_p99_ns", "GC stop-the-world pause p99 (cumulative distribution), nanoseconds.")
	w.schedP50 = describe("runtime_sched_latency_p50_ns", "Goroutine scheduling latency p50 (cumulative distribution), nanoseconds.")
	w.schedP99 = describe("runtime_sched_latency_p99_ns", "Goroutine scheduling latency p99 (cumulative distribution), nanoseconds.")
	w.goroutines = describe("runtime_goroutines", "Live goroutine count.")
	w.heapLive = describe("runtime_heap_live_bytes", "Bytes of live heap objects.")
	w.memTotal = describe("runtime_mem_total_bytes", "Total bytes of memory mapped by the Go runtime.")
	w.mutexWait = describe("runtime_mutex_wait_seconds", "Cumulative seconds goroutines have waited on contended mutexes.")
	reg.Describe("runtime_gc_cycles_total", "Completed GC cycles since the watcher started.")
	w.gcCycles = reg.Counter("runtime_gc_cycles_total")
	reg.Describe("runtime_mutex_profile_records_total", "New mutex-contention profile records since the watcher started.")
	w.mutexRecs = reg.Counter("runtime_mutex_profile_records_total")
	reg.Describe("runtime_block_profile_records_total", "New blocking profile records since the watcher started.")
	w.blockRecs = reg.Counter("runtime_block_profile_records_total")

	available := make(map[string]bool)
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	for _, m := range wanted {
		for _, name := range m.names {
			if available[name] {
				w.samples = append(w.samples, metrics.Sample{Name: name})
				w.applies = append(w.applies, m.apply)
				break
			}
		}
	}
	return w
}

// Poll reads one round of runtime metrics and profile deltas into the
// registry.
func (w *Watcher) Poll() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) > 0 {
		metrics.Read(w.samples)
		for i := range w.samples {
			w.applies[i](w, w.samples[i].Value)
		}
	}
	// Mutex/block profile record deltas: the counts grow only while the
	// respective profile rates are armed (runtime.SetMutexProfileFraction
	// / runtime.SetBlockProfileRate), so these read as flat zeros until a
	// daemon opts in — and as contention growth rates after.
	if p := pprof.Lookup("mutex"); p != nil {
		n := int64(p.Count())
		if w.prevMutex >= 0 && n > w.prevMutex {
			w.mutexRecs.Add(n - w.prevMutex)
		}
		w.prevMutex = n
	}
	if p := pprof.Lookup("block"); p != nil {
		n := int64(p.Count())
		if w.prevBlock >= 0 && n > w.prevBlock {
			w.blockRecs.Add(n - w.prevBlock)
		}
		w.prevBlock = n
	}
}

// Start launches the polling loop (idempotent until Stop).
func (w *Watcher) Start(interval time.Duration) {
	if w == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	w.stop = stop
	w.mu.Unlock()
	w.stopped.Add(1)
	go func() {
		defer w.stopped.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.Poll()
			}
		}
	}()
}

// Stop halts the polling loop.
func (w *Watcher) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	stop := w.stop
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		w.stopped.Wait()
	}
}

// histQuantile reads an approximate quantile off a runtime/metrics
// cumulative histogram, returning the covering bucket's upper edge
// (conservative for tail quantiles).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target && c > 0 {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				lo := h.Buckets[i]
				if math.IsInf(lo, -1) {
					return 0
				}
				return lo
			}
			return hi
		}
	}
	return 0
}
