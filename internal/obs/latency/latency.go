// Package latency is the admission latency anatomy plane: it times every
// admission through its phases (route → probe → plan → reserve → journal
// → ack) with cheap monotonic timers that work even when span tracing is
// sampled out, records per-phase and end-to-end log-linear histograms
// into the mergeable obs.Registry, and captures tail exemplars — the
// trace IDs and phase waterfalls of the slowest requests per window —
// into a bounded ring.
//
// The phase timer itself (Rec) lives in the dependency-free subpackage
// internal/obs/latency/phase so the admission stack (qos, fed, durable)
// can mark phases without importing the registry; this package aliases
// its types, so callers that can see obs use latency.Rec and
// latency.PhaseRoute directly.
//
// The plane follows the codebase's zero-cost observability contract: a
// nil *Plane produces inert Recs whose methods are no-ops, so an
// uninstrumented admission path pays nothing.  With the plane attached,
// the hot path is lock-free: histogram observes are atomic, and the
// exemplar ring is guarded by an atomic slowness threshold so only
// genuine tail requests take its mutex.
package latency

import (
	"sync/atomic"
	"time"

	"milan/internal/obs"
	"milan/internal/obs/latency/phase"
)

// Phase and Rec alias the leaf package's types: one type, two import
// paths, so qos.TimedNegotiator and this plane agree exactly.
type (
	Phase = phase.Phase
	Rec   = phase.Rec
)

// Phase constants re-exported under this package's naming.
const (
	PhaseRoute   = phase.Route
	PhaseProbe   = phase.Probe
	PhasePlan    = phase.Plan
	PhaseReserve = phase.Reserve
	PhaseJournal = phase.Journal
	PhaseAck     = phase.Ack

	// NumPhases is the number of phases (array sizing).
	NumPhases = phase.Num
)

// PhaseNames returns the phase names in waterfall order.
func PhaseNames() [NumPhases]string { return phase.Names() }

// ParsePhase maps a phase name back to its index (-1 if unknown).
func ParsePhase(name string) int { return phase.Parse(name) }

// Histogram shape: log-linear from 2^8 ns (256ns) over 25 octaves
// (~8.6s) with 8 sub-buckets per octave — 200 buckets, ≤12.5% relative
// width across the whole span.
const (
	histOct0    = 8
	histOctaves = 25
	histSub     = 8
)

// Config tunes one Plane.
type Config struct {
	// Registry receives the phase histograms (required).
	Registry *obs.Registry
	// ExemplarK bounds the slowest-requests ring per window (default 8).
	ExemplarK int
	// Window is the exemplar rotation period (default 10s): TopK serves
	// the current plus the previous window.
	Window time.Duration
	// Envelope is the committed baseline envelope the regression
	// sentinel compares against (zero value: sentinel disabled).
	Envelope Envelope
}

// Plane owns the admission latency instruments.  A nil *Plane is valid
// and free: Start returns an inert Rec.
type Plane struct {
	reg    *obs.Registry
	e2e    *obs.Hist
	phases [NumPhases]*obs.Hist

	// Envelope comparison state: budgets are atomic so the sentinel can
	// be armed/retuned at runtime; total/over are cumulative counters the
	// slo engine diffs into its burn windows.  Index NumPhases is the
	// end-to-end envelope.
	budget [NumPhases + 1]atomic.Int64
	total  [NumPhases + 1]atomic.Int64
	over   [NumPhases + 1]atomic.Int64

	// Injected per-phase slowdown (test hook for the regression
	// sentinel's CI smoke): added to the phase at End.
	slowdown [NumPhases]atomic.Int64

	ex exemplarRing
}

// New builds a latency plane and registers its histograms.
func New(cfg Config) *Plane {
	if cfg.Registry == nil {
		panic("latency: Config.Registry is required")
	}
	p := &Plane{reg: cfg.Registry}
	names := phase.Names()
	p.e2e = cfg.Registry.HistogramLogLinear("latency_admit_ns", histOct0, histOctaves, histSub)
	cfg.Registry.Describe("latency_admit_ns", "End-to-end admission latency in nanoseconds (all phases).")
	for i := 0; i < NumPhases; i++ {
		name := "latency_phase_" + names[i] + "_ns"
		p.phases[i] = cfg.Registry.HistogramLogLinear(name, histOct0, histOctaves, histSub)
		cfg.Registry.Describe(name, "Admission time spent in the "+names[i]+" phase, nanoseconds.")
	}
	p.ex.init(cfg.ExemplarK, cfg.Window)
	p.SetEnvelope(cfg.Envelope)
	return p
}

// SetEnvelope installs (or clears, with the zero value) the regression
// envelope at runtime.
func (p *Plane) SetEnvelope(env Envelope) {
	if p == nil {
		return
	}
	for i := 0; i < NumPhases; i++ {
		p.budget[i].Store(env.Phase[i])
	}
	p.budget[NumPhases].Store(env.E2E)
}

// Envelope returns the currently armed envelope.
func (p *Plane) Envelope() Envelope {
	var env Envelope
	if p == nil {
		return env
	}
	for i := 0; i < NumPhases; i++ {
		env.Phase[i] = p.budget[i].Load()
	}
	env.E2E = p.budget[NumPhases].Load()
	return env
}

// InjectSlowdown arms the test hook: every subsequent admission's given
// phase is inflated by d (pass 0 to disarm).  Used by the CI smoke to
// prove the regression sentinel trips and names the right phase.
func (p *Plane) InjectSlowdown(ph Phase, d time.Duration) {
	if p == nil {
		return
	}
	p.slowdown[ph].Store(int64(d))
}

// PhaseCount is one phase's cumulative envelope accounting: how many
// admissions were timed and how many exceeded the phase budget.  The
// sentinel (slo.Engine) diffs consecutive reads into burn windows.
type PhaseCount struct {
	Name  string
	Total int64
	Over  int64
}

// RegressionCounts returns cumulative per-phase plus end-to-end ("e2e")
// envelope counters.  Phases with no armed budget are omitted.  Nil
// plane: nil.
func (p *Plane) RegressionCounts() []PhaseCount {
	if p == nil {
		return nil
	}
	names := phase.Names()
	out := make([]PhaseCount, 0, NumPhases+1)
	for i := 0; i < NumPhases; i++ {
		if p.budget[i].Load() <= 0 {
			continue
		}
		out = append(out, PhaseCount{Name: names[i], Total: p.total[i].Load(), Over: p.over[i].Load()})
	}
	if p.budget[NumPhases].Load() > 0 {
		out = append(out, PhaseCount{Name: "e2e", Total: p.total[NumPhases].Load(), Over: p.over[NumPhases].Load()})
	}
	return out
}

// Start opens a timing record for one admission.  trace may be 0 when
// span tracing sampled the request out — phase timing works regardless.
func (p *Plane) Start(trace uint64, job int64) Rec {
	if p == nil {
		return Rec{}
	}
	return phase.Start(p, trace, job)
}

// Done consumes a finished record (phase.Sink): histograms and envelope
// counters update, and the request is offered to the exemplar ring if it
// is slow enough.
func (p *Plane) Done(trace uint64, job int64, shard int32, total int64, durs [NumPhases]int64, endMono int64) {
	for i := 0; i < NumPhases; i++ {
		if d := p.slowdown[i].Load(); d > 0 {
			durs[i] += d
			total += d
		}
	}
	p.e2e.Observe(float64(total))
	p.total[NumPhases].Add(1)
	if b := p.budget[NumPhases].Load(); b > 0 && total > b {
		p.over[NumPhases].Add(1)
	}
	for i := 0; i < NumPhases; i++ {
		d := durs[i]
		if d > 0 {
			p.phases[i].Observe(float64(d))
		}
		p.total[i].Add(1)
		if b := p.budget[i].Load(); b > 0 && d > b {
			p.over[i].Add(1)
		}
	}
	p.ex.offer(Exemplar{
		Trace: trace,
		Job:   job,
		Shard: shard,
		Total: total,
		Durs:  durs,
		At:    phase.WallAt(endMono),
	})
}

// TopK returns the slowest exemplars across the current and previous
// windows, slowest first.
func (p *Plane) TopK() []Exemplar {
	if p == nil {
		return nil
	}
	return p.ex.topK()
}
