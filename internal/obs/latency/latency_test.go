package latency

import (
	"testing"
	"time"

	"milan/internal/obs"
)

func testPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return New(cfg)
}

func drive(p *Plane, total int64, durs [NumPhases]int64) {
	p.Done(1, 1, 0, total, durs, 0)
}

func TestPlaneRecordsHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	p := testPlane(t, Config{Registry: reg})
	rec := p.Start(7, 42)
	time.Sleep(time.Millisecond)
	rec.Mark(PhaseRoute)
	rec.End()

	s := reg.Snapshot()
	if h, ok := s.Histograms["latency_admit_ns"]; !ok || h.Count != 1 {
		t.Fatalf("e2e histogram = %+v", s.Histograms["latency_admit_ns"])
	}
	if h, ok := s.Histograms["latency_phase_route_ns"]; !ok || h.Count != 1 {
		t.Fatalf("route histogram = %+v", s.Histograms["latency_phase_route_ns"])
	}
	// Unmarked phases record nothing.
	if h := s.Histograms["latency_phase_journal_ns"]; h.Count != 0 {
		t.Fatalf("journal histogram unexpectedly fed: %+v", h)
	}
}

func TestRegressionCountsEnvelope(t *testing.T) {
	env := Envelope{E2E: 1000}
	env.Phase[PhaseProbe] = 500
	p := testPlane(t, Config{Envelope: env})

	var fast [NumPhases]int64
	fast[PhaseProbe] = 100
	drive(p, 400, fast)
	var slow [NumPhases]int64
	slow[PhaseProbe] = 900 // over the probe budget
	drive(p, 950, slow)    // e2e under budget
	var slowAll [NumPhases]int64
	slowAll[PhaseProbe] = 2000
	drive(p, 2500, slowAll) // over both

	counts := p.RegressionCounts()
	// Only armed phases appear: probe plus e2e.
	if len(counts) != 2 {
		t.Fatalf("counts = %+v, want probe and e2e only", counts)
	}
	byName := map[string]PhaseCount{}
	for _, c := range counts {
		byName[c.Name] = c
	}
	if c := byName["probe"]; c.Total != 3 || c.Over != 2 {
		t.Fatalf("probe counts = %+v", c)
	}
	if c := byName["e2e"]; c.Total != 3 || c.Over != 1 {
		t.Fatalf("e2e counts = %+v", c)
	}

	// Clearing the envelope disarms the sentinel entirely.
	p.SetEnvelope(Envelope{})
	if counts := p.RegressionCounts(); len(counts) != 0 {
		t.Fatalf("disarmed plane still reports %+v", counts)
	}
}

func TestInjectSlowdownNamesPhase(t *testing.T) {
	reg := obs.NewRegistry()
	env := Uniform(time.Millisecond)
	p := testPlane(t, Config{Registry: reg, Envelope: env})
	p.InjectSlowdown(PhaseProbe, 50*time.Millisecond)

	rec := p.Start(1, 1)
	rec.Mark(PhaseRoute)
	rec.End()

	byName := map[string]PhaseCount{}
	for _, c := range p.RegressionCounts() {
		byName[c.Name] = c
	}
	if c := byName["probe"]; c.Over != 1 {
		t.Fatalf("injected probe slowdown not counted over budget: %+v", byName)
	}
	if c := byName["route"]; c.Over != 0 {
		t.Fatalf("slowdown bled into route: %+v", byName)
	}
	// The inflated probe duration is visible in the histogram and the
	// exemplar waterfall (the smoke asserts the same end-to-end).
	if h := reg.Snapshot().Histograms["latency_phase_probe_ns"]; h.Count != 1 || h.Sum < 5e7 {
		t.Fatalf("probe histogram = %+v", h)
	}
	top := p.TopK()
	if len(top) == 0 || top[0].Durs[PhaseProbe] < 5e7 {
		t.Fatalf("exemplar waterfall missing the injected probe time: %+v", top)
	}

	// Disarm: the next admission is clean.
	p.InjectSlowdown(PhaseProbe, 0)
	rec = p.Start(1, 2)
	rec.End()
	if c := map[string]PhaseCount{}; true {
		for _, pc := range p.RegressionCounts() {
			c[pc.Name] = pc
		}
		if c["probe"].Over != 1 {
			t.Fatalf("disarmed slowdown still inflating: %+v", c)
		}
	}
}

// Nil-plane contract: the whole lifecycle is inert and allocation-free.
func TestNilPlaneZeroCost(t *testing.T) {
	var p *Plane
	p.SetEnvelope(Uniform(time.Second))
	p.InjectSlowdown(PhaseProbe, time.Second)
	if p.RegressionCounts() != nil || p.TopK() != nil {
		t.Fatal("nil plane returned state")
	}
	if p.Envelope() != (Envelope{}) {
		t.Fatal("nil plane returned an envelope")
	}
	allocs := testing.AllocsPerRun(100, func() {
		rec := p.Start(1, 2)
		rec.Mark(PhaseRoute)
		rec.Mark(PhasePlan)
		rec.SetShard(1)
		rec.End()
	})
	if allocs != 0 {
		t.Fatalf("nil plane lifecycle allocated %.1f/op, want 0", allocs)
	}
}

func TestExemplarRingTopK(t *testing.T) {
	p := testPlane(t, Config{ExemplarK: 4})
	for i := int64(1); i <= 10; i++ {
		var durs [NumPhases]int64
		durs[PhaseAck] = i * 100
		p.Done(uint64(i), i, 0, i*100, durs, 0)
	}
	top := p.TopK()
	if len(top) != 4 {
		t.Fatalf("topK returned %d exemplars, want 4", len(top))
	}
	// Slowest first: totals 1000, 900, 800, 700.
	for i, want := range []int64{1000, 900, 800, 700} {
		if top[i].Total != want {
			t.Fatalf("topK[%d].Total = %d, want %d (%+v)", i, top[i].Total, want, top)
		}
	}
	// A fast request cannot displace the ring once the threshold is up.
	var durs [NumPhases]int64
	durs[PhaseAck] = 50
	p.Done(99, 99, 0, 50, durs, 0)
	if got := p.TopK(); got[len(got)-1].Total < 700 {
		t.Fatalf("fast request displaced a tail exemplar: %+v", got)
	}
}

func TestExemplarWindowRotation(t *testing.T) {
	p := testPlane(t, Config{ExemplarK: 2, Window: 30 * time.Millisecond})
	var durs [NumPhases]int64
	durs[PhaseAck] = 1000
	p.Done(1, 1, 0, 1000, durs, 0)
	time.Sleep(40 * time.Millisecond)
	// Rotation keeps the previous window's winners visible...
	durs[PhaseAck] = 500
	p.Done(2, 2, 0, 500, durs, 0)
	top := p.TopK()
	if len(top) != 2 || top[0].Total != 1000 || top[1].Total != 500 {
		t.Fatalf("current+previous windows = %+v", top)
	}
	// ...and a long quiet gap ages both out.
	time.Sleep(70 * time.Millisecond)
	durs[PhaseAck] = 100
	p.Done(3, 3, 0, 100, durs, 0)
	top = p.TopK()
	if len(top) != 1 || top[0].Total != 100 {
		t.Fatalf("stale exemplars survived a double-window gap: %+v", top)
	}
}

func TestMergeTopK(t *testing.T) {
	a := []Exemplar{{Trace: 1, Total: 900}, {Trace: 2, Total: 100}}
	b := []Exemplar{{Trace: 3, Total: 500}, {Trace: 4, Total: 1000}}
	got := MergeTopK(3, a, b)
	if len(got) != 3 || got[0].Trace != 4 || got[1].Trace != 1 || got[2].Trace != 3 {
		t.Fatalf("MergeTopK = %+v", got)
	}
	if all := MergeTopK(0, a, b); len(all) != 4 {
		t.Fatalf("k=0 should keep everything, got %d", len(all))
	}
}
