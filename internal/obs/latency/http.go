package latency

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"milan/internal/obs"
)

// PhaseView is one phase's rendered summary on the /latency surface.
type PhaseView struct {
	Count    int64   `json:"count"`
	MeanNs   float64 `json:"mean_ns"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
	BudgetNs int64   `json:"budget_ns,omitempty"`
	Total    int64   `json:"total,omitempty"`
	Over     int64   `json:"over,omitempty"`
}

// View is the JSON shape of the /latency endpoint.
type View struct {
	Phases    map[string]PhaseView `json:"phases"`
	Envelope  Envelope             `json:"envelope"`
	Exemplars []Exemplar           `json:"exemplars"`
}

// View renders the plane's current state (nil plane: zero view).
func (p *Plane) View() View {
	v := View{Phases: map[string]PhaseView{}}
	if p == nil {
		return v
	}
	names := PhaseNames()
	render := func(h *obs.Hist, idx int) PhaseView {
		s := h.Snapshot()
		return PhaseView{
			Count:    s.Count,
			MeanNs:   s.Mean(),
			P50Ns:    s.Quantile(0.50),
			P99Ns:    s.Quantile(0.99),
			BudgetNs: p.budget[idx].Load(),
			Total:    p.total[idx].Load(),
			Over:     p.over[idx].Load(),
		}
	}
	for i := 0; i < NumPhases; i++ {
		v.Phases[names[i]] = render(p.phases[i], i)
	}
	v.Phases["e2e"] = render(p.e2e, NumPhases)
	v.Envelope = p.Envelope()
	v.Exemplars = p.TopK()
	return v
}

// Handler serves the latency anatomy: JSON by default, the Prometheus
// text exposition with exemplar annotations under ?format=prom.
func (p *Plane) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if obs.WantsProm(req) {
			w.Header().Set("Content-Type", obs.PromContentType)
			WriteProm(w, p.View())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.View())
	}
}

// WriteProm renders a latency view as Prometheus/OpenMetrics-style text:
// one summary family per phase plus exemplar annotations (`# {trace_id=
// "..."} value timestamp` after the e2e samples, the OpenMetrics
// exemplar syntax) so a scraper — or a human — can jump from a tail
// bucket straight to the offending trace.
func WriteProm(w io.Writer, v View) {
	names := make([]string, 0, len(v.Phases))
	for n := range v.Phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP latency_phase_p99_ns Per-phase p99 admission latency, nanoseconds.\n# TYPE latency_phase_p99_ns gauge\n")
	for _, n := range names {
		fmt.Fprintf(w, "latency_phase_p99_ns{phase=%q} %s\n", n, obs.PromFloat(v.Phases[n].P99Ns))
	}
	fmt.Fprintf(w, "# HELP latency_phase_over_total Admissions exceeding the phase envelope budget.\n# TYPE latency_phase_over_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "latency_phase_over_total{phase=%q} %d\n", n, v.Phases[n].Over)
	}
	fmt.Fprintf(w, "# HELP latency_exemplar_ns Slowest recent admissions with trace identity.\n# TYPE latency_exemplar_ns gauge\n")
	for i, e := range v.Exemplars {
		fmt.Fprintf(w, "latency_exemplar_ns{rank=\"%d\"} %d # {trace_id=\"%016x\",job=\"%d\",shard=\"%d\"} %d %.3f\n",
			i, e.Total, e.Trace, e.Job, e.Shard, e.Total, e.At)
	}
}
