package latency

import (
	"milan/internal/obs/latency/phase"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Exemplar is one tail request's identity and phase waterfall: which
// trace was slow, where its time went, when.  It carries no pointers or
// strings so offering one to the ring never allocates.
type Exemplar struct {
	// Trace is the request's trace ID (0 when tracing sampled it out —
	// the waterfall still identifies the phase anatomy).
	Trace uint64 `json:"trace,string"`
	// Job is the admitted (or rejected) job ID.
	Job int64 `json:"job"`
	// Shard is the shard that decided the request (-1 for monolith).
	Shard int32 `json:"shard"`
	// Total is the end-to-end latency in nanoseconds.
	Total int64 `json:"total_ns"`
	// Durs is the per-phase waterfall in nanoseconds, PhaseNames order.
	Durs [NumPhases]int64 `json:"phase_ns"`
	// At is the wall-clock completion time in unix seconds.
	At float64 `json:"at"`
}

// exemplarRing keeps the top-K slowest requests of the current window
// plus the previous window's winners.  An atomic threshold (the current
// window's K-th slowest total, once full) lets the hot path skip the
// mutex for every request that cannot possibly place.
type exemplarRing struct {
	k        int
	windowNs int64

	threshold atomic.Int64 // below this total, offer is a no-op

	mu       sync.Mutex
	curStart int64 // monotonic ns of the current window's start
	cur      []Exemplar
	prev     []Exemplar
}

const (
	defaultExemplarK = 8
	defaultWindow    = 10 * time.Second
)

func (x *exemplarRing) init(k int, window time.Duration) {
	if k < 1 {
		k = defaultExemplarK
	}
	if window <= 0 {
		window = defaultWindow
	}
	x.k = k
	x.windowNs = int64(window)
	x.cur = make([]Exemplar, 0, k)
	x.prev = make([]Exemplar, 0, k)
	x.curStart = phase.NowNanos()
}

// offer places e into the current window's top-K if it is slow enough.
// The atomic threshold check makes the common (fast-request) path
// lock-free.
func (x *exemplarRing) offer(e Exemplar) {
	if e.Total < x.threshold.Load() {
		return
	}
	now := phase.NowNanos()
	x.mu.Lock()
	x.rotateLocked(now)
	if len(x.cur) < x.k {
		x.cur = append(x.cur, e)
		if len(x.cur) == x.k {
			x.threshold.Store(x.minLocked())
		}
	} else {
		mi := 0
		for i := 1; i < len(x.cur); i++ {
			if x.cur[i].Total < x.cur[mi].Total {
				mi = i
			}
		}
		if e.Total > x.cur[mi].Total {
			x.cur[mi] = e
			x.threshold.Store(x.minLocked())
		}
	}
	x.mu.Unlock()
}

// rotateLocked retires the current window when it has elapsed.  After a
// long quiet gap both windows age out.
func (x *exemplarRing) rotateLocked(now int64) {
	if now-x.curStart < x.windowNs {
		return
	}
	if now-x.curStart >= 2*x.windowNs {
		x.prev = x.prev[:0]
	} else {
		x.prev = append(x.prev[:0], x.cur...)
	}
	x.cur = x.cur[:0]
	x.curStart = now
	x.threshold.Store(0)
}

func (x *exemplarRing) minLocked() int64 {
	m := x.cur[0].Total
	for _, e := range x.cur[1:] {
		if e.Total < m {
			m = e.Total
		}
	}
	return m
}

// topK returns current + previous window exemplars, slowest first,
// bounded by 2K.
func (x *exemplarRing) topK() []Exemplar {
	now := phase.NowNanos()
	x.mu.Lock()
	x.rotateLocked(now)
	out := make([]Exemplar, 0, len(x.cur)+len(x.prev))
	out = append(out, x.cur...)
	out = append(out, x.prev...)
	x.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// MergeTopK folds several exemplar sets into the k slowest overall
// (slowest first) — the cluster-wide view milanmon serves.
func MergeTopK(k int, sets ...[]Exemplar) []Exemplar {
	var all []Exemplar
	for _, s := range sets {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}
