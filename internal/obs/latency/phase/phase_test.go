package phase

import (
	"testing"
	"time"
)

type captureSink struct {
	trace   uint64
	job     int64
	shard   int32
	total   int64
	durs    [Num]int64
	endMono int64
	calls   int
}

func (c *captureSink) Done(trace uint64, job int64, shard int32, total int64, durs [Num]int64, endMono int64) {
	c.trace, c.job, c.shard, c.total, c.durs, c.endMono = trace, job, shard, total, durs, endMono
	c.calls++
}

func TestRecLifecycle(t *testing.T) {
	var sink captureSink
	rec := Start(&sink, 77, 42)
	if !rec.Active() {
		t.Fatal("record with sink not active")
	}
	time.Sleep(time.Millisecond)
	rec.Mark(Route)
	time.Sleep(time.Millisecond)
	rec.Mark(Probe)
	rec.SetShard(3)
	rec.SetTrace(99)
	time.Sleep(time.Millisecond)
	rec.End()
	if sink.calls != 1 {
		t.Fatalf("sink called %d times, want 1", sink.calls)
	}
	if sink.trace != 99 || sink.job != 42 || sink.shard != 3 {
		t.Fatalf("identity = trace %d job %d shard %d", sink.trace, sink.job, sink.shard)
	}
	if sink.durs[Route] <= 0 || sink.durs[Probe] <= 0 {
		t.Fatalf("marked phases not timed: %v", sink.durs)
	}
	// The residual after the last mark lands in ack, so the phases
	// always sum to the end-to-end total.
	if sink.durs[Ack] <= 0 {
		t.Fatalf("residual not attributed to ack: %v", sink.durs)
	}
	var sum int64
	for _, d := range sink.durs {
		sum += d
	}
	if sum != sink.total {
		t.Fatalf("phase sum %d != total %d", sum, sink.total)
	}
	// End is idempotent.
	rec.End()
	if sink.calls != 1 {
		t.Fatalf("End not idempotent: %d calls", sink.calls)
	}
}

func TestRecMarkAccumulates(t *testing.T) {
	var sink captureSink
	rec := Start(&sink, 0, 1)
	time.Sleep(500 * time.Microsecond)
	rec.Mark(Probe)
	time.Sleep(500 * time.Microsecond)
	rec.Mark(Probe) // probe retries accumulate into one phase
	first := rec.Durs()[Probe]
	rec.End()
	if sink.durs[Probe] < first || first <= 0 {
		t.Fatalf("repeated marks did not accumulate: %d then %d", first, sink.durs[Probe])
	}
}

func TestRecSkipDiscards(t *testing.T) {
	var sink captureSink
	rec := Start(&sink, 0, 1)
	time.Sleep(time.Millisecond)
	rec.Skip()
	rec.Mark(Route)
	if d := rec.Durs()[Route]; d > int64(500*time.Microsecond) {
		t.Fatalf("skipped time leaked into route: %dns", d)
	}
	rec.End()
}

// The zero-cost contract: a nil *Rec and a sinkless Rec are inert and
// allocation-free through the whole lifecycle.
func TestRecNilSafe(t *testing.T) {
	var nilRec *Rec
	nilRec.Mark(Route)
	nilRec.Skip()
	nilRec.SetShard(1)
	nilRec.SetTrace(1)
	nilRec.End()
	if nilRec.Active() {
		t.Fatal("nil rec active")
	}
	if nilRec.Durs() != ([Num]int64{}) {
		t.Fatal("nil rec carries durations")
	}

	allocs := testing.AllocsPerRun(100, func() {
		var rec Rec // no sink: the plane-unset configuration
		rec.Mark(Route)
		rec.Mark(Probe)
		rec.SetShard(2)
		rec.End()
	})
	if allocs != 0 {
		t.Fatalf("inert record allocated %.1f/op, want 0", allocs)
	}
}

func TestPhaseNamesParse(t *testing.T) {
	for i, name := range Names() {
		if got := Parse(name); got != i {
			t.Errorf("Parse(%q) = %d, want %d", name, got, i)
		}
		if got := Phase(i).String(); got != name {
			t.Errorf("Phase(%d).String() = %q, want %q", i, got, name)
		}
	}
	if Parse("bogus") != -1 {
		t.Error("Parse accepted an unknown phase")
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase did not stringify as unknown")
	}
}

func TestWallAtMonotonicBase(t *testing.T) {
	n := NowNanos()
	w := WallAt(n)
	now := float64(time.Now().UnixNano()) / 1e9
	if diff := now - w; diff < -1 || diff > 1 {
		t.Fatalf("WallAt drifted %.3fs from wall clock", diff)
	}
}
