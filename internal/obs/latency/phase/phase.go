// Package phase is the dependency-free leaf of the admission latency
// plane: the phase enumeration and the per-request Rec timer that
// arbitrators mark as an admission moves through route → probe → plan →
// reserve → journal → ack.  It imports only the standard library so the
// qos/fed/durable admission packages can attribute their time without
// depending on the observability registry (obs itself depends on qos,
// which would otherwise be a cycle); the latency plane proper
// (internal/obs/latency) supplies the Sink that turns finished records
// into histograms and exemplars.
package phase

import "time"

// Phase enumerates where admission time accrues.  The order is the wire
// order and the waterfall order.
type Phase uint8

const (
	// Route is shard selection (fed candidate scan) and arbitrator lock
	// acquisition — time spent deciding *where* to admit.
	Route Phase = iota
	// Probe is speculative planning against shard snapshots (fed.probe /
	// PlanKeyed), including commit attempts that lose their version race
	// — raced commits surface as probe-phase inflation by design.
	Probe
	// Plan is authoritative plan construction (sched.Admit descent).
	Plan
	// Reserve is committing the chosen plan into the profile
	// (version-checked commit, reservation bookkeeping).
	Reserve
	// Journal is the durable WAL append before acknowledgment.
	Journal
	// Ack is everything after the decision until the response is handed
	// back; Rec.End attributes the residual here so the phases always
	// sum to the end-to-end time.
	Ack

	// Num is the number of phases (array sizing).
	Num = int(Ack) + 1
)

var names = [Num]string{"route", "probe", "plan", "reserve", "journal", "ack"}

// String returns the phase's lowercase name.
func (p Phase) String() string {
	if int(p) < Num {
		return names[p]
	}
	return "unknown"
}

// Names returns the phase names in waterfall order.
func Names() [Num]string { return names }

// Parse maps a phase name back to its index (-1 if unknown).
func Parse(name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// Sink consumes finished records.  Done receives the request identity,
// the total end-to-end nanoseconds, the per-phase waterfall, and the
// monotonic end time (NowNanos clock).
type Sink interface {
	Done(trace uint64, job int64, shard int32, total int64, durs [Num]int64, endMono int64)
}

// Monotonic clock: nanoseconds since the package loaded, via the
// runtime's monotonic reading (immune to wall-clock steps).
var (
	baseMono = time.Now()
	baseWall = float64(baseMono.UnixNano()) / 1e9
)

// NowNanos returns the monotonic clock reading.
func NowNanos() int64 { return int64(time.Since(baseMono)) }

// WallAt converts a monotonic reading to wall-clock seconds for display.
func WallAt(mono int64) float64 { return baseWall + float64(mono)/1e9 }

// Rec is one admission's in-flight phase timer.  It is a plain value
// (embed it in a stack frame; pass *Rec down the admission path) and
// never allocates.  All methods are nil-safe: a Rec with no sink, or a
// nil *Rec, is inert — that is the zero-cost contract for uninstrumented
// paths.
type Rec struct {
	sink  Sink
	start int64
	last  int64
	durs  [Num]int64
	trace uint64
	job   int64
	shard int32
	done  bool
}

// Start opens a timing record feeding sink.  trace may be 0 when span
// tracing sampled the request out — phase timing works regardless.
func Start(sink Sink, trace uint64, job int64) Rec {
	n := NowNanos()
	return Rec{sink: sink, start: n, last: n, trace: trace, job: job, shard: -1}
}

// Active reports whether the record is attached to a sink.
func (r *Rec) Active() bool { return r != nil && r.sink != nil }

// Mark attributes the time elapsed since the previous mark (or Start) to
// the given phase.  Phases may be marked repeatedly (probe retries
// accumulate) and in any order.
func (r *Rec) Mark(ph Phase) {
	if r == nil || r.sink == nil {
		return
	}
	n := NowNanos()
	r.durs[ph] += n - r.last
	r.last = n
}

// Skip discards the time elapsed since the previous mark (time that
// belongs to no admission phase).
func (r *Rec) Skip() {
	if r == nil || r.sink == nil {
		return
	}
	r.last = NowNanos()
}

// SetShard records which shard ultimately admitted the job.
func (r *Rec) SetShard(shard int) {
	if r == nil || r.sink == nil {
		return
	}
	r.shard = int32(shard)
}

// SetTrace attaches a trace ID minted after Start (servers mint root
// traces for clients that did not propagate one).
func (r *Rec) SetTrace(trace uint64) {
	if r == nil || r.sink == nil {
		return
	}
	r.trace = trace
}

// Durs returns the per-phase waterfall accumulated so far (tests).
func (r *Rec) Durs() [Num]int64 {
	if r == nil {
		return [Num]int64{}
	}
	return r.durs
}

// End closes the record: the residual since the last mark goes to the
// ack phase and the sink consumes the waterfall.  End is idempotent.
func (r *Rec) End() {
	if r == nil || r.sink == nil || r.done {
		return
	}
	r.done = true
	n := NowNanos()
	r.durs[Ack] += n - r.last
	r.last = n
	r.sink.Done(r.trace, r.job, r.shard, n-r.start, r.durs, n)
}
