package latency

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTrajectory(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traj.jsonl")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEnvelopeFromTrajectoryLatestWins(t *testing.T) {
	path := writeTrajectory(t, `{"name":"BenchmarkShardedAdmit/shards=8","ns_per_op":20000,"allocs_per_op":15}

{"name":"BenchmarkMonolithAdmit","ns_per_op":40000,"allocs_per_op":9}
{"name":"BenchmarkShardedAdmit/shards=8","ns_per_op":10000,"allocs_per_op":15}
`)
	env, err := EnvelopeFromTrajectory(path, "ShardedAdmit/shards=8", 3)
	if err != nil {
		t.Fatal(err)
	}
	if env.E2E != 30000 {
		t.Fatalf("E2E = %d, want latest row 10000ns x3 slack", env.E2E)
	}
	for i, b := range env.Phase {
		if b != 30000 {
			t.Fatalf("phase %d budget = %d, want uniform 30000", i, b)
		}
	}
}

// When the trajectory row carries a measured p99, the envelope derives
// from the tail, not the mean.
func TestEnvelopeFromTrajectoryPrefersP99(t *testing.T) {
	path := writeTrajectory(t, `{"name":"BenchmarkShardedAdmit/shards=8","ns_per_op":10000,"p99_ns_per_op":25000}
`)
	env, err := EnvelopeFromTrajectory(path, "ShardedAdmit", 2)
	if err != nil {
		t.Fatal(err)
	}
	if env.E2E != 50000 {
		t.Fatalf("E2E = %d, want p99 25000ns x2 slack", env.E2E)
	}
}

func TestEnvelopeFromTrajectoryErrors(t *testing.T) {
	path := writeTrajectory(t, `{"name":"BenchmarkOther","ns_per_op":100}
`)
	if _, err := EnvelopeFromTrajectory(path, "NoSuchBench", 1); err == nil {
		t.Fatal("missing match accepted")
	}
	if _, err := EnvelopeFromTrajectory(filepath.Join(t.TempDir(), "absent"), "x", 1); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeTrajectory(t, "{not json}\n")
	if _, err := EnvelopeFromTrajectory(bad, "x", 1); err == nil {
		t.Fatal("malformed row accepted")
	}
	zero := writeTrajectory(t, `{"name":"BenchmarkZero","ns_per_op":0}
`)
	if _, err := EnvelopeFromTrajectory(zero, "Zero", 1); err == nil {
		t.Fatal("zero-latency row accepted")
	}
}

func TestUniformEnvelope(t *testing.T) {
	env := Uniform(time.Microsecond)
	if env.E2E != 1000 {
		t.Fatalf("E2E = %d", env.E2E)
	}
	for i, b := range env.Phase {
		if b != 1000 {
			t.Fatalf("phase %d = %d", i, b)
		}
	}
}
