package latency

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Envelope is the committed baseline the regression sentinel compares
// live latency against: per-phase and end-to-end budgets in nanoseconds.
// A zero budget disarms that comparison.  The canonical way to build one
// is EnvelopeFromTrajectory, which derives budgets from the repo's
// committed benchmark trajectory (BENCH_trajectory.jsonl) so "regression"
// always means "worse than what we shipped", not a hand-tuned constant.
type Envelope struct {
	// E2E is the end-to-end admission budget in nanoseconds.
	E2E int64 `json:"e2e_ns"`
	// Phase holds per-phase budgets in PhaseNames order.
	Phase [NumPhases]int64 `json:"phase_ns"`
}

// Uniform returns an envelope with every budget (per-phase and e2e) set
// to d: any single phase exceeding the whole budget is a regression.
func Uniform(d time.Duration) Envelope {
	var env Envelope
	env.E2E = int64(d)
	for i := range env.Phase {
		env.Phase[i] = int64(d)
	}
	return env
}

// trajectoryRow mirrors cmd/benchdiff's row schema: p99 is optional and
// decodes as -1 when absent (no phantom budget).
type trajectoryRow struct {
	Name      string   `json:"name"`
	NsPerOp   float64  `json:"ns_per_op"`
	P99NsPerOp *float64 `json:"p99_ns_per_op"`
}

// EnvelopeFromTrajectory derives a baseline envelope from the latest
// trajectory row whose benchmark name contains match: the budget is the
// row's p99 when recorded (falling back to mean ns/op) times slack.
// Every phase gets the full budget — a single phase consuming more than
// the whole committed envelope is the regression signal.
func EnvelopeFromTrajectory(path, match string, slack float64) (Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return Envelope{}, err
	}
	defer f.Close()
	if slack <= 0 {
		slack = 1
	}
	var last *trajectoryRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row trajectoryRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return Envelope{}, fmt.Errorf("latency: bad trajectory row: %w", err)
		}
		if strings.Contains(row.Name, match) {
			r := row
			last = &r
		}
	}
	if err := sc.Err(); err != nil {
		return Envelope{}, err
	}
	if last == nil {
		return Envelope{}, fmt.Errorf("latency: no trajectory row matches %q in %s", match, path)
	}
	base := last.NsPerOp
	if last.P99NsPerOp != nil && *last.P99NsPerOp > 0 {
		base = *last.P99NsPerOp
	}
	if base <= 0 {
		return Envelope{}, fmt.Errorf("latency: trajectory row %q has no usable latency", last.Name)
	}
	return Uniform(time.Duration(base * slack)), nil
}
