package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format served by /metrics?format=prom.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket series with _sum and _count,
// Welford stats as _mean/_std/_count gauges.  Every family is preceded
// by # HELP and # TYPE metadata (Describe registers the help text; an
// undescribed metric gets a generated placeholder), and label values go
// through the format's escaping rules (PromEscapeLabel).  Metric names
// in this codebase are already snake_case identifiers; anything else is
// normalized defensively.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	help := r.helpSnapshot()
	header := func(name, kind, suffix string) error {
		n := promName(name) + suffix
		h := help[name]
		if h == "" {
			h = "milan " + kind + " " + promName(name) + "."
		}
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, promEscapeHelp(h), n, kind)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if err := header(name, "counter", ""); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if err := header(name, "gauge", ""); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		if err := header(name, "histogram", ""); err != nil {
			return err
		}
		// Prometheus buckets are cumulative from -Inf; observations below
		// the histogram's range fold into the first bucket's count.
		cum := h.Under
		for i, c := range h.Buckets {
			cum += c
			le := h.BucketUpper(i)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, PromEscapeLabel(promFloat(le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, h.Count, n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Stats) {
		st := s.Stats[name]
		n := promName(name)
		for _, part := range []struct {
			suffix string
			value  string
		}{
			{"_mean", promFloat(st.Mean)},
			{"_std", promFloat(st.Std)},
			{"_count", fmt.Sprint(st.N)},
		} {
			if err := header(name, "gauge", part.suffix); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", n, part.suffix, part.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromEscapeLabel escapes a label value per the text exposition format:
// backslash, double-quote and newline are the only escaped characters
// (Go's %q quoting is NOT compatible — it escapes non-ASCII too, which
// the format forbids).  Exported so per-tenant series built outside this
// package (internal/obs/ledger) share one correct implementation.
func PromEscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// PromName normalizes a metric name into the Prometheus identifier
// charset, for callers (e.g. the telemetry aggregator) that render
// node-labeled series outside WriteProm.
func PromName(name string) string { return promName(name) }

// PromFloat renders a float sample the way WriteProm does.
func PromFloat(v float64) string { return promFloat(v) }

// PromEscapeHelp escapes HELP text the way WriteProm does.
func PromEscapeHelp(v string) string { return promEscapeHelp(v) }

// promEscapeHelp escapes HELP text: only backslash and newline (quotes
// are legal in help text, unlike label values).
func promEscapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// promName normalizes a metric name into the Prometheus identifier
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float sample (Prometheus accepts Go's shortest
// representation; infinities spell +Inf/-Inf, NaN spells NaN).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WantsProm reports whether the request negotiates the Prometheus text
// exposition (exported for /metrics endpoints outside this package).
func WantsProm(req *http.Request) bool { return wantsProm(req) }

// wantsProm decides the /metrics representation: an explicit
// ?format=prom|json query parameter wins; otherwise an Accept header
// preferring text/plain or the OpenMetrics type (what a Prometheus
// scraper sends) selects the text format, and everything else keeps the
// expvar-style JSON default.
func wantsProm(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "application/openmetrics-text")
}
