package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format served by /metrics?format=prom.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket series with _sum and _count,
// Welford stats as _mean/_std/_count gauges.  Metric names in this
// codebase are already snake_case identifiers; anything else is
// normalized defensively.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Prometheus buckets are cumulative from -Inf; observations below
		// the histogram's range fold into the first bucket's count.
		width := (h.Hi - h.Lo) / float64(len(h.Buckets))
		cum := h.Under
		for i, c := range h.Buckets {
			cum += c
			le := h.Lo + float64(i+1)*width
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, h.Count, n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Stats) {
		st := s.Stats[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_mean gauge\n%s_mean %s\n# TYPE %s_std gauge\n%s_std %s\n# TYPE %s_count gauge\n%s_count %d\n",
			n, n, promFloat(st.Mean), n, n, promFloat(st.Std), n, n, st.N); err != nil {
			return err
		}
	}
	return nil
}

// promName normalizes a metric name into the Prometheus identifier
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float sample (Prometheus accepts Go's shortest
// representation; infinities spell +Inf/-Inf, NaN spells NaN).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// wantsProm decides the /metrics representation: an explicit
// ?format=prom|json query parameter wins; otherwise an Accept header
// preferring text/plain or the OpenMetrics type (what a Prometheus
// scraper sends) selects the text format, and everything else keeps the
// expvar-style JSON default.
func wantsProm(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "application/openmetrics-text")
}
