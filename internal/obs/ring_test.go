package obs

import "testing"

// TestRingWrap pins the generic ring's eviction contract across the three
// interesting regimes: under capacity, exactly at capacity, and after
// wrapping several times over.
func TestRingWrap(t *testing.T) {
	const capN = 4
	r := NewRing[int](capN)
	if got := r.Cap(); got != capN {
		t.Fatalf("Cap() = %d, want %d", got, capN)
	}
	check := func(pushed int) {
		t.Helper()
		wantLen := pushed
		if wantLen > capN {
			wantLen = capN
		}
		if r.Len() != wantLen {
			t.Fatalf("after %d pushes: Len() = %d, want %d", pushed, r.Len(), wantLen)
		}
		if r.Total() != int64(pushed) {
			t.Fatalf("after %d pushes: Total() = %d, want %d", pushed, r.Total(), pushed)
		}
		wantDropped := int64(pushed - wantLen)
		if r.Dropped() != wantDropped {
			t.Fatalf("after %d pushes: Dropped() = %d, want %d", pushed, r.Dropped(), wantDropped)
		}
		if r.Total() != r.Dropped()+int64(r.Len()) {
			t.Fatalf("accounting identity broken: Total=%d Dropped=%d Len=%d",
				r.Total(), r.Dropped(), r.Len())
		}
		items := r.Items()
		if len(items) != wantLen {
			t.Fatalf("after %d pushes: len(Items()) = %d, want %d", pushed, len(items), wantLen)
		}
		// Items must be the contiguous, insertion-ordered suffix of the
		// full stream: pushed-wantLen .. pushed-1.
		for i, v := range items {
			if want := pushed - wantLen + i; v != want {
				t.Fatalf("after %d pushes: Items()[%d] = %d, want %d (items=%v)",
					pushed, i, v, want, items)
			}
		}
	}
	for i := 0; i < 3*capN+1; i++ {
		r.Push(i)
		check(i + 1)
	}
	// Items() must return a copy, not alias the ring's storage.
	items := r.Items()
	items[0] = -999
	if got := r.Items()[0]; got == -999 {
		t.Fatalf("Items() aliases internal storage")
	}
}

func TestRingCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}
