package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"milan/internal/core"
)

func newTestServer(t *testing.T) (*Observer, *httptest.Server) {
	t.Helper()
	o := New(Config{KeepPlacements: true, Capacity: 4})
	s := core.NewScheduler(4, 0, o.InstrumentOptions(nil))
	if _, err := s.Admit(tunableJob(1, 0)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	return o, srv
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHandlerMetrics(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters[MetricAdmitted] != 1 {
		t.Fatalf("admitted = %d, want 1", snap.Counters[MetricAdmitted])
	}
}

func TestHandlerTrace(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var evs []Event
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}

	code, body = get(t, srv.URL+"/trace?n=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if err := json.Unmarshal(body, &evs); err != nil || len(evs) != 1 {
		t.Fatalf("/trace?n=1 = %d events, err %v", len(evs), err)
	}

	if code, _ = get(t, srv.URL+"/trace?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n status = %d, want 400", code)
	}
	if code, _ = get(t, srv.URL+"/trace?n=-2"); code != http.StatusBadRequest {
		t.Fatalf("negative n status = %d, want 400", code)
	}
}

func TestHandlerTraceEmptyIsArray(t *testing.T) {
	o := New(Config{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var evs []Event
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("empty /trace not a JSON array: %s", body)
	}
	if evs == nil || len(evs) != 0 {
		t.Fatalf("empty /trace = %v, want []", evs)
	}
}

func TestHandlerGantt(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/gantt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); cd == "" {
		t.Fatal("no Content-Disposition on /gantt")
	}
	evs, err := ParseChromeTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	for _, ev := range evs {
		if ev.Ph == "X" && ev.Pid == PIDSchedule {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("/gantt has no schedule spans")
	}
}

func TestHandlerIndexAnd404(t *testing.T) {
	_, srv := newTestServer(t)
	if code, body := get(t, srv.URL+"/"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("index = %d, %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", code)
	}
}
