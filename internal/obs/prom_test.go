package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sched_plans").Add(7)
	reg.Gauge("fed_load_spread").Set(0.25)
	h := reg.Histogram("admit_latency", 0, 1, 4)
	h.Observe(0.1)  // bucket 0
	h.Observe(0.6)  // bucket 2
	h.Observe(-1)   // under: folds into every cumulative bucket
	h.Observe(5)    // over: only in +Inf
	reg.Stat("quality").Observe(2)
	reg.Stat("quality").Observe(4)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sched_plans counter\nsched_plans 7\n",
		"# TYPE fed_load_spread gauge\nfed_load_spread 0.25\n",
		"# TYPE admit_latency histogram\n",
		`admit_latency_bucket{le="0.25"} 2`, // under + bucket0
		`admit_latency_bucket{le="0.5"} 2`,
		`admit_latency_bucket{le="0.75"} 3`,
		`admit_latency_bucket{le="1"} 3`,
		`admit_latency_bucket{le="+Inf"} 4`,
		"admit_latency_sum 4.7\n",
		"admit_latency_count 4\n",
		"quality_mean 3\n",
		"quality_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameNormalization(t *testing.T) {
	if got := promName("9bad.name-x"); got != "_bad_name_x" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("sched_plans"); got != "sched_plans" {
		t.Fatalf("promName mangled a clean name: %q", got)
	}
}

// TestMetricsContentNegotiation is the satellite's acceptance test: the
// same /metrics route serves expvar JSON by default and the Prometheus
// text format under ?format=prom or a scraper Accept header.
func TestMetricsContentNegotiation(t *testing.T) {
	o := New(Config{})
	o.Reg.Counter("sched_plans").Add(3)
	h := o.Handler()

	get := func(target, accept string) *httptest.ResponseRecorder {
		rw := httptest.NewRecorder()
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		h.ServeHTTP(rw, req)
		return rw
	}

	// Default: JSON.
	rw := get("/metrics", "")
	if rw.Code != 200 || !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("default /metrics: %d %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	if !strings.Contains(rw.Body.String(), `"sched_plans": 3`) {
		t.Fatalf("JSON body: %s", rw.Body.String())
	}

	// ?format=prom: text exposition format.
	rw = get("/metrics?format=prom", "")
	if rw.Code != 200 || rw.Header().Get("Content-Type") != PromContentType {
		t.Fatalf("prom /metrics: %d %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	if !strings.Contains(rw.Body.String(), "# TYPE sched_plans counter\nsched_plans 3\n") {
		t.Fatalf("prom body: %s", rw.Body.String())
	}

	// A Prometheus scraper's Accept header selects prom without a query.
	rw = get("/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if rw.Header().Get("Content-Type") != PromContentType {
		t.Fatalf("Accept negotiation: %q", rw.Header().Get("Content-Type"))
	}

	// Explicit format=json wins over the scraper Accept header.
	rw = get("/metrics?format=json", "text/plain")
	if !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("format=json override: %q", rw.Header().Get("Content-Type"))
	}
}

func TestPprofMountedBehindFlag(t *testing.T) {
	// Off by default: the subtree is not routed.
	o := New(Config{})
	rw := httptest.NewRecorder()
	o.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code != 404 {
		t.Fatalf("pprof served without the flag: %d", rw.Code)
	}

	// Config.EnablePprof mounts the index, named profiles and cmdline.
	o = New(Config{EnablePprof: true})
	h := o.Handler()
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d %s", rw.Code, rw.Body.String())
	}
	// Named profile resolves through the "/"-suffix prefix route.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/goroutine?debug=1", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "goroutine") {
		t.Fatalf("goroutine profile: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rw.Code != 200 {
		t.Fatalf("cmdline: %d", rw.Code)
	}
	// The index lists the mount.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rw.Body.String(), "/debug/pprof/") {
		t.Fatalf("endpoint index does not list pprof: %s", rw.Body.String())
	}
}
