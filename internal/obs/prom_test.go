package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sched_plans").Add(7)
	reg.Gauge("fed_load_spread").Set(0.25)
	h := reg.Histogram("admit_latency", 0, 1, 4)
	h.Observe(0.1) // bucket 0
	h.Observe(0.6) // bucket 2
	h.Observe(-1)  // under: folds into every cumulative bucket
	h.Observe(5)   // over: only in +Inf
	reg.Stat("quality").Observe(2)
	reg.Stat("quality").Observe(4)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sched_plans counter\nsched_plans 7\n",
		"# TYPE fed_load_spread gauge\nfed_load_spread 0.25\n",
		"# TYPE admit_latency histogram\n",
		`admit_latency_bucket{le="0.25"} 2`, // under + bucket0
		`admit_latency_bucket{le="0.5"} 2`,
		`admit_latency_bucket{le="0.75"} 3`,
		`admit_latency_bucket{le="1"} 3`,
		`admit_latency_bucket{le="+Inf"} 4`,
		"admit_latency_sum 4.7\n",
		"admit_latency_count 4\n",
		"quality_mean 3\n",
		"quality_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameNormalization(t *testing.T) {
	if got := promName("9bad.name-x"); got != "_bad_name_x" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("sched_plans"); got != "sched_plans" {
		t.Fatalf("promName mangled a clean name: %q", got)
	}
}

// TestMetricsContentNegotiation is the satellite's acceptance test: the
// same /metrics route serves expvar JSON by default and the Prometheus
// text format under ?format=prom or a scraper Accept header.
func TestMetricsContentNegotiation(t *testing.T) {
	o := New(Config{})
	o.Reg.Counter("sched_plans").Add(3)
	h := o.Handler()

	get := func(target, accept string) *httptest.ResponseRecorder {
		rw := httptest.NewRecorder()
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		h.ServeHTTP(rw, req)
		return rw
	}

	// Default: JSON.
	rw := get("/metrics", "")
	if rw.Code != 200 || !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("default /metrics: %d %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	if !strings.Contains(rw.Body.String(), `"sched_plans": 3`) {
		t.Fatalf("JSON body: %s", rw.Body.String())
	}

	// ?format=prom: text exposition format.
	rw = get("/metrics?format=prom", "")
	if rw.Code != 200 || rw.Header().Get("Content-Type") != PromContentType {
		t.Fatalf("prom /metrics: %d %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	if !strings.Contains(rw.Body.String(), "# TYPE sched_plans counter\nsched_plans 3\n") {
		t.Fatalf("prom body: %s", rw.Body.String())
	}

	// A Prometheus scraper's Accept header selects prom without a query.
	rw = get("/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if rw.Header().Get("Content-Type") != PromContentType {
		t.Fatalf("Accept negotiation: %q", rw.Header().Get("Content-Type"))
	}

	// Explicit format=json wins over the scraper Accept header.
	rw = get("/metrics?format=json", "text/plain")
	if !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("format=json override: %q", rw.Header().Get("Content-Type"))
	}
}

func TestPprofMountedBehindFlag(t *testing.T) {
	// Off by default: the subtree is not routed.
	o := New(Config{})
	rw := httptest.NewRecorder()
	o.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code != 404 {
		t.Fatalf("pprof served without the flag: %d", rw.Code)
	}

	// Config.EnablePprof mounts the index, named profiles and cmdline.
	o = New(Config{EnablePprof: true})
	h := o.Handler()
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d %s", rw.Code, rw.Body.String())
	}
	// Named profile resolves through the "/"-suffix prefix route.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/goroutine?debug=1", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "goroutine") {
		t.Fatalf("goroutine profile: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rw.Code != 200 {
		t.Fatalf("cmdline: %d", rw.Code)
	}
	// The index lists the mount.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rw.Body.String(), "/debug/pprof/") {
		t.Fatalf("endpoint index does not list pprof: %s", rw.Body.String())
	}
}

// TestPromConformance pins the exposition-format metadata contract: every
// family — counters, gauges, histograms and each stat suffix — is
// preceded by exactly one # HELP and one # TYPE line, Describe'd help
// text is emitted (escaped), undescribed metrics get a generated
// placeholder, and label values use the format's escaping rules.
func TestPromConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Describe("sched_plans", "Planning passes, with \\ and\nnewline.")
	reg.Counter("sched_plans").Add(1)
	reg.Gauge("undocumented_gauge").Set(2)
	reg.Histogram("admit_latency", 0, 1, 2).Observe(0.5)
	reg.Stat("quality").Observe(3)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if !strings.Contains(out, `# HELP sched_plans Planning passes, with \\ and\nnewline.`) {
		t.Errorf("described help not emitted escaped:\n%s", out)
	}
	if !strings.Contains(out, "# HELP undocumented_gauge milan gauge undocumented_gauge.\n# TYPE undocumented_gauge gauge\n") {
		t.Errorf("undescribed metric lacks placeholder HELP:\n%s", out)
	}
	for _, family := range []string{"sched_plans", "undocumented_gauge", "admit_latency",
		"quality_mean", "quality_std", "quality_count"} {
		if c := strings.Count(out, "# HELP "+family+" "); c != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", family, c)
		}
		if c := strings.Count(out, "# TYPE "+family+" "); c != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", family, c)
		}
	}

	// Sample lines: every non-comment line is `name{labels} value` with a
	// single space, and HELP precedes TYPE precedes the samples.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE ") {
				t.Errorf("HELP line %d not followed by TYPE: %q", i, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	if got := reg.HelpFor("sched_plans"); !strings.Contains(got, "Planning passes") {
		t.Errorf("HelpFor = %q", got)
	}
}

// TestPromEscapeLabel pins the label escaping table: only backslash,
// double-quote and newline are escaped — non-ASCII must pass through
// verbatim (Go's %q would corrupt it).
func TestPromEscapeLabel(t *testing.T) {
	cases := map[string]string{
		"plain":         "plain",
		`back\slash`:    `back\\slash`,
		`quo"te`:        `quo\"te`,
		"new\nline":     `new\nline`,
		"unicode-héllo": "unicode-héllo",
		"tab\tstays":    "tab\tstays",
	}
	for in, want := range cases {
		if got := PromEscapeLabel(in); got != want {
			t.Errorf("PromEscapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promEscapeHelp("a\\b\nc\"d"); got != `a\\b\nc"d` {
		t.Errorf("promEscapeHelp = %q (quotes must stay verbatim in help)", got)
	}
}
