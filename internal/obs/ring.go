package obs

import "fmt"

// Ring is the one bounded-ring implementation shared by every retention
// buffer in the observability layer: the trace-event RingSink, the
// Tracer's completed-span ring, the flight recorder's span/event rings
// (internal/obs/slo) and the admission-forensics diagnosis ring
// (internal/obs/forensics).  When the ring wraps, the oldest elements are
// evicted — never reordered — and every eviction is accounted in Dropped
// rather than silently overwritten: Items() always returns a contiguous,
// insertion-ordered suffix of the full stream, and
// Total() == Dropped() + int64(Len()).
//
// A Ring is not safe for concurrent use on its own; owners guard it with
// their own mutex (they all already hold one for adjacent state).
type Ring[T any] struct {
	buf     []T
	next    int
	total   int64
	dropped int64
}

// NewRing returns a ring holding up to n elements (n >= 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		panic(fmt.Sprintf("obs: ring capacity %d must be >= 1", n))
	}
	return &Ring[T]{buf: make([]T, 0, n)}
}

// Push appends v, evicting the oldest element when full (counted in
// Dropped).  It returns the evicted element and whether one was evicted,
// so owners keeping secondary indexes (e.g. the forensics per-job map)
// can unlink it; callers without such bookkeeping ignore the results.
func (r *Ring[T]) Push(v T) (evicted T, wasEvicted bool) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		evicted, wasEvicted = r.buf[r.next], true
		r.buf[r.next] = v
		r.dropped++
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	return evicted, wasEvicted
}

// Items returns the retained elements in insertion order (oldest first).
func (r *Ring[T]) Items() []T {
	if len(r.buf) < cap(r.buf) {
		return append([]T(nil), r.buf...)
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of retained elements.
func (r *Ring[T]) Len() int { return len(r.buf) }

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return cap(r.buf) }

// Total returns the number of elements ever pushed (including evicted
// ones).
func (r *Ring[T]) Total() int64 { return r.total }

// Dropped returns how many elements were evicted because the ring
// wrapped.  Total() - Dropped() equals the number of retained elements.
func (r *Ring[T]) Dropped() int64 { return r.dropped }
