package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRingSinkBelowCapacity(t *testing.T) {
	r := NewRingSink(4)
	r.Emit(Event{Type: EvAdmitStart, Job: 1})
	r.Emit(Event{Type: EvCommitted, Job: 1})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	if evs[0].Type != EvAdmitStart || evs[1].Type != EvCommitted {
		t.Fatalf("events = %+v", evs)
	}
	if r.Total() != 2 {
		t.Fatalf("total = %d, want 2", r.Total())
	}
}

func TestRingSinkWrapsKeepingNewest(t *testing.T) {
	r := NewRingSink(3)
	for i := 1; i <= 7; i++ {
		r.Emit(Event{Type: EvEventFired, Job: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, want := range []int{5, 6, 7} {
		if evs[i].Job != want {
			t.Fatalf("evs[%d].Job = %d, want %d (events=%v)", i, evs[i].Job, want, evs)
		}
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d, want 7", r.Total())
	}
}

// TestRingSinkDroppedAccountingUnderWrap is the regression test for the
// ring's wrap semantics: eviction must preserve emission order and be
// accounted in Dropped rather than silently overwritten, and the invariant
// Total() == Dropped() + len(Events()) must hold at every point.
func TestRingSinkDroppedAccountingUnderWrap(t *testing.T) {
	r := NewRingSink(3)
	check := func(step int) {
		t.Helper()
		if got, want := r.Total(), r.Dropped()+int64(len(r.Events())); got != want {
			t.Fatalf("step %d: Total()=%d but Dropped()+len(Events())=%d", step, got, want)
		}
	}
	for i := 1; i <= 2; i++ {
		r.Emit(Event{Type: EvEventFired, Job: i})
		check(i)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped below capacity: %d", r.Dropped())
	}
	for i := 3; i <= 10; i++ {
		r.Emit(Event{Type: EvEventFired, Job: i})
		check(i)
	}
	if r.Dropped() != 7 || r.Total() != 10 {
		t.Fatalf("dropped=%d total=%d, want 7/10", r.Dropped(), r.Total())
	}
	// The surviving window is the newest contiguous suffix, in order.
	evs := r.Events()
	for i, want := range []int{8, 9, 10} {
		if evs[i].Job != want {
			t.Fatalf("evs[%d].Job = %d, want %d (%v)", i, evs[i].Job, want, evs)
		}
	}
}

func TestNewRingSinkPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRingSink(0) did not panic")
		}
	}()
	NewRingSink(0)
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	in := []Event{
		{Time: 1, Type: EvAdmitStart, Job: 3, Attrs: map[string]float64{"chains": 2}},
		{Time: 2, Type: EvRejected, Job: 4, Reason: "no-feasible-chain"},
		{Time: 3, Type: EvWorkerFault, Worker: 1, Reason: "crash"},
	}
	for _, ev := range in {
		s.Emit(ev)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Type != in[i].Type || out[i].Job != in[i].Job || out[i].Reason != in[i].Reason || out[i].Time != in[i].Time {
			t.Fatalf("out[%d] = %+v, want %+v", i, out[i], in[i])
		}
	}
	if out[0].Attrs["chains"] != 2 {
		t.Fatalf("attrs lost: %+v", out[0].Attrs)
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader("{\"t\":1,\"type\":\"Committed\"}\n\n{\"t\":2,\"type\":\"Rejected\"}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line parsed")
	}
}

type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(errWriter{})
	for i := 0; i < 100000; i++ { // enough to overflow the bufio buffer
		s.Emit(Event{Type: EvEventFired, Name: "tick"})
	}
	if err := s.Flush(); err == nil {
		t.Fatal("write error swallowed")
	}
}

type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestJSONLSinkCloseClosesWriter(t *testing.T) {
	var cr closeRecorder
	s := NewJSONLSink(&cr)
	s.Emit(Event{Type: EvCommitted, Job: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !cr.closed {
		t.Fatal("underlying writer not closed")
	}
	evs, err := ReadJSONL(&cr.Buffer)
	if err != nil || len(evs) != 1 {
		t.Fatalf("events = %v, err = %v", evs, err)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	m := MultiSink{a, nil, b}
	m.Emit(Event{Type: EvTieBreak, Job: 9})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("totals = %d, %d, want 1, 1", a.Total(), b.Total())
	}
}
