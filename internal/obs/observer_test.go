package obs

import (
	"bytes"
	"fmt"
	"testing"

	"milan/internal/calypso"
	"milan/internal/core"
	"milan/internal/qos"
	"milan/internal/sim"
)

func tunableJob(id int, release float64) core.Job {
	return core.Job{ID: id, Release: release, Chains: []core.Chain{
		{Name: "wide", Quality: 1, Tasks: []core.Task{
			{Name: "t", Procs: 4, Duration: 10, Deadline: release + 40},
		}},
		{Name: "narrow", Quality: 0.5, Tasks: []core.Task{
			{Name: "t", Procs: 1, Duration: 30, Deadline: release + 40},
		}},
	}}
}

func eventTypes(evs []Event) map[EventType]int {
	m := make(map[EventType]int)
	for _, ev := range evs {
		m[ev.Type]++
	}
	return m
}

func TestInstrumentedScheduler(t *testing.T) {
	o := New(Config{KeepPlacements: true})
	s := core.NewScheduler(4, 0, o.InstrumentOptions(nil))
	pl, err := s.Admit(tunableJob(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil {
		t.Fatal("job 1 not admitted")
	}
	// Saturate the machine so a later urgent job is rejected.
	if _, err := s.Admit(core.Job{ID: 2, Chains: []core.Chain{
		{Quality: 1, Tasks: []core.Task{{Procs: 4, Duration: 100, Deadline: 110}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(core.Job{ID: 3, Chains: []core.Chain{
		{Quality: 1, Tasks: []core.Task{{Procs: 4, Duration: 5, Deadline: 20}}},
	}}); err == nil {
		t.Fatal("infeasible job admitted")
	}

	snap := o.Snapshot()
	if snap.Counters[MetricAdmitted] != 2 {
		t.Fatalf("admitted = %d, want 2", snap.Counters[MetricAdmitted])
	}
	if snap.Counters[MetricRejected] != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Counters[MetricRejected])
	}
	if snap.Counters[MetricChainsTried] < 4 { // 2 + 1 + 1
		t.Fatalf("chains tried = %d, want >= 4", snap.Counters[MetricChainsTried])
	}
	if snap.Counters[MetricHolesProbed] < 1 {
		t.Fatalf("holes probed = %d, want >= 1", snap.Counters[MetricHolesProbed])
	}
	if snap.Counters[MetricPlanFailures] != 1 {
		t.Fatalf("plan failures = %d, want 1", snap.Counters[MetricPlanFailures])
	}
	if snap.Gauges[MetricReservedArea] <= 0 {
		t.Fatalf("reserved area = %v, want > 0", snap.Gauges[MetricReservedArea])
	}
	if snap.Histograms[MetricAdmitSeconds].Count != 3 {
		t.Fatalf("admit latency samples = %d, want 3", snap.Histograms[MetricAdmitSeconds].Count)
	}

	types := eventTypes(o.Events())
	if types[EvAdmitStart] != 3 || types[EvCommitted] != 2 || types[EvRejected] != 1 {
		t.Fatalf("event types = %v", types)
	}
	if types[EvChainTried] < 4 || types[EvHolesProbed] < 4 {
		t.Fatalf("per-chain events = %v", types)
	}

	if got := len(o.Placements()); got != 2 {
		t.Fatalf("retained placements = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if evs, err := ParseChromeTrace(&buf); err != nil || len(evs) == 0 {
		t.Fatalf("chrome trace round-trip: %d events, err = %v", len(evs), err)
	}
}

func TestInstrumentedArbitrator(t *testing.T) {
	o := New(Config{})
	var seen int
	cfg := o.InstrumentArbitratorConfig(qos.ArbitratorConfig{
		Procs:    4,
		Observer: func(qos.Decision) { seen++ },
	})
	arb, err := qos.NewArbitrator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arb.Negotiate(tunableJob(1, 0)); err != nil {
		t.Fatal(err)
	}
	if o.Snapshot().Counters[MetricDecisions] != 1 {
		t.Fatalf("decisions = %d, want 1", o.Snapshot().Counters[MetricDecisions])
	}
	if seen != 1 {
		t.Fatalf("wrapped observer saw %d decisions, want 1", seen)
	}
}

func TestInstrumentDynamicRenegotiation(t *testing.T) {
	o := New(Config{})
	d, err := qos.NewDynamicArbitrator(4, o.InstrumentOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	var chainedReneg, chainedAbort int
	d.OnRenegotiated = func(int, *qos.Grant) { chainedReneg++ }
	d.OnAborted = func(int) { chainedAbort++ }
	o.InstrumentDynamic(d)

	// Two 2-proc jobs run side by side on 4 processors; a third with a
	// tight deadline queues behind them.  Halving the machine forces job 2
	// to slide later (renegotiated) and pushes job 3 past its deadline
	// (aborted).
	for id, deadline := range map[int]float64{1: 1000, 2: 1000} {
		if _, err := d.Negotiate(core.Job{ID: id, Chains: []core.Chain{
			{Quality: 1, Tasks: []core.Task{{Procs: 2, Duration: 10, Deadline: deadline}}},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Negotiate(core.Job{ID: 3, Chains: []core.Chain{
		{Quality: 1, Tasks: []core.Task{{Procs: 2, Duration: 5, Deadline: 16}}},
	}}); err != nil {
		t.Fatal(err)
	}
	aborted, err := d.SetCapacity(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0] != 3 {
		t.Fatalf("aborted = %v, want [3]", aborted)
	}

	snap := o.Snapshot()
	if snap.Counters[MetricAborted] != 1 {
		t.Fatalf("aborted counter = %d, want 1", snap.Counters[MetricAborted])
	}
	if snap.Counters[MetricRenegotiated] != 1 {
		t.Fatalf("renegotiated counter = %d, want 1", snap.Counters[MetricRenegotiated])
	}
	if snap.Counters[MetricDecisions] != 3 {
		t.Fatalf("decisions = %d, want 3", snap.Counters[MetricDecisions])
	}
	if chainedReneg != 1 || chainedAbort != 1 {
		t.Fatalf("chained callbacks = %d/%d, want 1/1", chainedReneg, chainedAbort)
	}
	types := eventTypes(o.Events())
	if types[EvRenegotiated] != 1 || types[EvAborted] != 1 {
		t.Fatalf("event types = %v", types)
	}
	var aborts []Event
	for _, ev := range o.Events() {
		if ev.Type == EvAborted {
			aborts = append(aborts, ev)
		}
	}
	if aborts[0].Job != 3 || aborts[0].Reason != "capacity-change" {
		t.Fatalf("abort event = %+v", aborts[0])
	}
}

func TestBindEngine(t *testing.T) {
	o := New(Config{})
	var engine sim.Engine
	engine.OnEvent = o.BindEngine(&engine)
	var fired int
	engine.At(5, "tick", func() { fired++ })
	engine.At(9, "tock", func() {})
	engine.Run()
	if fired != 1 {
		t.Fatal("callback not run")
	}
	if got := o.Snapshot().Counters[MetricSimEvents]; got != 2 {
		t.Fatalf("sim events = %d, want 2", got)
	}
	evs := o.Events()
	if len(evs) != 2 || evs[0].Type != EvEventFired || evs[0].Name != "tick" || evs[0].Time != 5 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Time != 9 {
		t.Fatalf("second event time = %v, want 9", evs[1].Time)
	}
	// The observer's clock follows the sim clock after binding.
	if now := o.now(); now != 9 {
		t.Fatalf("observer clock = %v, want 9 (sim time)", now)
	}
	o.SetClock(nil) // back to wall time
	if now := o.now(); now == 9 {
		t.Fatal("clock still pinned to sim time after SetClock(nil)")
	}
}

func TestCalypsoHooks(t *testing.T) {
	o := New(Config{})
	rt, err := calypso.New(calypso.Config{
		Workers: 2,
		Faults:  &calypso.FaultPlan{TransientProb: 0.3, Seed: 11},
		Hooks:   o.CalypsoHooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := rt.Parallel(4, func(ctx *calypso.TaskCtx, width, number int) error {
			ctx.Write(fmt.Sprintf("k%d", number), number)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := o.Snapshot()
	if snap.Counters[MetricCalypsoSteps] != 3 {
		t.Fatalf("steps = %d, want 3", snap.Counters[MetricCalypsoSteps])
	}
	if snap.Counters[MetricCalypsoExecs] < 12 {
		t.Fatalf("execs = %d, want >= 12", snap.Counters[MetricCalypsoExecs])
	}
	if snap.Histograms[MetricStepSeconds].Count != 3 {
		t.Fatalf("step duration samples = %d, want 3", snap.Histograms[MetricStepSeconds].Count)
	}
	types := eventTypes(o.Events())
	if types[EvStepStart] != 3 || types[EvStepDone] != 3 {
		t.Fatalf("event types = %v", types)
	}
	if len(o.Spans()) < 12 {
		t.Fatalf("worker spans = %d, want >= 12", len(o.Spans()))
	}
}

func TestObserverRecentAndExtraSink(t *testing.T) {
	extra := NewRingSink(16)
	o := New(Config{RingSize: 4, Sink: extra})
	for i := 1; i <= 6; i++ {
		o.Emit(Event{Type: EvEventFired, Job: i})
	}
	all := o.Events()
	if len(all) != 4 || all[0].Job != 3 {
		t.Fatalf("ring = %+v", all)
	}
	recent := o.Recent(2)
	if len(recent) != 2 || recent[0].Job != 5 || recent[1].Job != 6 {
		t.Fatalf("recent = %+v", recent)
	}
	if len(o.Recent(0)) != 4 {
		t.Fatalf("Recent(0) = %d events, want all 4", len(o.Recent(0)))
	}
	if extra.Total() != 6 { // the extra sink sees everything, unbounded by the ring
		t.Fatalf("extra sink total = %d, want 6", extra.Total())
	}
	for _, ev := range extra.Events() {
		if ev.Time == 0 && ev.Job != 1 { // first event may land at t=0 exactly
			t.Fatalf("event missing timestamp: %+v", ev)
		}
	}
}
