package ledger

import (
	"fmt"

	"milan/internal/obs"
)

// Sharded is a plane-wide ledger: one Ledger per admission shard, each
// mutated under its own shard's lock, merged lock-free on read.  A
// 1-shard Sharded serves the monolithic arbitrator.
type Sharded struct {
	leds []*Ledger
}

// NewSharded builds n shard ledgers from the same configuration
// (shard i stamped with Shard = i).  Per-shard capacity is stamped by
// whoever partitions the pool (fed.New calls SetCapacity per shard),
// so cfg.Capacity is normally left zero here.
func NewSharded(cfg Config, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{leds: make([]*Ledger, n)}
	for i := range s.leds {
		c := cfg
		c.Shard = i
		s.leds[i] = New(c)
	}
	return s
}

// Shards returns the number of shard ledgers.
func (s *Sharded) Shards() int {
	if s == nil {
		return 0
	}
	return len(s.leds)
}

// Shard returns the i-th shard ledger (nil when out of range or s is
// nil, so fed wiring stays nil-safe).
func (s *Sharded) Shard(i int) *Ledger {
	if s == nil || i < 0 || i >= len(s.leds) {
		return nil
	}
	return s.leds[i]
}

// Advance moves every shard ledger's clock forward.
func (s *Sharded) Advance(now float64) {
	if s == nil {
		return
	}
	for _, l := range s.leds {
		l.Advance(now)
	}
}

// Merged returns the plane-wide snapshot: the lock-free merge of every
// shard's cached snapshot.
func (s *Sharded) Merged() *Snapshot {
	if s == nil {
		return nil
	}
	var out *Snapshot
	for _, l := range s.leds {
		out = out.Merge(l.Snapshot())
	}
	return out
}

// BindMetrics binds every shard ledger to the registry: a single-shard
// plane binds plain ledger_* names, a multi-shard plane binds
// ledger_shard<i>_* per shard.
func (s *Sharded) BindMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	if len(s.leds) == 1 {
		s.leds[0].BindMetrics(reg)
		return
	}
	for i, l := range s.leds {
		l.BindMetricsPrefixed(reg, fmt.Sprintf("ledger_shard%d", i))
	}
}
