package ledger

import (
	"math"
	"math/rand"
	"testing"

	"milan/internal/core"
)

// mkPl builds a one-task placement spanning [start, start+dur) on procs
// processors.
func mkPl(start, dur float64, procs int) *core.Placement {
	return &core.Placement{Tasks: []core.TaskPlacement{{
		Task: 0, Start: start, Finish: start + dur, Procs: procs,
	}}}
}

func TestBucketSpreading(t *testing.T) {
	l := New(Config{Capacity: 10, Width: 10, Keep: 2, Factor: 2, Tiers: 2})
	k := Key{Tenant: "a"}
	l.RecordCommitKeyed(k, mkPl(5, 20, 2)) // [5, 25) x 2 = area 40
	s := l.Snapshot()
	if got := s.TotalReservedArea; got != 40 {
		t.Fatalf("total reserved = %v, want 40", got)
	}
	if got := s.BucketedReservedArea(); got != 40 {
		t.Fatalf("bucketed reserved = %v, want 40", got)
	}
	want := map[float64]float64{0: 10, 10: 20, 20: 10}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d: %+v", len(s.Buckets), len(want), s.Buckets)
	}
	for _, b := range s.Buckets {
		if w, ok := want[b.Start]; !ok || b.ReservedArea() != w {
			t.Errorf("bucket at %v: reserved %v, want %v", b.Start, b.ReservedArea(), w)
		}
		if b.CapacityArea != 100 { // 10 procs x 10 wide
			t.Errorf("bucket at %v: capacity area %v, want 100", b.Start, b.CapacityArea)
		}
	}
}

func TestRealizedAndWaste(t *testing.T) {
	l := New(Config{Capacity: 4, Width: 50})
	k := Key{Tenant: "a", Class: 1}
	l.RecordCommitKeyed(k, mkPl(0, 10, 2))
	l.RecordCommitKeyed(k, mkPl(10, 10, 2))
	l.RecordCompletion(k, mkPl(0, 10, 2))
	s := l.Snapshot()
	if s.TotalRealizedArea != 20 || s.TotalReservedArea != 40 {
		t.Fatalf("reserved/realized = %v/%v, want 40/20", s.TotalReservedArea, s.TotalRealizedArea)
	}
	if got := s.TotalWasteArea(); got != 20 {
		t.Fatalf("waste = %v, want 20 (one reservation still in flight)", got)
	}
	if len(s.Totals) != 1 || s.Totals[0].Waste() != 20 {
		t.Fatalf("per-key totals = %+v, want one entry with waste 20", s.Totals)
	}
}

// TestRetentionPreservesIntegral drives a long randomized run through
// every retention tier and checks the invariant the tiered ring promises:
// folds trade resolution, never area.
func TestRetentionPreservesIntegral(t *testing.T) {
	l := New(Config{Capacity: 16, Width: 10, Keep: 4, Factor: 4, Tiers: 3})
	rng := rand.New(rand.NewSource(7))
	clock := 0.0
	keys := []Key{{Tenant: "a"}, {Tenant: "b"}, {Tenant: "b", Class: 1}}
	for i := 0; i < 2000; i++ {
		clock += rng.Float64() * 5
		k := keys[rng.Intn(len(keys))]
		pl := mkPl(clock+rng.Float64()*20, 1+rng.Float64()*30, 1+rng.Intn(4))
		l.RecordCommitKeyed(k, pl)
		if rng.Intn(2) == 0 {
			l.RecordCompletion(k, pl)
		}
		l.Advance(clock)
	}
	s := l.Snapshot()
	if s.Downsamples == 0 || s.AgedFolds == 0 {
		t.Fatalf("retention never ran: downsamples=%d agedFolds=%d", s.Downsamples, s.AgedFolds)
	}
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(b), 1) }
	if e := relErr(s.BucketedReservedArea(), s.TotalReservedArea); e > 1e-9 {
		t.Errorf("bucketed reserved drifted from exact total by %v", e)
	}
	if e := relErr(s.BucketedRealizedArea(), s.TotalRealizedArea); e > 1e-9 {
		t.Errorf("bucketed realized drifted from exact total by %v", e)
	}
	// The retained bucket set must stay a sorted, non-overlapping cut at
	// tier-aligned widths.
	widths := map[float64]bool{10: true, 40: true, 160: true}
	for i, b := range s.Buckets {
		if !widths[b.Width] {
			t.Errorf("bucket %d has off-tier width %v", i, b.Width)
		}
		if math.Mod(b.Start, b.Width) != 0 {
			t.Errorf("bucket %d start %v not aligned to width %v", i, b.Start, b.Width)
		}
		if i > 0 && b.Start < s.Buckets[i-1].End() {
			t.Errorf("bucket %d overlaps predecessor: [%v) after [%v, %v)",
				i, b.Start, s.Buckets[i-1].Start, s.Buckets[i-1].End())
		}
	}
}

func TestCapacityTimeline(t *testing.T) {
	l := New(Config{Capacity: 4, Width: 50})
	l.RecordCommitKeyed(Key{}, mkPl(0, 100, 1)) // materialize [0,50) and [50,100)
	l.SetCapacity(8, 50)
	s := l.Snapshot()
	if len(s.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(s.Buckets))
	}
	if s.Buckets[0].CapacityArea != 200 { // 4 x 50
		t.Errorf("bucket [0,50) capacity area = %v, want 200", s.Buckets[0].CapacityArea)
	}
	if s.Buckets[1].CapacityArea != 400 { // 8 x 50
		t.Errorf("bucket [50,100) capacity area = %v, want 400", s.Buckets[1].CapacityArea)
	}
	if s.Capacity != 8 {
		t.Errorf("snapshot capacity = %d, want 8", s.Capacity)
	}
}

func TestSetCapacityClampsMonotone(t *testing.T) {
	l := New(Config{Capacity: 4})
	l.SetCapacity(8, 10)
	l.SetCapacity(6, 5) // earlier than the last mark: restates it
	if got := l.Snapshot().Capacity; got != 6 {
		t.Fatalf("capacity = %d, want 6", got)
	}
	if marks := len(l.capMarks); marks != 2 {
		t.Fatalf("capacity marks = %d, want 2 (no out-of-order mark appended)", marks)
	}
}

func TestAdvanceMonotone(t *testing.T) {
	l := New(Config{Capacity: 1})
	l.Advance(100)
	s1 := l.Snapshot()
	l.Advance(50) // earlier: must be a no-op, including the version
	if s2 := l.Snapshot(); s2 != s1 {
		t.Fatalf("backward Advance rebuilt the snapshot (version bumped)")
	}
	if l.Snapshot().Now != 100 {
		t.Fatalf("now = %v, want 100", l.Snapshot().Now)
	}
}

func TestSnapshotCachedUntilMutation(t *testing.T) {
	l := New(Config{Capacity: 2})
	l.RecordCommitKeyed(Key{Tenant: "x"}, mkPl(0, 10, 1))
	s1 := l.Snapshot()
	if s2 := l.Snapshot(); s2 != s1 {
		t.Fatalf("unmutated snapshot not cached")
	}
	l.RecordRejection(&core.Job{Tenant: "x"})
	if s3 := l.Snapshot(); s3 == s1 {
		t.Fatalf("snapshot not rebuilt after mutation")
	}
}

func TestNilLedgerSafe(t *testing.T) {
	var l *Ledger
	l.RecordCommit(&core.Job{}, mkPl(0, 1, 1))
	l.RecordCommitKeyed(Key{}, mkPl(0, 1, 1))
	l.RecordCompletion(Key{}, mkPl(0, 1, 1))
	l.RecordRejection(&core.Job{})
	l.Advance(10)
	l.SetCapacity(4, 0)
	l.BindMetrics(nil)
	l.Mount(nil)
	if l.TotalReservedArea() != 0 || l.TotalRealizedArea() != 0 || l.ShardID() != 0 {
		t.Fatal("nil ledger reported non-zero state")
	}
	if l.Snapshot() != nil {
		t.Fatal("nil ledger returned a snapshot")
	}
	if h := l.DecisionObserver(nil); h != nil {
		t.Fatal("nil ledger decision observer should pass next through (nil)")
	}
	var sh *Sharded
	sh.Advance(1)
	sh.Mount(nil)
	sh.BindMetrics(nil)
	if sh.Shards() != 0 || sh.Shard(0) != nil || sh.Merged() != nil {
		t.Fatal("nil sharded ledger reported non-zero state")
	}
}

func TestDerivedSeries(t *testing.T) {
	l := New(Config{Capacity: 4, Width: 10})
	a, b := Key{Tenant: "a"}, Key{Tenant: "b"}
	pa, pb := mkPl(0, 10, 3), mkPl(10, 10, 1)
	l.RecordCommitKeyed(a, pa) // [0,10): 30 of 40
	l.RecordCommitKeyed(b, pb) // [10,20): 10 of 40
	l.RecordCompletion(a, pa)
	s := l.Snapshot()

	series := s.Series()
	if len(series) != 2 {
		t.Fatalf("series has %d points, want 2", len(series))
	}
	if series[0].Utilization != 0.75 || series[1].Utilization != 0.25 {
		t.Errorf("utilization series = %v, %v; want 0.75, 0.25", series[0].Utilization, series[1].Utilization)
	}
	if series[0].WasteArea != 0 || series[1].WasteArea != 10 {
		t.Errorf("waste series = %v, %v; want 0, 10", series[0].WasteArea, series[1].WasteArea)
	}
	if got := s.Utilization(); got != 0.5 {
		t.Errorf("overall utilization = %v, want 0.5", got)
	}
	// Both buckets are partially reserved, so every idle unit is trapped.
	if got := s.Fragmentation(); got != 1 {
		t.Errorf("fragmentation = %v, want 1", got)
	}
	shares := s.FairShares()
	if len(shares) != 2 {
		t.Fatalf("fair shares has %d entries, want 2", len(shares))
	}
	if shares[0].Share != 0.75 || shares[0].Ratio != 1.5 {
		t.Errorf("tenant a share/ratio = %v/%v, want 0.75/1.5", shares[0].Share, shares[0].Ratio)
	}
	if shares[1].Share != 0.25 || shares[1].Ratio != 0.5 {
		t.Errorf("tenant b share/ratio = %v/%v, want 0.25/0.5", shares[1].Share, shares[1].Ratio)
	}
}

func TestMergeAddsAcrossShards(t *testing.T) {
	cfg := Config{Capacity: 4, Width: 10}
	sh := NewSharded(cfg, 2)
	a, b := Key{Tenant: "a"}, Key{Tenant: "b"}
	sh.Shard(0).RecordCommitKeyed(a, mkPl(0, 10, 2))
	sh.Shard(1).RecordCommitKeyed(a, mkPl(0, 10, 1))
	sh.Shard(1).RecordCommitKeyed(b, mkPl(10, 10, 3))
	m := sh.Merged()
	if m.TotalReservedArea != 60 {
		t.Fatalf("merged total = %v, want 60", m.TotalReservedArea)
	}
	if got := m.BucketedReservedArea(); got != 60 {
		t.Fatalf("merged bucketed = %v, want 60", got)
	}
	if len(m.Buckets) != 2 {
		t.Fatalf("merged buckets = %d, want 2 (identical spans fold)", len(m.Buckets))
	}
	// Identical spans from distinct shards add their capacity integrals.
	if m.Buckets[0].CapacityArea != 80 {
		t.Errorf("merged capacity area = %v, want 80 (4p x 10 x 2 shards)", m.Buckets[0].CapacityArea)
	}
	if got := len(m.Shards); got != 2 {
		t.Errorf("merged shard stamps = %v, want [0 1]", m.Shards)
	}
	if len(m.Totals) != 2 || m.Totals[0].ReservedArea != 30 || m.Totals[1].ReservedArea != 30 {
		t.Errorf("merged totals = %+v, want a=30 b=30", m.Totals)
	}
}

// TestMergeContainment merges shards whose clocks diverged: one shard's
// aged, coarse buckets must absorb the other's fine buckets covering the
// same span (grids nest, so overlap implies containment).
func TestMergeContainment(t *testing.T) {
	cfg := Config{Capacity: 4, Width: 10, Keep: 2, Factor: 4, Tiers: 2}
	fine := New(cfg)
	coarse := New(Config{Capacity: 4, Width: 10, Keep: 2, Factor: 4, Tiers: 2, Shard: 1})
	k := Key{Tenant: "a"}
	fine.RecordCommitKeyed(k, mkPl(0, 20, 1))   // tier-0 buckets [0,10) [10,20)
	coarse.RecordCommitKeyed(k, mkPl(0, 20, 2)) // same span...
	coarse.Advance(500)                         // ...then folded coarse (or aged)
	m := fine.Snapshot().Merge(coarse.Snapshot())
	if got, want := m.BucketedReservedArea(), 60.0; got != want {
		t.Fatalf("merged bucketed+aged = %v, want %v", got, want)
	}
	if m.TotalReservedArea != 60 {
		t.Fatalf("merged exact total = %v, want 60", m.TotalReservedArea)
	}
	for i := 1; i < len(m.Buckets); i++ {
		if m.Buckets[i].Start < m.Buckets[i-1].End() {
			t.Fatalf("merged buckets overlap at %d: %+v", i, m.Buckets)
		}
	}
	if nil2 := (*Snapshot)(nil).Merge(nil); nil2 != nil {
		t.Fatal("nil.Merge(nil) != nil")
	}
	if s := fine.Snapshot(); s.Merge(nil) != s || (*Snapshot)(nil).Merge(s) != s {
		t.Fatal("Merge with nil must return the other side unchanged")
	}
}
