package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// JSONL row kinds.  A stream is one meta row followed by any number of
// totals, bucket and aged rows, one JSON object per line — append-
// friendly, greppable, and decodable without loading the whole file.
const (
	kindMeta   = "meta"
	kindTotals = "totals"
	kindBucket = "bucket"
	kindAged   = "aged"
)

type metaRow struct {
	Kind              string  `json:"kind"`
	Version           uint64  `json:"version"`
	Shards            []int   `json:"shards"`
	Now               float64 `json:"now"`
	Origin            float64 `json:"origin"`
	Capacity          int     `json:"capacity"`
	AgedBefore        float64 `json:"aged_before"`
	TotalReservedArea float64 `json:"total_reserved_area"`
	TotalRealizedArea float64 `json:"total_realized_area"`
	Commits           int64   `json:"commits"`
	Completions       int64   `json:"completions"`
	Rejections        int64   `json:"rejections"`
	Downsamples       int64   `json:"downsamples"`
	AgedFolds         int64   `json:"aged_folds"`
}

type totalsRow struct {
	Kind string `json:"kind"`
	Totals
}

type bucketRow struct {
	Kind string `json:"kind"`
	Bucket
}

type agedRow struct {
	Kind  string `json:"kind"`
	Cells []Cell `json:"cells"`
}

// WriteJSONL writes the snapshot as JSON Lines: a meta row, one totals
// row per key, one bucket row per retained bucket, and an aged row when
// anything has aged out.
func (s *Snapshot) WriteJSONL(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("ledger: nil snapshot")
	}
	enc := json.NewEncoder(w)
	meta := metaRow{
		Kind:              kindMeta,
		Version:           s.Version,
		Shards:            s.Shards,
		Now:               s.Now,
		Origin:            s.Origin,
		Capacity:          s.Capacity,
		AgedBefore:        s.AgedBefore,
		TotalReservedArea: s.TotalReservedArea,
		TotalRealizedArea: s.TotalRealizedArea,
		Commits:           s.Commits,
		Completions:       s.Completions,
		Rejections:        s.Rejections,
		Downsamples:       s.Downsamples,
		AgedFolds:         s.AgedFolds,
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, t := range s.Totals {
		if err := enc.Encode(totalsRow{Kind: kindTotals, Totals: t}); err != nil {
			return err
		}
	}
	for _, b := range s.Buckets {
		if err := enc.Encode(bucketRow{Kind: kindBucket, Bucket: b}); err != nil {
			return err
		}
	}
	if len(s.Aged) > 0 {
		if err := enc.Encode(agedRow{Kind: kindAged, Cells: s.Aged}); err != nil {
			return err
		}
	}
	return nil
}

// DecodeJSONL reads a snapshot back from its JSON Lines form.  The
// decoder is strict — unknown kinds, rows before the meta line,
// non-finite numbers and malformed buckets are errors, never panics —
// because it is fuzzed (FuzzLedgerDecode) and fed from artifacts that
// may be truncated or hand-edited.
func DecodeJSONL(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out *Snapshot
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", line, err)
		}
		if probe.Kind != kindMeta && out == nil {
			return nil, fmt.Errorf("ledger: line %d: %q row before meta", line, probe.Kind)
		}
		switch probe.Kind {
		case kindMeta:
			if out != nil {
				return nil, fmt.Errorf("ledger: line %d: duplicate meta row", line)
			}
			var m metaRow
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", line, err)
			}
			if !finite(m.Now, m.Origin, m.AgedBefore, m.TotalReservedArea, m.TotalRealizedArea) {
				return nil, fmt.Errorf("ledger: line %d: non-finite meta fields", line)
			}
			out = &Snapshot{
				Version:           m.Version,
				Shards:            m.Shards,
				Now:               m.Now,
				Origin:            m.Origin,
				Capacity:          m.Capacity,
				AgedBefore:        m.AgedBefore,
				TotalReservedArea: m.TotalReservedArea,
				TotalRealizedArea: m.TotalRealizedArea,
				Commits:           m.Commits,
				Completions:       m.Completions,
				Rejections:        m.Rejections,
				Downsamples:       m.Downsamples,
				AgedFolds:         m.AgedFolds,
			}
		case kindTotals:
			var t totalsRow
			if err := json.Unmarshal(raw, &t); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", line, err)
			}
			if !finite(t.ReservedArea, t.RealizedArea) {
				return nil, fmt.Errorf("ledger: line %d: non-finite totals", line)
			}
			out.Totals = append(out.Totals, t.Totals)
		case kindBucket:
			var b bucketRow
			if err := json.Unmarshal(raw, &b); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", line, err)
			}
			if !finite(b.Start, b.Width, b.CapacityArea) || b.Width <= 0 {
				return nil, fmt.Errorf("ledger: line %d: malformed bucket span [%v, +%v)", line, b.Start, b.Width)
			}
			if err := checkCells(b.Cells); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", line, err)
			}
			out.Buckets = append(out.Buckets, b.Bucket)
		case kindAged:
			var a agedRow
			if err := json.Unmarshal(raw, &a); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", line, err)
			}
			if err := checkCells(a.Cells); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", line, err)
			}
			out.Aged = append(out.Aged, a.Cells...)
		default:
			return nil, fmt.Errorf("ledger: line %d: unknown row kind %q", line, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if out == nil {
		return nil, fmt.Errorf("ledger: empty stream (no meta row)")
	}
	return out, nil
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func checkCells(cs []Cell) error {
	for _, c := range cs {
		if !finite(c.ReservedArea, c.RealizedArea) {
			return fmt.Errorf("non-finite cell for tenant %q class %d", c.Tenant, c.Class)
		}
	}
	return nil
}
