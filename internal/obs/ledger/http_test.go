package ledger

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerJSON(t *testing.T) {
	l := New(Config{Capacity: 4, Width: 10})
	k := Key{Tenant: "acme", Class: 1}
	pl := mkPl(0, 10, 2)
	l.RecordCommitKeyed(k, pl)
	l.RecordCompletion(k, pl)

	rec := httptest.NewRecorder()
	l.Handler()(rec, httptest.NewRequest("GET", "/ledger", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		Totals []Totals `json:"totals"`
		Series []struct {
			Utilization float64 `json:"utilization"`
		} `json:"series"`
		Utilization float64     `json:"utilization"`
		WasteArea   float64     `json:"waste_area"`
		FairShares  []FairShare `json:"fair_shares"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Totals) != 1 || body.Totals[0].Tenant != "acme" || body.Totals[0].ReservedArea != 20 {
		t.Errorf("totals = %+v", body.Totals)
	}
	if body.Utilization != 0.5 || body.WasteArea != 0 {
		t.Errorf("util=%v waste=%v, want 0.5/0", body.Utilization, body.WasteArea)
	}
	if len(body.Series) != 1 || body.Series[0].Utilization != 0.5 {
		t.Errorf("series = %+v", body.Series)
	}
	if len(body.FairShares) != 1 || body.FairShares[0].Ratio != 1 {
		t.Errorf("fair shares = %+v", body.FairShares)
	}
}

func TestHandlerProm(t *testing.T) {
	sh := NewSharded(Config{Capacity: 4, Width: 10}, 2)
	// A hostile tenant name: label escaping must keep the exposition valid.
	k := Key{Tenant: "quo\"ted\\te\nnant", Class: 2}
	sh.Shard(0).RecordCommitKeyed(k, mkPl(0, 10, 1))
	sh.Shard(1).RecordCommitKeyed(Key{Tenant: "acme"}, mkPl(0, 10, 3))

	rec := httptest.NewRecorder()
	sh.Handler()(rec, httptest.NewRequest("GET", "/ledger?format=prom", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	out := rec.Body.String()
	for _, family := range []string{
		"ledger_tenant_reserved_area", "ledger_tenant_realized_area",
		"ledger_tenant_waste_area", "ledger_tenant_commits",
		"ledger_tenant_rejections", "ledger_tenant_fair_share_ratio",
		"ledger_utilization", "ledger_fragmentation",
		"ledger_capacity_procs", "ledger_waste_area_total",
	} {
		if !strings.Contains(out, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}
	if !strings.Contains(out, `tenant="quo\"ted\\te\nnant"`) {
		t.Errorf("hostile tenant label not escaped per exposition format:\n%s", out)
	}
	if !strings.Contains(out, `ledger_tenant_reserved_area{tenant="acme",class="0"} 30`) {
		t.Errorf("missing acme sample:\n%s", out)
	}
	// Merged across shards: capacity is the plane total.
	if !strings.Contains(out, "ledger_capacity_procs 8") {
		t.Errorf("merged capacity not summed:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestHandlerAcceptNegotiation(t *testing.T) {
	l := New(Config{Capacity: 1})
	req := httptest.NewRequest("GET", "/ledger", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	l.Handler()(rec, req)
	if !strings.HasPrefix(rec.Body.String(), "# HELP") {
		t.Errorf("Accept: text/plain did not select the Prometheus exposition")
	}
}

func TestHandlerNoSnapshot(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(func() *Snapshot { return nil })(rec, httptest.NewRequest("GET", "/ledger", nil))
	if rec.Code != 503 {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}
