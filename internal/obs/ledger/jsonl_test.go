package ledger

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"milan/internal/core"
)

// activeLedger builds a ledger with multi-key activity through every
// retention tier, so round-trip tests cover totals, buckets and aged rows.
func activeLedger() *Ledger {
	l := New(Config{Capacity: 8, Width: 10, Keep: 2, Factor: 2, Tiers: 2, Shard: 3})
	a, b := Key{Tenant: "acme"}, Key{Tenant: `quo"ted`, Class: 2}
	for i := 0; i < 40; i++ {
		pl := mkPl(float64(i*5), 8, 1+i%3)
		k := a
		if i%2 == 1 {
			k = b
		}
		l.RecordCommitKeyed(k, pl)
		if i%3 == 0 {
			l.RecordCompletion(k, pl)
		}
		l.Advance(float64(i * 5))
	}
	l.RecordRejection(&core.Job{Tenant: "acme"})
	return l
}

func TestJSONLRoundTrip(t *testing.T) {
	s := activeLedger().Snapshot()
	if s.AgedFolds == 0 || len(s.Aged) == 0 {
		t.Fatalf("fixture never aged anything: folds=%d aged=%d", s.AgedFolds, len(s.Aged))
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v\nstream:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
}

func TestDecodeJSONLErrors(t *testing.T) {
	cases := map[string]string{
		"empty stream":    "",
		"row before meta": `{"kind":"totals","tenant":"a"}`,
		"duplicate meta": `{"kind":"meta"}
{"kind":"meta"}`,
		"unknown kind": `{"kind":"meta"}
{"kind":"mystery"}`,
		"bad json": `{"kind":`,
		"zero-width bucket": `{"kind":"meta"}
{"kind":"bucket","start":0,"width":0}`,
		"negative-width bucket": `{"kind":"meta"}
{"kind":"bucket","start":0,"width":-5}`,
	}
	for name, in := range cases {
		if _, err := DecodeJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestDecodeJSONLToleratesBlankLines(t *testing.T) {
	in := "{\"kind\":\"meta\",\"capacity\":4}\n\n{\"kind\":\"totals\",\"tenant\":\"a\",\"reserved_area\":5}\n"
	s, err := DecodeJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity != 4 || len(s.Totals) != 1 || s.Totals[0].ReservedArea != 5 {
		t.Fatalf("decoded %+v", s)
	}
}

// FuzzLedgerDecode asserts the decoder never panics and that anything it
// accepts re-encodes and re-decodes to the same snapshot (a lossless
// fixed point).
func FuzzLedgerDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := activeLedger().Snapshot().WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"kind":"meta"}`)
	f.Add("{\"kind\":\"meta\"}\n{\"kind\":\"bucket\",\"start\":1,\"width\":2,\"cells\":[{\"tenant\":\"a\",\"reserved_area\":3}]}")
	f.Add("{\"kind\":\"meta\"}\n{\"kind\":\"aged\",\"cells\":[{\"tenant\":\"a\",\"class\":-1}]}")
	f.Add(`{"kind":"bucket"}`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := DecodeJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := s.WriteJSONL(&out); err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		s2, err := DecodeJSONL(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(s2), normalize(s)) {
			t.Fatalf("decode/encode not a fixed point:\n got %+v\nwant %+v", s2, s)
		}
	})
}

// normalize strips representation-only differences the encoder
// legitimately introduces (nil vs empty slices survive JSON
// differently depending on omitempty).
func normalize(s *Snapshot) *Snapshot {
	c := *s
	if len(c.Shards) == 0 {
		c.Shards = nil
	}
	if len(c.Totals) == 0 {
		c.Totals = nil
	}
	if len(c.Buckets) == 0 {
		c.Buckets = nil
	}
	if len(c.Aged) == 0 {
		c.Aged = nil
	}
	for i := range c.Buckets {
		if len(c.Buckets[i].Cells) == 0 {
			c.Buckets[i].Cells = nil
		}
	}
	return &c
}
