package ledger

import (
	"sync"
	"testing"
)

// TestConcurrentShardsMergeOracle hammers per-shard ledgers from one
// goroutine each — with concurrent merged-snapshot readers — and checks
// the final merged snapshot against a sequential oracle fed the same
// events.  Exact totals are order-independent (per-shard recording is
// serialized by the shard's own mutex, and merge adds), so the oracle
// must match exactly.  Run with -race to exercise the snapshot cache and
// the lock-free merge path.
func TestConcurrentShardsMergeOracle(t *testing.T) {
	const shards = 4
	const events = 400
	cfg := Config{Capacity: 8, Width: 20, Keep: 4, Factor: 4, Tiers: 3}
	sh := NewSharded(cfg, shards)
	oracle := New(cfg)

	type event struct {
		key      Key
		start    float64
		dur      float64
		procs    int
		complete bool
	}
	keys := []Key{{Tenant: "a"}, {Tenant: "b"}, {Tenant: "a", Class: 1}}
	plans := make([][]event, shards)
	for i := range plans {
		for j := 0; j < events; j++ {
			plans[i] = append(plans[i], event{
				key:      keys[(i+j)%len(keys)],
				start:    float64(j) * 3,
				dur:      5 + float64((i*7+j)%11),
				procs:    1 + (i+j)%3,
				complete: j%2 == 0,
			})
		}
	}

	// Sequential oracle over all shards' events.
	for _, plan := range plans {
		for _, e := range plan {
			pl := mkPl(e.start, e.dur, e.procs)
			oracle.RecordCommitKeyed(e.key, pl)
			if e.complete {
				oracle.RecordCompletion(e.key, pl)
			}
		}
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent merged readers: exercise Snapshot caching + Merge while
	// shards mutate.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if m := sh.Merged(); m != nil {
						_ = m.BucketedReservedArea()
						_ = m.Utilization()
					}
				}
			}
		}()
	}
	for i := 0; i < shards; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			led := sh.Shard(i)
			for j, e := range plans[i] {
				pl := mkPl(e.start, e.dur, e.procs)
				led.RecordCommitKeyed(e.key, pl)
				if e.complete {
					led.RecordCompletion(e.key, pl)
				}
				if j%50 == 0 {
					led.Advance(e.start)
				}
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	m := sh.Merged()
	om := oracle.Snapshot()
	if m.TotalReservedArea != om.TotalReservedArea {
		t.Errorf("merged reserved = %v, oracle = %v", m.TotalReservedArea, om.TotalReservedArea)
	}
	if m.TotalRealizedArea != om.TotalRealizedArea {
		t.Errorf("merged realized = %v, oracle = %v", m.TotalRealizedArea, om.TotalRealizedArea)
	}
	if m.Commits != om.Commits || m.Completions != om.Completions {
		t.Errorf("merged counts commits/completions = %d/%d, oracle %d/%d",
			m.Commits, m.Completions, om.Commits, om.Completions)
	}
	if len(m.Totals) != len(om.Totals) {
		t.Fatalf("merged has %d keys, oracle %d", len(m.Totals), len(om.Totals))
	}
	for i := range m.Totals {
		got, want := m.Totals[i], om.Totals[i]
		if got.Tenant != want.Tenant || got.Class != want.Class ||
			got.ReservedArea != want.ReservedArea || got.RealizedArea != want.RealizedArea ||
			got.Commits != want.Commits || got.Completions != want.Completions {
			t.Errorf("key %d: merged %+v != oracle %+v", i, got, want)
		}
	}
	// The bucketed view preserves area regardless of interleaving.
	if got, want := m.BucketedReservedArea(), om.TotalReservedArea; !close1e9(got, want) {
		t.Errorf("merged bucketed reserved = %v, want %v", got, want)
	}
}

func close1e9(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}
