package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"milan/internal/obs"
)

// Handler serves ledger snapshots from src: the default representation
// is a JSON envelope (snapshot plus derived series, fair shares and
// fragmentation); ?format=prom — or an Accept header preferring
// text/plain — selects the Prometheus text exposition with per-tenant
// labels.
func Handler(src func() *Snapshot) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		s := src()
		if s == nil {
			http.Error(w, "ledger: no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		if wantsProm(req) {
			w.Header().Set("Content-Type", obs.PromContentType)
			writeProm(w, s)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			*Snapshot
			Series        []SeriesPoint `json:"series"`
			FairShares    []FairShare   `json:"fair_shares"`
			Utilization   float64       `json:"utilization"`
			Fragmentation float64       `json:"fragmentation"`
			WasteArea     float64       `json:"waste_area"`
		}{
			Snapshot:      s,
			Series:        s.Series(),
			FairShares:    s.FairShares(),
			Utilization:   s.Utilization(),
			Fragmentation: s.Fragmentation(),
			WasteArea:     s.TotalWasteArea(),
		})
	}
}

// Handler serves this ledger's snapshots.
func (l *Ledger) Handler() http.HandlerFunc { return Handler(l.Snapshot) }

// Handler serves the plane-wide merged snapshot.
func (s *Sharded) Handler() http.HandlerFunc { return Handler(s.Merged) }

// Mount exposes the ledger on the observer's debug endpoint at /ledger.
func (l *Ledger) Mount(o *obs.Observer) {
	if l == nil || o == nil {
		return
	}
	o.Handle("/ledger", l.Handler(), "per-tenant utilization ledger (JSON; ?format=prom for Prometheus text)")
}

// Mount exposes the merged plane ledger at /ledger.
func (s *Sharded) Mount(o *obs.Observer) {
	if s == nil || o == nil {
		return
	}
	o.Handle("/ledger", s.Handler(), "per-tenant utilization ledger, merged across shards (JSON; ?format=prom)")
}

// wantsProm mirrors the /metrics content negotiation: explicit format
// parameter wins, then an Accept header preferring the text format.
func wantsProm(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "application/openmetrics-text")
}

// writeProm renders the snapshot in the Prometheus text exposition
// format with escaped per-tenant labels and HELP/TYPE metadata for
// every family.
func writeProm(w io.Writer, s *Snapshot) error {
	labels := func(t string, c int) string {
		return fmt.Sprintf(`{tenant="%s",class="%d"}`, obs.PromEscapeLabel(t), c)
	}
	family := func(name, kind, help string) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		return err
	}

	if err := family("ledger_tenant_reserved_area", "gauge", "Committed reservation area per tenant and class (processor-time units)."); err != nil {
		return err
	}
	for _, t := range s.Totals {
		fmt.Fprintf(w, "ledger_tenant_reserved_area%s %g\n", labels(t.Tenant, t.Class), t.ReservedArea)
	}
	if err := family("ledger_tenant_realized_area", "gauge", "Realized execution area per tenant and class."); err != nil {
		return err
	}
	for _, t := range s.Totals {
		fmt.Fprintf(w, "ledger_tenant_realized_area%s %g\n", labels(t.Tenant, t.Class), t.RealizedArea)
	}
	if err := family("ledger_tenant_waste_area", "gauge", "Reserved-but-unrealized area per tenant and class."); err != nil {
		return err
	}
	for _, t := range s.Totals {
		fmt.Fprintf(w, "ledger_tenant_waste_area%s %g\n", labels(t.Tenant, t.Class), t.Waste())
	}
	if err := family("ledger_tenant_commits", "counter", "Committed reservations per tenant and class."); err != nil {
		return err
	}
	for _, t := range s.Totals {
		fmt.Fprintf(w, "ledger_tenant_commits%s %d\n", labels(t.Tenant, t.Class), t.Commits)
	}
	if err := family("ledger_tenant_rejections", "counter", "Rejected negotiations per tenant and class."); err != nil {
		return err
	}
	for _, t := range s.Totals {
		fmt.Fprintf(w, "ledger_tenant_rejections%s %d\n", labels(t.Tenant, t.Class), t.Rejections)
	}
	if err := family("ledger_tenant_fair_share_ratio", "gauge", "Tenant share of reserved area over an equal split (1 = exactly fair)."); err != nil {
		return err
	}
	for _, fs := range s.FairShares() {
		fmt.Fprintf(w, "ledger_tenant_fair_share_ratio%s %g\n", labels(fs.Tenant, fs.Class), fs.Ratio)
	}

	if err := family("ledger_utilization", "gauge", "Reserved area over capacity area across retained buckets."); err != nil {
		return err
	}
	fmt.Fprintf(w, "ledger_utilization %g\n", s.Utilization())
	if err := family("ledger_fragmentation", "gauge", "Fraction of idle capacity trapped alongside reservations."); err != nil {
		return err
	}
	fmt.Fprintf(w, "ledger_fragmentation %g\n", s.Fragmentation())
	if err := family("ledger_capacity_procs", "gauge", "Current pool capacity in processors."); err != nil {
		return err
	}
	fmt.Fprintf(w, "ledger_capacity_procs %d\n", s.Capacity)
	if err := family("ledger_waste_area_total", "gauge", "Total reserved-but-unrealized area."); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "ledger_waste_area_total %g\n", s.TotalWasteArea())
	return err
}
