package ledger

import (
	"math"
	"sort"
)

// Cell is per-key area within one bucket (or within the aged fold).
type Cell struct {
	Tenant       string  `json:"tenant"`
	Class        int     `json:"class"`
	ReservedArea float64 `json:"reserved_area"`
	RealizedArea float64 `json:"realized_area,omitempty"`
}

// Bucket is one exported time slot: [Start, Start+Width) at the
// resolution of Tier, with the capacity integral over that span and the
// per-key reserved/realized areas inside it.
type Bucket struct {
	Start        float64 `json:"start"`
	Width        float64 `json:"width"`
	Tier         int     `json:"tier"`
	CapacityArea float64 `json:"capacity_area"`
	Cells        []Cell  `json:"cells,omitempty"`
}

// End returns the bucket's exclusive end time.
func (b Bucket) End() float64 { return b.Start + b.Width }

// ReservedArea sums the bucket's reserved area across keys.
func (b Bucket) ReservedArea() float64 {
	a := 0.0
	for _, c := range b.Cells {
		a += c.ReservedArea
	}
	return a
}

// RealizedArea sums the bucket's realized area across keys.
func (b Bucket) RealizedArea() float64 {
	a := 0.0
	for _, c := range b.Cells {
		a += c.RealizedArea
	}
	return a
}

// Utilization returns reserved area over capacity area (0 when the
// bucket has no capacity).
func (b Bucket) Utilization() float64 {
	if b.CapacityArea <= 0 {
		return 0
	}
	return b.ReservedArea() / b.CapacityArea
}

// Totals is the exact per-key accounting state.
type Totals struct {
	Tenant       string  `json:"tenant"`
	Class        int     `json:"class"`
	ReservedArea float64 `json:"reserved_area"`
	RealizedArea float64 `json:"realized_area"`
	Commits      int64   `json:"commits"`
	Completions  int64   `json:"completions"`
	Rejections   int64   `json:"rejections,omitempty"`
}

// Waste returns the key's reserved-but-unrealized area: capacity the
// tenant claimed that no completion has vouched for (in-flight
// reservations count as waste until their completion event lands).
func (t Totals) Waste() float64 { return t.ReservedArea - t.RealizedArea }

// Snapshot is an immutable ledger state: exact per-key totals plus the
// bucketed time series.  Snapshots from different shards merge
// (Merge); the bucket grids nest by construction, so merging folds
// finer buckets into coarser spans and never loses area.
type Snapshot struct {
	Version    uint64   `json:"version"`
	Shards     []int    `json:"shards"`
	Now        float64  `json:"now"`
	Origin     float64  `json:"origin"`
	Capacity   int      `json:"capacity"`
	AgedBefore float64  `json:"aged_before"`
	Totals     []Totals `json:"totals"`
	Buckets    []Bucket `json:"buckets"`
	Aged       []Cell   `json:"aged,omitempty"`

	TotalReservedArea float64 `json:"total_reserved_area"`
	TotalRealizedArea float64 `json:"total_realized_area"`
	Commits           int64   `json:"commits"`
	Completions       int64   `json:"completions"`
	Rejections        int64   `json:"rejections"`
	Downsamples       int64   `json:"downsamples"`
	AgedFolds         int64   `json:"aged_folds"`
}

// TotalWasteArea returns the snapshot-wide reserved-but-unrealized area.
func (s *Snapshot) TotalWasteArea() float64 {
	return s.TotalReservedArea - s.TotalRealizedArea
}

// Merge folds another snapshot into a new one: totals add per key,
// buckets with identical spans add cell-wise, and a bucket contained in
// the other side's coarser span folds into it (the grids nest, so
// overlap implies containment).  Neither input is mutated.
func (s *Snapshot) Merge(o *Snapshot) *Snapshot {
	if s == nil {
		return o
	}
	if o == nil {
		return s
	}
	out := &Snapshot{
		Version:           maxU64(s.Version, o.Version),
		Shards:            mergeShards(s.Shards, o.Shards),
		Now:               math.Max(s.Now, o.Now),
		Origin:            math.Min(s.Origin, o.Origin),
		Capacity:          s.Capacity + o.Capacity,
		AgedBefore:        math.Max(s.AgedBefore, o.AgedBefore),
		TotalReservedArea: s.TotalReservedArea + o.TotalReservedArea,
		TotalRealizedArea: s.TotalRealizedArea + o.TotalRealizedArea,
		Commits:           s.Commits + o.Commits,
		Completions:       s.Completions + o.Completions,
		Rejections:        s.Rejections + o.Rejections,
		Downsamples:       s.Downsamples + o.Downsamples,
		AgedFolds:         s.AgedFolds + o.AgedFolds,
	}
	out.Totals = mergeTotals(s.Totals, o.Totals)
	out.Buckets = mergeBuckets(s.Buckets, o.Buckets)
	out.Aged = mergeCells(s.Aged, o.Aged)
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func mergeShards(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range append(append([]int(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

func mergeTotals(a, b []Totals) []Totals {
	m := make(map[Key]Totals, len(a)+len(b))
	for _, lst := range [][]Totals{a, b} {
		for _, t := range lst {
			k := Key{t.Tenant, t.Class}
			cur := m[k]
			cur.Tenant, cur.Class = t.Tenant, t.Class
			cur.ReservedArea += t.ReservedArea
			cur.RealizedArea += t.RealizedArea
			cur.Commits += t.Commits
			cur.Completions += t.Completions
			cur.Rejections += t.Rejections
			m[k] = cur
		}
	}
	out := make([]Totals, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sortTotals(out)
	return out
}

func mergeCells(a, b []Cell) []Cell {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	m := make(map[Key]Cell, len(a)+len(b))
	for _, lst := range [][]Cell{a, b} {
		for _, c := range lst {
			k := Key{c.Tenant, c.Class}
			cur := m[k]
			cur.Tenant, cur.Class = c.Tenant, c.Class
			cur.ReservedArea += c.ReservedArea
			cur.RealizedArea += c.RealizedArea
			m[k] = cur
		}
	}
	out := make([]Cell, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// mergeBuckets merges two sorted bucket lists.  Identical spans add;
// a span contained in an already-emitted coarser span folds into it;
// otherwise buckets interleave by start time.
func mergeBuckets(a, b []Bucket) []Bucket {
	all := make([]Bucket, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	// Coarser (wider) first at equal starts so containment folds find
	// their container already emitted.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].Width > all[j].Width
	})
	var out []Bucket
	for _, bk := range all {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if bk.Start >= last.Start && bk.End() <= last.End() {
				// Contained (or identical): fold cells; capacity area
				// adds only for distinct-shard identical spans, which
				// is the only way two buckets share a span.
				if bk.Start == last.Start && bk.Width == last.Width {
					last.CapacityArea += bk.CapacityArea
				}
				last.Cells = mergeCells(last.Cells, bk.Cells)
				if bk.Tier > last.Tier {
					last.Tier = bk.Tier
				}
				continue
			}
		}
		cp := bk
		cp.Cells = append([]Cell(nil), bk.Cells...)
		out = append(out, cp)
	}
	return out
}

// SeriesPoint is one derived sample of the utilization series.
type SeriesPoint struct {
	Start         float64 `json:"start"`
	Width         float64 `json:"width"`
	CapacityArea  float64 `json:"capacity_area"`
	ReservedArea  float64 `json:"reserved_area"`
	RealizedArea  float64 `json:"realized_area"`
	Utilization   float64 `json:"utilization"`
	WasteArea     float64 `json:"waste_area"`
	Fragmentation float64 `json:"fragmentation"`
}

// Series derives the per-bucket utilization series: reserved and
// realized area against capacity, waste, and fragmentation (the share
// of the bucket's capacity left idle alongside reservations — idle
// capacity "trapped" next to committed work, unusable by jobs wider
// than the leftover).
func (s *Snapshot) Series() []SeriesPoint {
	out := make([]SeriesPoint, 0, len(s.Buckets))
	for _, b := range s.Buckets {
		p := SeriesPoint{
			Start:        b.Start,
			Width:        b.Width,
			CapacityArea: b.CapacityArea,
			ReservedArea: b.ReservedArea(),
			RealizedArea: b.RealizedArea(),
		}
		p.WasteArea = p.ReservedArea - p.RealizedArea
		if p.CapacityArea > 0 {
			p.Utilization = p.ReservedArea / p.CapacityArea
			if p.ReservedArea > 0 && p.ReservedArea < p.CapacityArea {
				p.Fragmentation = (p.CapacityArea - p.ReservedArea) / p.CapacityArea
			}
		}
		out = append(out, p)
	}
	return out
}

// Fragmentation aggregates the series: the fraction of all idle
// capacity that sits in partially-reserved buckets (trapped idle) as
// opposed to fully-idle ones.  1 means every idle processor-second
// neighbors committed work; 0 means idle capacity is contiguous.
func (s *Snapshot) Fragmentation() float64 {
	trapped, idle := 0.0, 0.0
	for _, b := range s.Buckets {
		cap, res := b.CapacityArea, b.ReservedArea()
		if cap <= res {
			continue
		}
		free := cap - res
		idle += free
		if res > 0 {
			trapped += free
		}
	}
	if idle <= 0 {
		return 0
	}
	return trapped / idle
}

// FairShare is one tenant's share of the reserved pool.
type FairShare struct {
	Tenant string  `json:"tenant"`
	Class  int     `json:"class"`
	Share  float64 `json:"share"` // fraction of all reserved area
	Ratio  float64 `json:"ratio"` // share × number of keys: 1 = exactly fair
}

// FairShares derives each key's share of the total reserved area and
// its ratio against an equal split — the input signal for ROADMAP item
// 5's weighted-fair admission.
func (s *Snapshot) FairShares() []FairShare {
	if len(s.Totals) == 0 || s.TotalReservedArea <= 0 {
		return nil
	}
	n := float64(len(s.Totals))
	out := make([]FairShare, 0, len(s.Totals))
	for _, t := range s.Totals {
		share := t.ReservedArea / s.TotalReservedArea
		out = append(out, FairShare{Tenant: t.Tenant, Class: t.Class, Share: share, Ratio: share * n})
	}
	return out
}

// Utilization returns the whole-series utilization: total reserved
// area over total capacity area across the retained buckets.
func (s *Snapshot) Utilization() float64 {
	res, cap := 0.0, 0.0
	for _, b := range s.Buckets {
		res += b.ReservedArea()
		cap += b.CapacityArea
	}
	if cap <= 0 {
		return 0
	}
	return res / cap
}

// BucketedReservedArea sums reserved area across buckets and the aged
// fold — the time-resolved view's integral, which tracks the exact
// TotalReservedArea up to float spreading error (the accuracy test
// bounds the difference).
func (s *Snapshot) BucketedReservedArea() float64 {
	a := 0.0
	for _, b := range s.Buckets {
		a += b.ReservedArea()
	}
	for _, c := range s.Aged {
		a += c.ReservedArea
	}
	return a
}

// BucketedRealizedArea is BucketedReservedArea for realized area.
func (s *Snapshot) BucketedRealizedArea() float64 {
	a := 0.0
	for _, b := range s.Buckets {
		a += b.RealizedArea()
	}
	for _, c := range s.Aged {
		a += c.RealizedArea
	}
	return a
}
