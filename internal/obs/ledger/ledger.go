// Package ledger is the utilization ledger: time-bucketed capacity
// accounting per tenant and priority class.  It records three areas —
// pool capacity, committed reservation area and realized execution area
// (from completion events) — over a sliding horizon, and derives the
// figures the paper's evaluation is about: delivered utilization, waste
// (reserved-but-idle area), fragmentation and per-tenant fair-share
// ratios.
//
// Accounting happens at two resolutions simultaneously:
//
//   - Exact totals.  Every commit adds the placement's exact area to a
//     global running total and to the (tenant, class) totals, in commit
//     order under one lock — the same float additions, in the same
//     order, as core.Scheduler's ReservedArea counter, so the ledger's
//     integrated reserved area is bit-identical to profile accounting
//     at every committed mutation (the differential test pins this).
//
//   - Time buckets.  The same areas are spread over aligned time
//     buckets so utilization and waste are visible as series.  Buckets
//     form a tiered ring: the recent past stays at fine resolution
//     (tier 0, width Config.Width); as buckets age they are folded
//     into aligned parents Factor× wider (tier 1, 2, ...), and beyond
//     the coarsest tier's retention window they collapse into per-key
//     "aged" totals with no time resolution.  Integrals are preserved
//     exactly by every fold — retention only ever trades resolution,
//     never area.
//
// Concurrency follows the repo's snapshot-cache idiom (the headroom
// Forecaster of internal/obs/forensics): mutations take the ledger
// mutex and bump a version; Snapshot returns a cached immutable
// snapshot via an atomic pointer when the version is unchanged, so
// steady-state readers — including cross-shard merging — are lock-free.
// All methods are nil-safe: a nil *Ledger records nothing, so callers
// hook the ledger behind one pointer comparison (the observability
// layer's zero-cost contract).
package ledger

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"milan/internal/core"
	"milan/internal/obs"
)

// Key identifies one accounting stream: the billing principal and its
// priority class.  The zero Key ("", 0) is the unattributed stream —
// jobs that carry no tenant still account there, so areas always sum
// to the whole pool's activity.
type Key struct {
	Tenant string
	Class  int
}

// KeyOf extracts the accounting key of a job.
func KeyOf(job *core.Job) Key { return Key{Tenant: job.Tenant, Class: job.Class} }

// Config configures a ledger.
type Config struct {
	// Origin is the time origin buckets align to (the schedule origin).
	Origin float64
	// Width is the fine (tier-0) bucket width.  Default 50 time units
	// (two Figure-4 task durations).
	Width float64
	// Keep is how many buckets each tier retains at its own resolution
	// behind the clock before folding them into the next tier.
	// Default 8.
	Keep int
	// Factor is the width ratio between consecutive tiers.  Default 4.
	Factor int
	// Tiers is the number of resolutions (tier 0 = fine, Tiers-1 =
	// coarsest; beyond the coarsest tier's window buckets fold into
	// per-key aged totals).  Default 3.
	Tiers int
	// Capacity is the initial pool capacity in processors; SetCapacity
	// restates it (rebalancing, broker offers).
	Capacity int
	// Shard stamps this ledger's snapshots with the admission shard it
	// accounts for (0 for a monolithic arbitrator).
	Shard int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 50
	}
	if c.Keep <= 0 {
		c.Keep = 8
	}
	if c.Factor < 2 {
		c.Factor = 4
	}
	if c.Tiers < 1 {
		c.Tiers = 3
	}
	return c
}

// totals is the exact per-key accumulator.
type totals struct {
	reserved    float64
	realized    float64
	commits     int64
	completions int64
	rejections  int64
}

// cell is per-key area inside one bucket.
type cell struct {
	reserved float64
	realized float64
}

// bucket is one time slot of the ledger: [start, start+width) at the
// resolution of its tier.
type bucket struct {
	start float64
	width float64
	tier  int
	cells map[Key]*cell
}

func (b *bucket) end() float64 { return b.start + b.width }

func (b *bucket) cell(k Key) *cell {
	c, ok := b.cells[k]
	if !ok {
		c = &cell{}
		b.cells[k] = c
	}
	return c
}

// capMark is one step of the piecewise-constant capacity timeline.
type capMark struct {
	at    float64
	procs int
}

// Ledger is one shard's accounting stream.  The zero value is not
// usable; construct with New.
type Ledger struct {
	cfg    Config
	widths []float64 // per-tier bucket widths

	mu         sync.Mutex
	now        float64
	buckets    []*bucket // sorted by start, non-overlapping
	perKey     map[Key]*totals
	capMarks   []capMark
	agedBefore float64 // buckets ending at or before this folded into aged
	aged       map[Key]*cell

	// Exact commit-ordered accumulators (see package comment).
	totalReserved float64
	totalRealized float64

	commits     int64
	completions int64
	rejections  int64
	downsamples int64
	agedFolds   int64

	version atomic.Uint64
	snap    atomic.Pointer[Snapshot]

	metrics *ledgerMetrics
}

// New returns a ledger with the given configuration.
func New(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	l := &Ledger{
		cfg:        cfg,
		now:        cfg.Origin,
		perKey:     make(map[Key]*totals),
		capMarks:   []capMark{{at: cfg.Origin, procs: cfg.Capacity}},
		agedBefore: math.Inf(-1),
		aged:       make(map[Key]*cell),
	}
	l.widths = make([]float64, cfg.Tiers)
	w := cfg.Width
	for t := range l.widths {
		l.widths[t] = w
		w *= float64(cfg.Factor)
	}
	return l
}

// ShardID returns the shard stamp this ledger accounts for.
func (l *Ledger) ShardID() int {
	if l == nil {
		return 0
	}
	return l.cfg.Shard
}

// RecordCommit records a committed reservation: the placement's exact
// area is added to the global and per-key running totals (in call
// order — callers invoke this under the same lock, in the same order,
// as the scheduler commit it mirrors), and each task's procs×time
// rectangle is spread over the covering time buckets.
func (l *Ledger) RecordCommit(job *core.Job, pl *core.Placement) {
	if l == nil {
		return
	}
	l.RecordCommitKeyed(KeyOf(job), pl)
}

// RecordCommitKeyed is RecordCommit for callers that carry the
// accounting key directly (DAG admissions, replayed decisions).
func (l *Ledger) RecordCommitKeyed(k Key, pl *core.Placement) {
	if l == nil {
		return
	}
	area := pl.Area()
	l.mu.Lock()
	l.totalReserved += area
	tt := l.totalsFor(k)
	tt.reserved += area
	tt.commits++
	l.commits++
	for _, tp := range pl.Tasks {
		l.spreadLocked(k, tp.Start, tp.Finish, float64(tp.Procs), false)
	}
	l.bumpLocked()
	l.mu.Unlock()
}

// RecordCompletion records that an admitted job's reservation actually
// executed: the placement's exact area is added to the realized totals
// and spread over the same intervals the reservation occupied.  Call it
// from the completion event (sim or runtime), on the ledger of the
// shard that granted the reservation (qos.Grant.Shard).
func (l *Ledger) RecordCompletion(k Key, pl *core.Placement) {
	if l == nil {
		return
	}
	area := pl.Area()
	l.mu.Lock()
	l.totalRealized += area
	tt := l.totalsFor(k)
	tt.realized += area
	tt.completions++
	l.completions++
	for _, tp := range pl.Tasks {
		l.spreadLocked(k, tp.Start, tp.Finish, float64(tp.Procs), true)
	}
	l.bumpLocked()
	l.mu.Unlock()
}

// RecordRejection counts a rejected negotiation against the key — no
// area moves, but rejection pressure per tenant is a fairness signal.
func (l *Ledger) RecordRejection(job *core.Job) {
	if l == nil {
		return
	}
	k := KeyOf(job)
	l.mu.Lock()
	l.totalsFor(k).rejections++
	l.rejections++
	l.bumpLocked()
	l.mu.Unlock()
}

// Advance moves the ledger clock forward and runs retention: buckets
// that have aged past their tier's window fold into coarser aligned
// parents, and past the coarsest window into the aged totals.  Earlier
// times are no-ops (shards and the harness may both advance).
func (l *Ledger) Advance(now float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if now > l.now {
		l.now = now
		l.retainLocked()
		l.bumpLocked()
	}
	l.mu.Unlock()
}

// SetCapacity restates the pool capacity from time at onward (clamped
// monotone: a mark earlier than the latest one snaps to it).
func (l *Ledger) SetCapacity(procs int, at float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	last := &l.capMarks[len(l.capMarks)-1]
	switch {
	case at <= last.at:
		last.procs = procs
	default:
		l.capMarks = append(l.capMarks, capMark{at: at, procs: procs})
	}
	l.bumpLocked()
	l.mu.Unlock()
}

// TotalReservedArea returns the exact commit-ordered reserved-area sum
// (bit-identical to the mirrored scheduler's Stats().ReservedArea).
func (l *Ledger) TotalReservedArea() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalReserved
}

// TotalRealizedArea returns the exact realized-area sum.
func (l *Ledger) TotalRealizedArea() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalRealized
}

// totalsFor returns the per-key accumulator, creating it on first use.
// Callers hold l.mu.
func (l *Ledger) totalsFor(k Key) *totals {
	t, ok := l.perKey[k]
	if !ok {
		t = &totals{}
		l.perKey[k] = t
	}
	return t
}

// bumpLocked publishes a mutation: version tick plus metric refresh.
// Callers hold l.mu.
func (l *Ledger) bumpLocked() {
	l.version.Add(1)
	if l.metrics != nil {
		l.publishMetricsLocked()
	}
}

// width returns tier t's bucket width.
func (l *Ledger) width(t int) float64 { return l.widths[t] }

// align returns the tier-t bucket start covering x.
func (l *Ledger) align(x float64, t int) float64 {
	w := l.widths[t]
	return l.cfg.Origin + math.Floor((x-l.cfg.Origin)/w)*w
}

// tierFor returns the resolution time x is held at under the current
// clock: the first tier whose aligned parent span still reaches into
// the tier's retention window.  The same rule drives both retention
// folds and on-demand bucket creation, so the bucket set stays a
// non-overlapping cut through the alignment tree — and two shards at
// the same clock have identical structure, which is what makes
// snapshots mergeable bucket-by-bucket.
func (l *Ledger) tierFor(x float64) (tier int, aged bool) {
	for t := 0; t < l.cfg.Tiers-1; t++ {
		cutoff := l.now - float64(l.cfg.Keep)*l.widths[t]
		parentEnd := l.align(x, t+1) + l.widths[t+1]
		if parentEnd > cutoff {
			return t, false
		}
	}
	top := l.cfg.Tiers - 1
	cutoff := l.now - float64(l.cfg.Keep)*l.widths[top]
	if l.align(x, top)+l.widths[top] <= cutoff {
		return 0, true
	}
	return top, false
}

// bucketFor returns the bucket covering x, creating it at the
// retention-consistent tier when absent; nil means x has aged out and
// accounting goes to the aged totals.  Callers hold l.mu.
func (l *Ledger) bucketFor(x float64) *bucket {
	if x < l.agedBefore {
		return nil
	}
	i := sort.Search(len(l.buckets), func(i int) bool { return l.buckets[i].end() > x })
	if i < len(l.buckets) && l.buckets[i].start <= x {
		return l.buckets[i]
	}
	tier, aged := l.tierFor(x)
	if aged {
		return nil
	}
	b := &bucket{start: l.align(x, tier), width: l.widths[tier], tier: tier, cells: make(map[Key]*cell)}
	l.buckets = append(l.buckets, nil)
	copy(l.buckets[i+1:], l.buckets[i:])
	l.buckets[i] = b
	return b
}

// spreadLocked distributes rate×time area over the buckets covering
// [t0, t1).  Callers hold l.mu.
func (l *Ledger) spreadLocked(k Key, t0, t1, rate float64, realized bool) {
	if !(t1 > t0) || rate <= 0 || math.IsNaN(t0) || math.IsInf(t0, 0) || math.IsNaN(t1) || math.IsInf(t1, 0) {
		return
	}
	x := t0
	for x < t1 {
		b := l.bucketFor(x)
		var end float64
		var c *cell
		if b == nil {
			// Aged-out span: account up to the aged boundary (or t1).
			end = math.Min(l.agedBefore, t1)
			if end <= x {
				end = t1 // agedBefore regressed past x; fold the rest
			}
			c = l.agedCell(k)
		} else {
			end = math.Min(b.end(), t1)
			c = b.cell(k)
		}
		if realized {
			c.realized += rate * (end - x)
		} else {
			c.reserved += rate * (end - x)
		}
		x = end
	}
}

func (l *Ledger) agedCell(k Key) *cell {
	c, ok := l.aged[k]
	if !ok {
		c = &cell{}
		l.aged[k] = c
	}
	return c
}

// retainLocked re-cuts the bucket set for the current clock: every
// bucket held finer than its tierFor target folds into the aligned
// parent (or the aged totals), preserving integrals exactly.  Callers
// hold l.mu.
func (l *Ledger) retainLocked() {
	if len(l.buckets) == 0 {
		return
	}
	out := make([]*bucket, 0, len(l.buckets))
	for _, b := range l.buckets {
		tier, aged := l.tierFor(b.start)
		if aged {
			for k, c := range b.cells {
				ac := l.agedCell(k)
				ac.reserved += c.reserved
				ac.realized += c.realized
			}
			if e := b.end(); e > l.agedBefore {
				l.agedBefore = e
			}
			l.agedFolds++
			continue
		}
		if tier <= b.tier {
			out = appendFold(out, b, &l.downsamples)
			continue
		}
		nb := &bucket{start: l.align(b.start, tier), width: l.widths[tier], tier: tier, cells: b.cells}
		l.downsamples++
		out = appendFold(out, nb, &l.downsamples)
	}
	l.buckets = out
}

// appendFold appends b, merging it into the previous bucket when both
// cover the same span (siblings folded into one parent).
func appendFold(out []*bucket, b *bucket, downsamples *int64) []*bucket {
	if n := len(out); n > 0 && out[n-1].start == b.start && out[n-1].width == b.width {
		prev := out[n-1]
		for k, c := range b.cells {
			pc := prev.cell(k)
			pc.reserved += c.reserved
			pc.realized += c.realized
		}
		*downsamples++
		return out
	}
	return append(out, b)
}

// capacityAreaLocked integrates the capacity timeline over [a, b).
// Callers hold l.mu.
func (l *Ledger) capacityAreaLocked(a, b float64) float64 {
	if !(b > a) {
		return 0
	}
	area := 0.0
	for i, m := range l.capMarks {
		lo := math.Max(m.at, a)
		hi := b
		if i+1 < len(l.capMarks) {
			hi = math.Min(hi, l.capMarks[i+1].at)
		}
		if hi > lo {
			area += float64(m.procs) * (hi - lo)
		}
	}
	// Capacity before the first mark counts as the first mark's level
	// (the pool existed at its initial size from the origin).
	if first := l.capMarks[0]; first.at > a {
		hi := math.Min(first.at, b)
		if hi > a {
			area += float64(first.procs) * (hi - a)
		}
	}
	return area
}

// Snapshot returns an immutable snapshot of the ledger.  The cached
// snapshot is returned lock-free while no mutation has intervened;
// otherwise it is rebuilt under the lock and republished.
func (l *Ledger) Snapshot() *Snapshot {
	if l == nil {
		return nil
	}
	v := l.version.Load()
	if s := l.snap.Load(); s != nil && s.Version == v {
		return s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.buildSnapshotLocked()
	l.snap.Store(s)
	return s
}

// buildSnapshotLocked materializes the snapshot.  Callers hold l.mu.
func (l *Ledger) buildSnapshotLocked() *Snapshot {
	s := &Snapshot{
		Version:    l.version.Load(),
		Shards:     []int{l.cfg.Shard},
		Now:        l.now,
		Origin:     l.cfg.Origin,
		Capacity:   l.capMarks[len(l.capMarks)-1].procs,
		AgedBefore: math.Max(l.agedBefore, l.cfg.Origin), // clamp the -Inf sentinel for JSON

		TotalReservedArea: l.totalReserved,
		TotalRealizedArea: l.totalRealized,
		Commits:           l.commits,
		Completions:       l.completions,
		Rejections:        l.rejections,
		Downsamples:       l.downsamples,
		AgedFolds:         l.agedFolds,
	}
	for k, t := range l.perKey {
		s.Totals = append(s.Totals, Totals{
			Tenant: k.Tenant, Class: k.Class,
			ReservedArea: t.reserved, RealizedArea: t.realized,
			Commits: t.commits, Completions: t.completions, Rejections: t.rejections,
		})
	}
	sortTotals(s.Totals)
	for _, b := range l.buckets {
		s.Buckets = append(s.Buckets, Bucket{
			Start:        b.start,
			Width:        b.width,
			Tier:         b.tier,
			CapacityArea: l.capacityAreaLocked(b.start, b.end()),
			Cells:        exportCells(b.cells),
		})
	}
	if len(l.aged) > 0 {
		s.Aged = exportCells(l.aged)
	}
	return s
}

func exportCells(m map[Key]*cell) []Cell {
	out := make([]Cell, 0, len(m))
	for k, c := range m {
		out = append(out, Cell{Tenant: k.Tenant, Class: k.Class, ReservedArea: c.reserved, RealizedArea: c.realized})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Class < out[j].Class
	})
	return out
}

func sortTotals(ts []Totals) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Tenant != ts[j].Tenant {
			return ts[i].Tenant < ts[j].Tenant
		}
		return ts[i].Class < ts[j].Class
	})
}

// ledgerMetrics holds pre-resolved registry gauges.
type ledgerMetrics struct {
	reserved    *obs.Gauge
	realized    *obs.Gauge
	waste       *obs.Gauge
	commits     *obs.Gauge
	completions *obs.Gauge
	rejections  *obs.Gauge
	tenants     *obs.Gauge
	buckets     *obs.Gauge
	downsamples *obs.Gauge
	agedFolds   *obs.Gauge
}

// BindMetrics publishes the ledger's levels as ledger_* gauges on the
// registry, refreshed on every mutation.  Gauges are resolved once; the
// per-mutation cost is a handful of atomic float stores.
func (l *Ledger) BindMetrics(reg *obs.Registry) {
	l.BindMetricsPrefixed(reg, "ledger")
}

// BindMetricsPrefixed is BindMetrics with a custom name prefix (shard
// ledgers bind as ledger_shard<i>_*).
func (l *Ledger) BindMetricsPrefixed(reg *obs.Registry, prefix string) {
	if l == nil || reg == nil {
		return
	}
	g := func(name, help string) *obs.Gauge {
		full := prefix + "_" + name
		reg.Describe(full, help)
		return reg.Gauge(full)
	}
	m := &ledgerMetrics{
		reserved:    g("reserved_area", "Exact committed reservation area (processor-time units)."),
		realized:    g("realized_area", "Exact realized execution area from completion events."),
		waste:       g("waste_area", "Reserved-but-unrealized area (in-flight or abandoned reservations)."),
		commits:     g("commits", "Committed reservations recorded by the ledger."),
		completions: g("completions", "Completion events recorded by the ledger."),
		rejections:  g("rejections", "Rejected negotiations recorded by the ledger."),
		tenants:     g("tenants", "Distinct (tenant, class) accounting keys seen."),
		buckets:     g("buckets", "Live time buckets across all retention tiers."),
		downsamples: g("downsamples", "Bucket folds into coarser tiers (retention work)."),
		agedFolds:   g("aged_folds", "Buckets folded past the coarsest tier into aged totals."),
	}
	l.mu.Lock()
	l.metrics = m
	l.publishMetricsLocked()
	l.mu.Unlock()
}

// publishMetricsLocked refreshes the bound gauges.  Callers hold l.mu.
func (l *Ledger) publishMetricsLocked() {
	m := l.metrics
	m.reserved.Set(l.totalReserved)
	m.realized.Set(l.totalRealized)
	m.waste.Set(l.totalReserved - l.totalRealized)
	m.commits.Set(float64(l.commits))
	m.completions.Set(float64(l.completions))
	m.rejections.Set(float64(l.rejections))
	m.tenants.Set(float64(len(l.perKey)))
	m.buckets.Set(float64(len(l.buckets)))
	m.downsamples.Set(float64(l.downsamples))
	m.agedFolds.Set(float64(l.agedFolds))
}
