package ledger

import (
	"milan/internal/qos"
)

// DecisionObserver adapts the ledger to qos.ArbitratorConfig.Observer:
// every granted decision records a commit, every rejected one a
// rejection, then the chain continues to next (nil is fine).  The
// arbitrator invokes its observer under its own mutex immediately after
// the scheduler commit, so ledger recording happens in commit order —
// the ordering the bit-identity differential test relies on.  (The qos
// package cannot import this one — obs sits above qos — which is why
// the adapter lives here and hooks the observer callback instead.)
func (l *Ledger) DecisionObserver(next func(qos.Decision)) func(qos.Decision) {
	if l == nil {
		return next
	}
	return func(d qos.Decision) {
		if d.Grant != nil {
			l.RecordCommit(&d.Job, &d.Grant.Placement)
		} else if d.Rejected {
			l.RecordRejection(&d.Job)
		}
		if next != nil {
			next(d)
		}
	}
}
