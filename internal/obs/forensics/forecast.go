// Headroom forecasting: the live "largest admissible job" signal.
//
// The Forecaster publishes the admission plane's advertised capacity
// frontier (core.Headroom) as headroom_* gauges and audits it against
// reality: a rejection whose demand rectangle the advertised frontier
// claimed to fit is a forecast miss.  The miss ratio feeds the SLO
// engine's forecast objective — a sustained miss burn rate means the
// frontier is stale or the refresh horizon is too long, and QoS agents
// steering by it are being misled.

package forensics

import (
	"sync"

	"milan/internal/core"
	"milan/internal/obs"
)

// Metric names published by Forecaster.BindMetrics.
const (
	// MetricHeadroomProcs / MetricHeadroomDuration / MetricHeadroomArea
	// are the advertised frontier axes (widest task, longest run, largest
	// width×duration rectangle).
	MetricHeadroomProcs    = "headroom_max_procs"
	MetricHeadroomDuration = "headroom_max_duration"
	MetricHeadroomArea     = "headroom_max_area"
	// MetricForecastChecks counts rejections audited against the
	// advertised frontier; MetricForecastMisses counts the subset whose
	// demand the frontier had claimed to fit.
	MetricForecastChecks = "headroom_forecast_checks"
	MetricForecastMisses = "headroom_forecast_misses"
)

// Forecaster holds the most recently advertised admissibility frontier
// and audits rejections against it.  Safe for concurrent use.
type Forecaster struct {
	mu         sync.Mutex
	last       core.Headroom
	advertised bool

	gProcs, gDuration, gArea *obs.Gauge
	checks, misses           *obs.Counter
}

// NewForecaster returns an empty forecaster (no frontier advertised yet).
func NewForecaster() *Forecaster { return &Forecaster{} }

// BindMetrics registers the headroom gauges and forecast-audit counters
// on reg.  A nil registry is ignored.
func (f *Forecaster) BindMetrics(reg *obs.Registry) {
	if f == nil || reg == nil {
		return
	}
	f.mu.Lock()
	f.gProcs = reg.Gauge(MetricHeadroomProcs)
	f.gDuration = reg.Gauge(MetricHeadroomDuration)
	f.gArea = reg.Gauge(MetricHeadroomArea)
	f.checks = reg.Counter(MetricForecastChecks)
	f.misses = reg.Counter(MetricForecastMisses)
	f.mu.Unlock()
}

// Advertise publishes a refreshed frontier (for a federated plane: the
// per-shard frontiers merged via Headroom.Merge) and updates the gauges.
func (f *Forecaster) Advertise(hr core.Headroom) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.last = hr
	f.advertised = true
	if f.gProcs != nil {
		f.gProcs.Set(float64(hr.MaxProcs))
		f.gDuration.Set(hr.MaxDuration)
		f.gArea.Set(hr.MaxArea)
	}
	f.mu.Unlock()
}

// Last returns the most recently advertised frontier and whether one has
// been advertised at all.
func (f *Forecaster) Last() (core.Headroom, bool) {
	if f == nil {
		return core.Headroom{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.advertised
}

// NoteRejection audits one rejection diagnosis against the advertised
// frontier and reports whether it is a forecast miss: some
// capacity-constrained candidate chain's demand rectangle
// (WantProcs × WantDuration) lay inside the frontier the plane had
// advertised, yet the plan failed.  Width- and deadline-constrained
// chains are not counted — the frontier does not model machine growth or
// job-internal deadlines, so those rejections are not forecast errors.
// Returns false (and counts nothing) before the first Advertise.
func (f *Forecaster) NoteRejection(d *core.PlanDiagnosis) bool {
	if f == nil || d == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.advertised {
		return false
	}
	if f.checks != nil {
		f.checks.Inc()
	}
	miss := false
	for i := range d.Chains {
		cd := &d.Chains[i]
		if cd.Schedulable || cd.Constraint != core.ConstraintCapacity {
			continue
		}
		if f.last.Fits(cd.WantProcs, cd.WantDuration) {
			miss = true
			break
		}
	}
	if miss && f.misses != nil {
		f.misses.Inc()
	}
	return miss
}
