// Package forensics is the admission-forensics layer: it retains the
// rejection explanations the core planner emits (core.PlanDiagnosis),
// exposes them to operators over the debug mux (/explain), serializes
// them as JSONL for offline analysis, and keeps cause-annotated counters
// in the metrics registry.  Together with the headroom Forecaster (see
// forecast.go) it closes the loop the paper's tunability story needs:
// every "no" the admission plane says comes with a machine-checkable
// reason and a verified counterfactual that would have turned it into a
// "yes".
//
// The Recorder is passive and opt-in: it is wired into the planner via
// core.Options.Diagnosis (Sink), so a scheduler without a recorder pays
// nothing, and a scheduler with one pays only on the failure path.
package forensics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
)

// Metric names published by Recorder.BindMetrics and
// Forecaster.BindMetrics.
const (
	// MetricDiagnoses counts recorded rejection diagnoses.
	MetricDiagnoses = "forensics_diagnoses"
	// MetricRingDropped counts diagnoses evicted from the retention ring.
	MetricRingDropped = "forensics_ring_dropped"
	// MetricCauseWidth / MetricCauseDeadline / MetricCauseCapacity count
	// failed candidate chains by binding constraint (one failed chain may
	// be counted under exactly one cause).
	MetricCauseWidth    = "forensics_cause_width"
	MetricCauseDeadline = "forensics_cause_deadline"
	MetricCauseCapacity = "forensics_cause_capacity"
	// MetricSuggestions counts diagnoses that carried a verified
	// WhatIfDelta suggestion.
	MetricSuggestions = "forensics_suggestions"
	// MetricWhatIfVerified / MetricWhatIfRefuted count closed-loop replay
	// outcomes reported via MarkVerified.
	MetricWhatIfVerified = "forensics_whatif_verified"
	MetricWhatIfRefuted  = "forensics_whatif_refuted"
)

// Record is one retained rejection: the planner's diagnosis plus the
// recorder's own envelope (sequence number, capture time, and — when the
// closed loop has run — whether the diagnosis's suggestion was verified
// to admit the job).
type Record struct {
	// Seq is the 1-based capture sequence number (monotone across the
	// recorder's lifetime, including evicted records).
	Seq int64 `json:"seq"`
	// At is the capture time on the recorder's clock (virtual time when
	// driven by the simulator, seconds since recorder creation otherwise).
	At float64 `json:"at"`
	// Diag is the planner's rejection explanation.
	Diag *core.PlanDiagnosis `json:"diag"`
	// Verified, when non-nil, reports whether replaying Diag.Suggestion
	// via WhatIf admitted the job (set by MarkVerified).
	Verified *bool `json:"verified,omitempty"`
}

// recorderMetrics is the set of counters Record/MarkVerified touch,
// resolved once by BindMetrics (nil when metrics are not bound).
type recorderMetrics struct {
	diagnoses   *obs.Counter
	ringDropped *obs.Counter
	causeWidth  *obs.Counter
	causeDead   *obs.Counter
	causeCap    *obs.Counter
	suggestions *obs.Counter
	verified    *obs.Counter
	refuted     *obs.Counter
}

// Recorder retains the most recent rejection diagnoses in a bounded ring
// (obs.Ring), with a per-job index for O(1) "explain this job" lookups.
// All methods are safe for concurrent use; the Sink may be installed on
// schedulers running under different locks (e.g. every shard of a
// federated plane).
type Recorder struct {
	mu    sync.Mutex
	clock func() float64
	ring  *obs.Ring[*Record]
	byJob map[int]*Record
	seq   int64
	m     *recorderMetrics
}

// DefaultRingSize is the retention ring capacity when NewRecorder is
// given a non-positive size.
const DefaultRingSize = 1024

// NewRecorder returns a recorder retaining up to n diagnoses (n <= 0
// selects DefaultRingSize).  The default clock is wall time in seconds
// since creation; simulators override it with SetClock.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRingSize
	}
	start := time.Now()
	return &Recorder{
		clock: func() float64 { return time.Since(start).Seconds() },
		ring:  obs.NewRing[*Record](n),
		byJob: make(map[int]*Record, n),
	}
}

// SetClock replaces the recorder's time source (e.g. the simulator's
// virtual clock).  A nil clock is ignored.
func (r *Recorder) SetClock(clock func() float64) {
	if clock == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// BindMetrics registers the forensics counters on reg and keeps the
// resolved pointers, so recording stays allocation-free.  A nil registry
// is ignored.
func (r *Recorder) BindMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &recorderMetrics{
		diagnoses:   reg.Counter(MetricDiagnoses),
		ringDropped: reg.Counter(MetricRingDropped),
		causeWidth:  reg.Counter(MetricCauseWidth),
		causeDead:   reg.Counter(MetricCauseDeadline),
		causeCap:    reg.Counter(MetricCauseCapacity),
		suggestions: reg.Counter(MetricSuggestions),
		verified:    reg.Counter(MetricWhatIfVerified),
		refuted:     reg.Counter(MetricWhatIfRefuted),
	}
	r.mu.Lock()
	r.m = m
	r.mu.Unlock()
}

// Sink returns the function to install as core.Options.Diagnosis (or
// fed.Config.Diagnosis): every rejection explanation the planner emits is
// recorded.  A nil recorder yields a nil sink, preserving the zero-cost
// default.
func (r *Recorder) Sink() func(*core.PlanDiagnosis) {
	if r == nil {
		return nil
	}
	return r.Record
}

// Record retains one diagnosis.  Nil diagnoses are ignored.
func (r *Recorder) Record(d *core.PlanDiagnosis) {
	if r == nil || d == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	rec := &Record{Seq: r.seq, At: r.clock(), Diag: d}
	if ev, ok := r.ring.Push(rec); ok {
		// Unlink the evicted record from the per-job index, but only if
		// the index still points at it (a newer record for the same job
		// must survive).
		if cur, live := r.byJob[ev.Diag.JobID]; live && cur == ev {
			delete(r.byJob, ev.Diag.JobID)
		}
		if r.m != nil {
			r.m.ringDropped.Inc()
		}
	}
	r.byJob[d.JobID] = rec
	if r.m != nil {
		r.m.diagnoses.Inc()
		if d.Suggestion != nil {
			r.m.suggestions.Inc()
		}
		for i := range d.Chains {
			if d.Chains[i].Schedulable {
				continue
			}
			switch d.Chains[i].Constraint {
			case core.ConstraintWidth:
				r.m.causeWidth.Inc()
			case core.ConstraintDeadline:
				r.m.causeDead.Inc()
			case core.ConstraintCapacity:
				r.m.causeCap.Inc()
			}
		}
	}
	r.mu.Unlock()
}

// MarkVerified records the closed-loop outcome for the job's latest
// retained diagnosis: ok means replaying the suggestion via WhatIf
// admitted the job.  It reports whether a record for the job was found.
func (r *Recorder) MarkVerified(jobID int, ok bool) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, found := r.byJob[jobID]
	if !found {
		return false
	}
	v := ok
	rec.Verified = &v
	if r.m != nil {
		if ok {
			r.m.verified.Inc()
		} else {
			r.m.refuted.Inc()
		}
	}
	return true
}

// LastFor returns a copy of the latest retained record for the job (the
// Diag pointer is shared; diagnoses are immutable once emitted).
func (r *Recorder) LastFor(jobID int) (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.byJob[jobID]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Records returns copies of the retained records, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	items := r.ring.Items()
	out := make([]Record, len(items))
	for i, rec := range items {
		out[i] = *rec
	}
	return out
}

// Len returns the number of retained records.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Len()
}

// Total returns the number of diagnoses ever recorded.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Total()
}

// Dropped returns how many records were evicted because the ring wrapped.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Dropped()
}

// WriteJSONL streams the retained records to w, one JSON object per line,
// oldest first — the format DecodeJSONL (and the CI rejection-cause
// artifact) reads back.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL parses a WriteJSONL stream back into records.  Blank lines
// are skipped; a malformed line or a record without a diagnosis is an
// error (the decoder is the fuzz target FuzzDiagnosisDecode).
func DecodeJSONL(rd io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("forensics: line %d: %w", line, err)
		}
		if rec.Diag == nil {
			return nil, fmt.Errorf("forensics: line %d: record without a diagnosis", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("forensics: line %d: %w", line, err)
	}
	return out, nil
}

// Handler serves the /explain endpoint: with ?job=ID, the latest retained
// diagnosis for that job as indented JSON (404 when none is retained);
// without, the whole retention ring as JSONL.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if q := req.URL.Query().Get("job"); q != "" {
			id, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad job id %q: %v", q, err), http.StatusBadRequest)
				return
			}
			rec, ok := r.LastFor(id)
			if !ok {
				http.Error(w, fmt.Sprintf("no diagnosis retained for job %d", id), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(rec)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.WriteJSONL(w)
	})
}

// Mount attaches the recorder to an Observer's debug endpoint at
// /explain.  Nil recorder or observer is a no-op.
func (r *Recorder) Mount(o *obs.Observer) {
	if r == nil || o == nil {
		return
	}
	o.Handle("/explain", r.Handler(), "latest rejection diagnoses (?job=ID for one job, bare for JSONL)")
}
