package forensics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
)

// rejectedDiag builds a scheduler that rejects the given job and returns
// the planner's real diagnosis for it (so tests exercise genuine
// PlanDiagnosis shapes, not hand-built ones).
func rejectedDiag(t *testing.T, job core.Job) *core.PlanDiagnosis {
	t.Helper()
	s := core.NewScheduler(4, 0, nil)
	if _, ok := s.Plan(job); ok {
		t.Fatalf("job %d unexpectedly planned", job.ID)
	}
	return s.Diagnose(job)
}

func wideJob(id int) core.Job {
	return core.Job{ID: id, Chains: []core.Chain{{Tasks: []core.Task{{
		Procs: 8, Duration: 2, Deadline: 100,
	}}}}}
}

func TestRecorderRingAndByJobIndex(t *testing.T) {
	r := NewRecorder(2)
	now := 0.0
	r.SetClock(func() float64 { return now })
	for i := 1; i <= 3; i++ {
		now = float64(i)
		r.Record(rejectedDiag(t, wideJob(i)))
	}
	if r.Len() != 2 || r.Total() != 3 || r.Dropped() != 1 {
		t.Fatalf("len=%d total=%d dropped=%d, want 2/3/1", r.Len(), r.Total(), r.Dropped())
	}
	// Job 1's record was evicted; its index entry must be unlinked.
	if _, ok := r.LastFor(1); ok {
		t.Fatalf("evicted job 1 still resolvable")
	}
	rec, ok := r.LastFor(3)
	if !ok || rec.Seq != 3 || rec.At != 3 || rec.Diag.JobID != 3 {
		t.Fatalf("LastFor(3) = %+v, %v", rec, ok)
	}
	// Re-recording a retained job must keep the newer index entry alive
	// even after the older record for the same job is evicted.
	now = 4
	r.Record(rejectedDiag(t, wideJob(3))) // evicts job 2's record
	now = 5
	r.Record(rejectedDiag(t, wideJob(9))) // evicts job 3's FIRST record
	if rec, ok = r.LastFor(3); !ok || rec.Seq != 4 {
		t.Fatalf("newer record for job 3 lost on eviction of the older one: %+v, %v", rec, ok)
	}
	if _, ok = r.LastFor(2); ok {
		t.Fatalf("evicted job 2 still resolvable")
	}

	// MarkVerified flips the retained record.
	if !r.MarkVerified(3, true) {
		t.Fatalf("MarkVerified(3) found no record")
	}
	if rec, _ = r.LastFor(3); rec.Verified == nil || !*rec.Verified {
		t.Fatalf("verified flag not set: %+v", rec)
	}
	if r.MarkVerified(777, true) {
		t.Fatalf("MarkVerified invented a record")
	}
}

func TestRecorderSinkAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(8)
	r.BindMetrics(reg)

	// Wire the sink into a real scheduler: only failures are recorded.
	s := core.NewScheduler(4, 0, &core.Options{Diagnosis: r.Sink()})
	if _, err := s.Admit(core.Job{ID: 1, Chains: []core.Chain{{Tasks: []core.Task{{
		Procs: 2, Duration: 5, Deadline: 100,
	}}}}}); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 0 {
		t.Fatalf("admission recorded a diagnosis")
	}
	if _, err := s.Admit(wideJob(2)); err == nil {
		t.Fatalf("8-wide job admitted on a 4-wide machine")
	}
	// Deadline-bound rejection for cause diversity.
	if _, err := s.Admit(core.Job{ID: 3, Chains: []core.Chain{{Tasks: []core.Task{{
		Procs: 2, Duration: 5, Deadline: 3,
	}}}}}); err == nil {
		t.Fatalf("impossible-window job admitted")
	}
	if r.Total() != 2 {
		t.Fatalf("recorded %d diagnoses, want 2", r.Total())
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricDiagnoses] != 2 {
		t.Fatalf("diagnoses counter = %d", snap.Counters[MetricDiagnoses])
	}
	if snap.Counters[MetricCauseWidth] != 1 || snap.Counters[MetricCauseDeadline] != 1 {
		t.Fatalf("cause counters: %+v", snap.Counters)
	}
	if snap.Counters[MetricSuggestions] != 2 {
		t.Fatalf("suggestions counter = %d (both rejections are relaxable)", snap.Counters[MetricSuggestions])
	}
	r.MarkVerified(2, true)
	r.MarkVerified(3, false)
	snap = reg.Snapshot()
	if snap.Counters[MetricWhatIfVerified] != 1 || snap.Counters[MetricWhatIfRefuted] != 1 {
		t.Fatalf("verify counters: %+v", snap.Counters)
	}

	// A nil recorder yields a nil sink (zero-cost default preserved).
	if (*Recorder)(nil).Sink() != nil {
		t.Fatalf("nil recorder produced a non-nil sink")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	for i := 1; i <= 5; i++ {
		r.Record(rejectedDiag(t, wideJob(i)))
	}
	r.MarkVerified(4, true)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Records()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		gb, _ := json.Marshal(got[i])
		wb, _ := json.Marshal(want[i])
		if !bytes.Equal(gb, wb) {
			t.Fatalf("record %d round-trip mismatch:\n got  %s\n want %s", i, gb, wb)
		}
	}
	if got[3].Verified == nil || !*got[3].Verified {
		t.Fatalf("verified flag lost in round trip")
	}

	// Malformed inputs are errors, blank lines are not.
	if _, err := DecodeJSONL(strings.NewReader("{nope\n")); err == nil {
		t.Fatalf("malformed line decoded")
	}
	if _, err := DecodeJSONL(strings.NewReader("{\"seq\":1,\"at\":0}\n")); err == nil {
		t.Fatalf("record without diagnosis decoded")
	}
	if recs, err := DecodeJSONL(strings.NewReader("\n\n")); err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: %v, %d records", err, len(recs))
	}
}

func TestExplainEndpoint(t *testing.T) {
	o := obs.New(obs.Config{})
	r := NewRecorder(8)
	r.Mount(o)
	h := o.Handler()

	d := rejectedDiag(t, wideJob(42))
	r.Record(d)

	// ?job=42 serves the retained diagnosis.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/explain?job=42", nil))
	if rw.Code != 200 {
		t.Fatalf("/explain?job=42: %d %s", rw.Code, rw.Body.String())
	}
	var rec Record
	if err := json.Unmarshal(rw.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Diag == nil || rec.Diag.JobID != 42 || rec.Diag.Suggestion == nil {
		t.Fatalf("served record: %+v", rec)
	}
	// The served suggestion must replay to an admission (the closed loop
	// an operator would run by hand).
	s := core.NewScheduler(4, 0, nil)
	if _, ok := s.WhatIf(wideJob(42), *rec.Diag.Suggestion); !ok {
		t.Fatalf("served suggestion %+v does not admit the job", *rec.Diag.Suggestion)
	}

	// Unknown job: 404.  Bad id: 400.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/explain?job=7", nil))
	if rw.Code != 404 {
		t.Fatalf("unknown job: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/explain?job=bogus", nil))
	if rw.Code != 400 {
		t.Fatalf("bad id: %d", rw.Code)
	}

	// Bare /explain streams the ring as JSONL.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/explain", nil))
	if rw.Code != 200 || rw.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("bare /explain: %d %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	recs, err := DecodeJSONL(rw.Body)
	if err != nil || len(recs) != 1 {
		t.Fatalf("JSONL dump: %v, %d records", err, len(recs))
	}

	// Endpoint index lists the mount.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rw.Body.String(), "/explain") {
		t.Fatalf("index does not list /explain: %s", rw.Body.String())
	}
}

func TestForecasterAuditsRejections(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewForecaster()
	f.BindMetrics(reg)

	// Before the first Advertise nothing is audited.
	if f.NoteRejection(rejectedDiag(t, wideJob(1))) {
		t.Fatalf("miss before any advertised frontier")
	}

	// A loaded machine: 3 of 4 procs blocked over [0, 10).
	s := core.NewScheduler(4, 0, nil)
	if err := s.ReserveSlot(3, 0, 10); err != nil {
		t.Fatal(err)
	}
	f.Advertise(s.Headroom(0, 20))
	hr, ok := f.Last()
	if !ok || hr.MaxProcs != 4 {
		t.Fatalf("advertised frontier %+v, %v", hr, ok)
	}
	snap := reg.Snapshot()
	if snap.Gauges[MetricHeadroomProcs] != 4 || snap.Gauges[MetricHeadroomArea] != hr.MaxArea {
		t.Fatalf("headroom gauges: %+v", snap.Gauges)
	}

	// Capacity rejection the frontier claimed to fit: frontier's best
	// hole is [10, 20)x4, so a 2x4 demand "fits" — yet with deadline 8
	// the plan fails.  Forecast miss.
	job := core.Job{ID: 2, Chains: []core.Chain{{Tasks: []core.Task{{
		Procs: 2, Duration: 4, Deadline: 8,
	}}}}}
	if _, ok := s.Plan(job); ok {
		t.Fatalf("blockaded job planned")
	}
	if !f.NoteRejection(s.Diagnose(job)) {
		t.Fatalf("capacity rejection inside the advertised frontier not counted as a miss")
	}

	// Width rejection: not a forecast miss (the frontier does not model
	// machine growth).
	if f.NoteRejection(s.Diagnose(wideJob(3))) {
		t.Fatalf("width rejection counted as a forecast miss")
	}

	snap = reg.Snapshot()
	if snap.Counters[MetricForecastChecks] != 2 || snap.Counters[MetricForecastMisses] != 1 {
		t.Fatalf("forecast counters: %+v", snap.Counters)
	}
}

// FuzzDiagnosisDecode fuzzes the JSONL decoder: it must never panic, and
// anything it accepts must re-encode and decode to the same records.
func FuzzDiagnosisDecode(f *testing.F) {
	// Seed with a genuine WriteJSONL stream.
	r := NewRecorder(4)
	s := core.NewScheduler(4, 0, &core.Options{Diagnosis: r.Sink()})
	s.Admit(core.Job{ID: 1, Chains: []core.Chain{{Tasks: []core.Task{{
		Procs: 8, Duration: 2, Deadline: 100,
	}}}}})
	s.Admit(core.Job{ID: 2, Chains: []core.Chain{{Tasks: []core.Task{{
		Procs: 2, Duration: 9, Deadline: 3,
	}}}}})
	r.MarkVerified(1, true)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"seq":1,"at":0,"diag":{"job":7,"release":0,"capacity":4,"peak_used":0,"chains":[]}}` + "\n"))
	f.Add([]byte(`{"seq":1}`))
	f.Add([]byte(`{nope`))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		enc := json.NewEncoder(&out)
		for i := range recs {
			if err := enc.Encode(recs[i]); err != nil {
				t.Fatalf("re-encode record %d: %v", i, err)
			}
		}
		again, err := DecodeJSONL(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}
