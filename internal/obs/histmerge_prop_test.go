package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

// Property tests for HistSnapshot.Merge: the fold must be commutative
// and associative so a cluster aggregator can merge node histograms in
// ANY grouping/order and land on the identical snapshot.  Observations
// are integer-valued (latency histograms record int64 nanoseconds), so
// the float64 Sum stays exactly representable and bit-for-bit equality
// is the honest assertion, not an epsilon compare.

// randHist builds a histogram with the given shape and drives n random
// integer observations spanning under-range, in-range, and over-range.
func randHist(rng *rand.Rand, logLinear bool, n int) HistSnapshot {
	reg := NewRegistry()
	var h *Hist
	if logLinear {
		h = reg.HistogramLogLinear("h", 8, 12, 4)
	} else {
		h = reg.Histogram("h", 0, 1<<20, 32)
	}
	for i := 0; i < n; i++ {
		h.Observe(float64(rng.Int63n(1 << 24)))
	}
	h.Observe(-1)               // under range
	h.Observe(float64(1 << 30)) // over range (both shapes), exactly representable
	return h.Snapshot()
}

func mergeAll(t *testing.T, snaps ...HistSnapshot) HistSnapshot {
	t.Helper()
	out := snaps[0]
	out.Buckets = append([]int64(nil), snaps[0].Buckets...)
	out.Bounds = append([]float64(nil), snaps[0].Bounds...)
	for _, s := range snaps[1:] {
		if err := out.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestHistMergeCommutativeAssociative(t *testing.T) {
	for _, shape := range []struct {
		name      string
		logLinear bool
	}{{"uniform", false}, {"loglinear", true}} {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 50; trial++ {
				a := randHist(rng, shape.logLinear, rng.Intn(200))
				b := randHist(rng, shape.logLinear, rng.Intn(200))
				c := randHist(rng, shape.logLinear, rng.Intn(200))

				ab := mergeAll(t, a, b)
				ba := mergeAll(t, b, a)
				if !reflect.DeepEqual(ab, ba) {
					t.Fatalf("trial %d: merge not commutative:\nA+B=%+v\nB+A=%+v", trial, ab, ba)
				}
				abc := mergeAll(t, mergeAll(t, a, b), c)
				abc2 := mergeAll(t, a, mergeAll(t, b, c))
				if !reflect.DeepEqual(abc, abc2) {
					t.Fatalf("trial %d: merge not associative:\n(A+B)+C=%+v\nA+(B+C)=%+v", trial, abc, abc2)
				}
				// The merged totals are the exact sums.
				if abc.Count != a.Count+b.Count+c.Count {
					t.Fatalf("trial %d: merged count %d != %d", trial, abc.Count, a.Count+b.Count+c.Count)
				}
				if abc.Sum != a.Sum+b.Sum+c.Sum {
					t.Fatalf("trial %d: merged sum %v != %v", trial, abc.Sum, a.Sum+b.Sum+c.Sum)
				}
			}
		})
	}
}

// Merging mismatched shapes must fail loudly, never silently mangle.
func TestHistMergeShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := randHist(rng, false, 10)
	l := randHist(rng, true, 10)
	if err := u.Merge(l); err == nil {
		t.Fatal("uniform+loglinear merge accepted")
	}
	reg := NewRegistry()
	narrow := reg.HistogramLogLinear("h", 8, 6, 4).Snapshot()
	if err := l.Merge(narrow); err == nil {
		t.Fatal("different log-linear shapes merged")
	}
}
