package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"milan/internal/core"
)

// Process IDs used in exported Chrome traces: the committed schedule
// (threads = processors), the Calypso runtime (threads = workers) and the
// instantaneous decision events.
const (
	PIDSchedule  = 1
	PIDCalypso   = 2
	PIDEvents    = 3
	PIDAdmission = 4 // span-propagated request traces (threads = trace IDs)
)

// ChromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing and https://ui.perfetto.dev load arrays of these).
// Ts and Dur are microseconds; Ph is the phase ("X" complete span, "i"
// instant, "M" metadata).
type ChromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Ph    string                 `json:"ph"`
	Ts    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	Pid   int                    `json:"pid"`
	Tid   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// chromeFile is the JSON-object envelope of a trace file.
type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// Span is a generic duration span destined for the Chrome trace (Start and
// Dur in seconds of observer time, converted to microseconds on export).
type Span struct {
	PID   int
	TID   int
	Name  string
	Cat   string
	Start float64 // seconds
	Dur   float64 // seconds
	Args  map[string]float64
}

// AddSpan records a span for later Chrome-trace export.
func (o *Observer) AddSpan(s Span) {
	o.mu.Lock()
	o.spans = append(o.spans, s)
	o.mu.Unlock()
}

// Spans returns the recorded spans.
func (o *Observer) Spans() []Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Span(nil), o.spans...)
}

// ChromeTrace accumulates trace events for export.
type ChromeTrace struct {
	Events []ChromeEvent
}

// NewChromeTrace returns an empty trace.
func NewChromeTrace() *ChromeTrace { return &ChromeTrace{} }

// Add appends a raw event.
func (c *ChromeTrace) Add(ev ChromeEvent) { c.Events = append(c.Events, ev) }

// meta appends a metadata record (process_name / thread_name).
func (c *ChromeTrace) meta(kind string, pid, tid int, name string) {
	c.Add(ChromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]interface{}{"name": name}})
}

// AddSchedule renders a committed placement set as one span per
// (processor, task) rectangle: the interactive chrome://tracing upgrade of
// core.RenderGantt.  One simulation time unit maps to one microsecond.
// capacity <= 0 infers the peak processor demand of the placements; a
// capacity below the actual peak (e.g. placements pooled from several
// back-to-back runs over the same simulated interval) is widened to the
// peak so the export always succeeds.
func (c *ChromeTrace) AddSchedule(capacity int, pls []*core.Placement) error {
	if len(pls) == 0 {
		return nil
	}
	if peak := PeakDemand(pls); capacity < peak {
		capacity = peak
	}
	asn, err := core.AssignProcessors(capacity, pls)
	if err != nil {
		return fmt.Errorf("obs: chrome schedule: %w", err)
	}
	c.meta("process_name", PIDSchedule, 0, "schedule")
	for p := 0; p < capacity; p++ {
		c.meta("thread_name", PIDSchedule, p, fmt.Sprintf("cpu%d", p))
	}
	for _, a := range asn {
		for _, proc := range a.Procs {
			c.Add(ChromeEvent{
				Name: fmt.Sprintf("job%d/t%d", a.JobID, a.Task),
				Cat:  "schedule",
				Ph:   "X",
				Ts:   a.Start * 1e6,
				Dur:  (a.Finish - a.Start) * 1e6,
				Pid:  PIDSchedule,
				Tid:  proc,
				Args: map[string]interface{}{"job": a.JobID, "task": a.Task},
			})
		}
	}
	return nil
}

// AddSpans appends generic spans (seconds -> microseconds).
func (c *ChromeTrace) AddSpans(spans []Span, threadName func(pid, tid int) string) {
	named := make(map[[2]int]bool)
	for _, s := range spans {
		key := [2]int{s.PID, s.TID}
		if threadName != nil && !named[key] {
			named[key] = true
			c.meta("thread_name", s.PID, s.TID, threadName(s.PID, s.TID))
		}
		args := make(map[string]interface{}, len(s.Args))
		for k, v := range s.Args {
			args[k] = v
		}
		c.Add(ChromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: s.Start * 1e6, Dur: s.Dur * 1e6,
			Pid: s.PID, Tid: s.TID, Args: args,
		})
	}
}

// AddTraceEvents appends structured trace events as instants on the
// decision-event process (event time units -> microseconds).
func (c *ChromeTrace) AddTraceEvents(evs []Event) {
	if len(evs) == 0 {
		return
	}
	c.meta("process_name", PIDEvents, 0, "decisions")
	for _, ev := range evs {
		args := map[string]interface{}{}
		if ev.Job != 0 || ev.Type == EvAdmitStart || ev.Type == EvCommitted || ev.Type == EvRejected {
			args["job"] = ev.Job
		}
		if ev.Reason != "" {
			args["reason"] = ev.Reason
		}
		if ev.Name != "" {
			args["event"] = ev.Name
		}
		for k, v := range ev.Attrs {
			args[k] = v
		}
		c.Add(ChromeEvent{
			Name: string(ev.Type), Cat: "trace", Ph: "i",
			Ts: ev.Time * 1e6, Pid: PIDEvents, Tid: 0, Scope: "t",
			Args: args,
		})
	}
}

// AddSpanRecs appends completed request spans (span.go) on the admission
// process, one thread per trace, so a request's route/plan/reserve/run
// lifecycle reads as a per-trace lane in chrome://tracing.  Zero-duration
// spans are widened to a visible sliver.
func (c *ChromeTrace) AddSpanRecs(recs []SpanRec) {
	if len(recs) == 0 {
		return
	}
	c.meta("process_name", PIDAdmission, 0, "admission traces")
	named := make(map[TraceID]bool)
	for _, r := range recs {
		if r.Trace == 0 {
			continue
		}
		if !named[r.Trace] {
			named[r.Trace] = true
			c.meta("thread_name", PIDAdmission, int(r.Trace), fmt.Sprintf("trace%d", r.Trace))
		}
		dur := (r.End - r.Start) * 1e6
		if dur <= 0 {
			dur = 1 // 1us sliver so instant spans stay visible
		}
		args := map[string]interface{}{
			"stage": r.Stage, "span": r.ID, "parent": r.Parent, "job": r.Job,
		}
		if r.Err != "" {
			args["err"] = r.Err
		}
		for k, v := range r.Attrs {
			args[k] = v
		}
		c.Add(ChromeEvent{
			Name: r.Name, Cat: r.Stage, Ph: "X",
			Ts: r.Start * 1e6, Dur: dur,
			Pid: PIDAdmission, Tid: int(r.Trace), Args: args,
		})
	}
}

// WriteTo writes the trace as a chrome://tracing-loadable JSON object,
// events sorted by timestamp (metadata first).
func (c *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	evs := append([]ChromeEvent(nil), c.Events...)
	sort.SliceStable(evs, func(a, b int) bool {
		ma, mb := evs[a].Ph == "M", evs[b].Ph == "M"
		if ma != mb {
			return ma
		}
		return evs[a].Ts < evs[b].Ts
	})
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", " ")
	err := enc.Encode(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
	return cw.n, err
}

// ParseChromeTrace reads a trace file back (the round-trip of WriteTo),
// accepting both the object envelope and a bare event array.
func ParseChromeTrace(r io.Reader) ([]ChromeEvent, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	var file chromeFile
	if err := json.Unmarshal(raw, &file); err == nil && file.TraceEvents != nil {
		return file.TraceEvents, nil
	}
	var evs []ChromeEvent
	if err := json.Unmarshal(raw, &evs); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	return evs, nil
}

// PeakDemand returns the maximum concurrent processor demand of the
// placements (a lower bound on the machine size that admitted them).
func PeakDemand(pls []*core.Placement) int {
	type edge struct {
		t float64
		d int
	}
	var edges []edge
	for _, pl := range pls {
		for _, tp := range pl.Tasks {
			if tp.Finish <= tp.Start {
				continue
			}
			edges = append(edges, edge{tp.Start, tp.Procs}, edge{tp.Finish, -tp.Procs})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].t != edges[b].t {
			return edges[a].t < edges[b].t
		}
		return edges[a].d < edges[b].d // releases before claims at the same instant
	})
	peak, cur := 0, 0
	for _, e := range edges {
		cur += e.d
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// WriteChromeTrace renders everything the observer has collected — the
// committed schedule (when placements were retained), the Calypso worker
// spans and the recent decision events — as one Chrome trace.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	o.mu.Lock()
	capacity := o.capacity
	pls := append([]*core.Placement(nil), o.placements...)
	spans := append([]Span(nil), o.spans...)
	o.mu.Unlock()

	ct := NewChromeTrace()
	if err := ct.AddSchedule(capacity, pls); err != nil {
		return err
	}
	if len(spans) > 0 {
		ct.meta("process_name", PIDCalypso, 0, "calypso")
		ct.AddSpans(spans, func(pid, tid int) string {
			return fmt.Sprintf("worker%d", tid)
		})
	}
	ct.AddTraceEvents(o.Events())
	ct.AddSpanRecs(o.tracer.Spans()) // nil-safe: empty without tracing
	_, err := ct.WriteTo(w)
	return err
}

// countingWriter counts bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
