package obs

import (
	"bytes"
	"strings"
	"testing"

	"milan/internal/core"
)

func testPlacements() []*core.Placement {
	return []*core.Placement{
		{JobID: 1, Chain: 0, Tasks: []core.TaskPlacement{
			{Task: 0, Start: 0, Finish: 5, Procs: 2},
			{Task: 1, Start: 5, Finish: 8, Procs: 1},
		}},
		{JobID: 2, Chain: 1, Tasks: []core.TaskPlacement{
			{Task: 0, Start: 0, Finish: 4, Procs: 2},
		}},
	}
}

func TestPeakDemand(t *testing.T) {
	if got := PeakDemand(testPlacements()); got != 4 {
		t.Fatalf("peak = %d, want 4", got)
	}
	if got := PeakDemand(nil); got != 0 {
		t.Fatalf("peak of nothing = %d, want 0", got)
	}
	// Back-to-back tasks on the boundary must not double-count.
	seq := []*core.Placement{{JobID: 1, Tasks: []core.TaskPlacement{
		{Task: 0, Start: 0, Finish: 2, Procs: 3},
		{Task: 1, Start: 2, Finish: 4, Procs: 3},
	}}}
	if got := PeakDemand(seq); got != 3 {
		t.Fatalf("sequential peak = %d, want 3", got)
	}
}

func TestChromeTraceScheduleRoundTrip(t *testing.T) {
	ct := NewChromeTrace()
	if err := ct.AddSchedule(0, testPlacements()); err != nil { // 0 => infer capacity
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var spans, meta int
	var sawJob1 bool
	for _, ev := range evs {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Pid != PIDSchedule {
				t.Fatalf("span pid = %d, want %d", ev.Pid, PIDSchedule)
			}
			if ev.Name == "job1/t0" {
				sawJob1 = true
				if ev.Ts != 0 || ev.Dur != 5e6 {
					t.Fatalf("job1/t0 ts/dur = %v/%v, want 0/5e6", ev.Ts, ev.Dur)
				}
			}
		case "M":
			meta++
		}
	}
	// job1/t0 on 2 procs + job1/t1 on 1 + job2/t0 on 2 = 5 rectangles.
	if spans != 5 {
		t.Fatalf("spans = %d, want 5", spans)
	}
	if !sawJob1 {
		t.Fatal("job1/t0 span missing")
	}
	// process_name + one thread_name per inferred processor (peak = 4).
	if meta != 5 {
		t.Fatalf("metadata records = %d, want 5", meta)
	}
}

func TestChromeTraceMetadataSortsFirst(t *testing.T) {
	ct := NewChromeTrace()
	ct.Add(ChromeEvent{Name: "early", Ph: "X", Ts: 0, Dur: 1, Pid: 1, Tid: 0})
	ct.meta("process_name", 1, 0, "p")
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Ph != "M" {
		t.Fatalf("first event ph = %q, want M", evs[0].Ph)
	}
}

func TestAddSpansAndTraceEvents(t *testing.T) {
	ct := NewChromeTrace()
	ct.AddSpans([]Span{
		{PID: PIDCalypso, TID: 2, Name: "task", Cat: "calypso", Start: 1, Dur: 0.5,
			Args: map[string]float64{"step": 3}},
	}, func(pid, tid int) string { return "workerX" })
	ct.AddTraceEvents([]Event{
		{Time: 2, Type: EvCommitted, Job: 7, Attrs: map[string]float64{"area": 10}},
		{Time: 3, Type: EvRejected, Job: 8, Reason: "no-feasible-chain"},
	})
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workerX", `"Committed"`, `"Rejected"`, "no-feasible-chain", `"s": "t"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	evs, err := ParseChromeTrace(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	var instants int
	for _, ev := range evs {
		if ev.Ph == "i" {
			instants++
			if ev.Pid != PIDEvents {
				t.Fatalf("instant pid = %d, want %d", ev.Pid, PIDEvents)
			}
		}
	}
	if instants != 2 {
		t.Fatalf("instants = %d, want 2", instants)
	}
}

func TestParseChromeTraceBareArray(t *testing.T) {
	evs, err := ParseChromeTrace(strings.NewReader(`[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "a" {
		t.Fatalf("events = %+v", evs)
	}
	if _, err := ParseChromeTrace(strings.NewReader("nonsense")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestObserverWriteChromeTrace(t *testing.T) {
	o := New(Config{KeepPlacements: true, Capacity: 4})
	// Simulate what the scheduler hooks would retain.
	o.mu.Lock()
	o.placements = testPlacements()
	o.mu.Unlock()
	o.AddSpan(Span{PID: PIDCalypso, TID: 0, Name: "task", Cat: "calypso", Start: 0, Dur: 0.1})
	o.Emit(Event{Time: 1, Type: EvCommitted, Job: 1})

	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range evs {
		pids[ev.Pid] = true
	}
	for _, pid := range []int{PIDSchedule, PIDCalypso, PIDEvents} {
		if !pids[pid] {
			t.Fatalf("trace missing process %d (pids=%v)", pid, pids)
		}
	}
}
