package obs

import (
	"net/http"
	"net/http/pprof"
)

// EnablePprof mounts the Go runtime profiler on the observer's debug
// endpoint under /debug/pprof/ (index, named profiles, cmdline, CPU
// profile, symbol lookup and execution trace) — the standard
// net/http/pprof surface, reachable wherever the debug mux is served
// (qosnet EnableDebug, junctiond -debug-addr, tunesim -debug).
//
// Profiling is strictly opt-in: nothing is mounted until this is called
// (or Config.EnablePprof is set), because the CPU-profile and trace
// endpoints actively perturb the scheduler hot paths they measure, and a
// debug port is often reachable beyond the operator's shell.
func (o *Observer) EnablePprof() {
	o.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index), "runtime profiles (pprof index + named profiles)")
	o.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline), "running program's command line")
	o.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile), "CPU profile (?seconds=N)")
	o.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol), "program-counter symbol lookup")
	o.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace), "execution trace (?seconds=N)")
}
