package telemetry

import (
	"fmt"

	"milan/internal/obs"
)

// ComputeDelta diffs two registry snapshots: counter and histogram state
// as exact increments, gauges and stats as changed values.  prev must be
// an earlier snapshot of the same registry (metrics only appear and
// counters only grow), which makes the delta loss-free to coalesce: the
// delta from A to C equals the delta A→B applied then B→C applied, and
// counter arithmetic is exact int64 addition, so a subscriber's
// snapshot + Σ deltas matches the live registry bit-for-bit on counters.
func ComputeDelta(prev, cur obs.Snapshot) Delta {
	var d Delta
	for name, v := range cur.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			if d.Counters == nil {
				d.Counters = make(map[string]int64)
			}
			d.Counters[name] = dv
		}
	}
	for name, v := range cur.Gauges {
		if pv, ok := prev.Gauges[name]; !ok || pv != v {
			if d.Gauges == nil {
				d.Gauges = make(map[string]float64)
			}
			d.Gauges[name] = v
		}
	}
	for name, h := range cur.Histograms {
		p, ok := prev.Histograms[name]
		if ok && p.Count == h.Count && p.Under == h.Under && p.Over == h.Over && p.Sum == h.Sum {
			continue
		}
		dh := obs.HistSnapshot{
			Lo: h.Lo, Hi: h.Hi,
			Buckets: make([]int64, len(h.Buckets)),
			Under:   h.Under,
			Over:    h.Over,
			Count:   h.Count,
			Sum:     h.Sum,
			Bounds:  h.Bounds,
		}
		copy(dh.Buckets, h.Buckets)
		if ok && p.SameShape(h) {
			for i := range dh.Buckets {
				dh.Buckets[i] -= p.Buckets[i]
			}
			dh.Under -= p.Under
			dh.Over -= p.Over
			dh.Count -= p.Count
			dh.Sum -= p.Sum
		}
		if d.Hists == nil {
			d.Hists = make(map[string]obs.HistSnapshot)
		}
		d.Hists[name] = dh
	}
	for name, st := range cur.Stats {
		if p, ok := prev.Stats[name]; !ok || p != st {
			if d.Stats == nil {
				d.Stats = make(map[string]obs.StatSnapshot)
			}
			d.Stats[name] = st
		}
	}
	return d
}

// ApplyDelta folds a delta into an accumulated snapshot in place:
// counters and histogram buckets add, gauges and stats replace.
func ApplyDelta(s *obs.Snapshot, d Delta) error {
	if len(d.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64, len(d.Counters))
	}
	for name, dv := range d.Counters {
		s.Counters[name] += dv
	}
	if len(d.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]float64, len(d.Gauges))
	}
	for name, v := range d.Gauges {
		s.Gauges[name] = v
	}
	if len(d.Hists) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]obs.HistSnapshot, len(d.Hists))
	}
	for name, dh := range d.Hists {
		mine, ok := s.Histograms[name]
		if !ok {
			cp := dh
			cp.Buckets = append([]int64(nil), dh.Buckets...)
			s.Histograms[name] = cp
			continue
		}
		if !mine.SameShape(dh) {
			return fmt.Errorf("telemetry: delta reshapes histogram %q ([%v,%v)x%d -> [%v,%v)x%d)",
				name, mine.Lo, mine.Hi, len(mine.Buckets), dh.Lo, dh.Hi, len(dh.Buckets))
		}
		mine.Buckets = append([]int64(nil), mine.Buckets...)
		for i := range mine.Buckets {
			mine.Buckets[i] += dh.Buckets[i]
		}
		mine.Under += dh.Under
		mine.Over += dh.Over
		mine.Count += dh.Count
		mine.Sum += dh.Sum
		s.Histograms[name] = mine
	}
	if len(d.Stats) > 0 && s.Stats == nil {
		s.Stats = make(map[string]obs.StatSnapshot, len(d.Stats))
	}
	for name, st := range d.Stats {
		s.Stats[name] = st
	}
	return nil
}
