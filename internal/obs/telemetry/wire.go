// Package telemetry federates the observability plane across processes: a
// versioned streaming wire protocol carrying registry snapshot deltas,
// completed spans, SLO objective states, headroom frontiers and ledger
// buckets from any process hosting an obs registry (Exporter), and an
// Aggregator that subscribes to N such nodes, merges their state with the
// existing Merge primitives and serves a live cluster view.
//
// The wire format follows the durability layer's discipline exactly: every
// message travels as one length-prefixed, crc32c-checksummed frame
// ([len u32][crc32c u32][payload], little-endian), and every payload has a
// strict canonical decoder — bounds-checked cursor, booleans restricted to
// 0/1, map keys required in strictly increasing order, exact payload
// consumption — so decode∘encode is the identity on every cleanly decoded
// message (FuzzTelemetryDecode pins this).
//
// A session is one exporter connection: a Hello frame (protocol version,
// node name, session ID, delta cadence), one full registry Snapshot, then
// incremental Delta frames plus span batches, SLO/headroom/ledger state
// and heartbeats on the delta cadence.  Reconnecting yields a fresh
// session whose leading snapshot REPLACES everything the subscriber had
// accumulated for the node — the snapshot-then-delta resync that makes
// restarts safe.
package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
)

// Version is the protocol version carried in every Hello frame.  A
// subscriber refuses sessions with a version it does not speak.
// Version 2 added histogram bucket bounds (log-linear layouts) and the
// KindExemplars latency frame.
const Version = 2

// MsgKind enumerates the frame types of one telemetry session.
type MsgKind uint8

// Frame kinds.
const (
	// KindHello opens a session: protocol version, node identity, session
	// ID and the exporter's delta cadence.  Always the first frame.
	KindHello MsgKind = 1
	// KindSnapshot is a full registry snapshot.  Sent once after Hello;
	// it resets the subscriber's accumulated registry state for the node.
	KindSnapshot MsgKind = 2
	// KindDelta is an incremental registry delta since the previous
	// Snapshot/Delta frame: counter and histogram-bucket increments,
	// changed gauges, replaced stats.  Counter deltas are exact int64
	// arithmetic, so snapshot + Σ deltas equals the live registry
	// bit-for-bit on counters.
	KindDelta MsgKind = 3
	// KindSpans is a batch of completed spans.
	KindSpans MsgKind = 4
	// KindSLO is the exporting engine's SLO objective state: cumulative
	// counts plus per-objective sliding-window totals, enough for the
	// aggregator to re-run burn-rate alerting over the merged view.
	KindSLO MsgKind = 5
	// KindHeadroom is the node's current headroom frontier.
	KindHeadroom MsgKind = 6
	// KindLedger is the node's utilization-ledger snapshot, carried as
	// canonical JSON inside the checksummed frame.
	KindLedger MsgKind = 7
	// KindHeartbeat carries liveness, the frame sequence number and the
	// per-stream drop counters (frames coalesced, spans lost).
	KindHeartbeat MsgKind = 8
	// KindExemplars is the node's current tail-latency exemplars: the
	// slowest recent admissions' trace identities and per-phase
	// waterfalls.  State, not a log — each frame replaces the node's
	// previous set (the latest two exemplar windows), so the aggregator
	// can merge a cluster-wide top-K without double counting.
	KindExemplars MsgKind = 9
)

func (k MsgKind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindSnapshot:
		return "snapshot"
	case KindDelta:
		return "delta"
	case KindSpans:
		return "spans"
	case KindSLO:
		return "slo"
	case KindHeadroom:
		return "headroom"
	case KindLedger:
		return "ledger"
	case KindHeartbeat:
		return "heartbeat"
	case KindExemplars:
		return "exemplars"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Hello opens a session.
type Hello struct {
	Version  uint32  `json:"version"`
	Node     string  `json:"node"`
	Session  uint64  `json:"session"`
	Now      float64 `json:"now"`
	Interval float64 `json:"interval"` // delta cadence, seconds
}

// Heartbeat is the per-cadence liveness frame.  Seq increments once per
// tick; the drop counters are cumulative for the session, so a subscriber
// can attribute loss without extra round trips.
type Heartbeat struct {
	Now           float64 `json:"now"`
	Seq           uint64  `json:"seq"`
	DroppedFrames int64   `json:"dropped_frames"`
	DroppedSpans  int64   `json:"dropped_spans"`
	SpanTotal     int64   `json:"span_total"`
}

// Delta is an incremental registry update.  Seq numbers delivered deltas
// contiguously within a session (a delta that could not be enqueued is
// coalesced into the next one, never skipped), so any gap a subscriber
// observes means a torn stream and forces a resync.
type Delta struct {
	Seq      uint64                      `json:"seq"`
	Counters map[string]int64            `json:"counters,omitempty"`
	Gauges   map[string]float64          `json:"gauges,omitempty"`
	Hists    map[string]obs.HistSnapshot `json:"hists,omitempty"`
	Stats    map[string]obs.StatSnapshot `json:"stats,omitempty"`
}

// Msg is one decoded telemetry frame: Kind selects which field is
// meaningful, mirroring durable.Record's tagged-record style.
type Msg struct {
	Kind MsgKind

	Hello     Hello              // KindHello
	Snapshot  obs.Snapshot       // KindSnapshot
	Help      map[string]string  // KindSnapshot: metric help text for exposition
	Delta     Delta              // KindDelta
	Spans     []obs.SpanRec      // KindSpans
	SLO       slo.EngineState    // KindSLO
	Headroom  core.Headroom      // KindHeadroom
	Ledger    *ledger.Snapshot   // KindLedger
	Heartbeat Heartbeat          // KindHeartbeat
	Exemplars []latency.Exemplar // KindExemplars
}

// Decoder hardening limits, mirroring internal/durable: corrupt counts
// must error, never panic or stampede allocations.
const (
	maxFramePayload = 16 << 20
	maxStringLen    = 4096
	maxNames        = 1 << 16
	maxBuckets      = 1 << 16
	maxSpans        = 1 << 16
	maxAttrs        = 256
	maxObjectives   = 1 << 8
	maxLedgerJSON   = 8 << 20
	maxExemplars    = 1 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendUint32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}

func appendUint64(b []byte, v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}

func appendInt64(b []byte, v int64) []byte { return appendUint64(b, uint64(v)) }

func appendFloat(b []byte, v float64) []byte { return appendUint64(b, math.Float64bits(v)) }

func appendString(b []byte, s string) []byte {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendHistSnapshot(b []byte, h obs.HistSnapshot) []byte {
	b = appendFloat(b, h.Lo)
	b = appendFloat(b, h.Hi)
	b = appendUint32(b, uint32(len(h.Buckets)))
	for _, c := range h.Buckets {
		b = appendInt64(b, c)
	}
	b = appendInt64(b, h.Under)
	b = appendInt64(b, h.Over)
	b = appendInt64(b, h.Count)
	b = appendFloat(b, h.Sum)
	b = appendUint32(b, uint32(len(h.Bounds)))
	for _, e := range h.Bounds {
		b = appendFloat(b, e)
	}
	return b
}

func appendStatSnapshot(b []byte, s obs.StatSnapshot) []byte {
	b = appendInt64(b, int64(s.N))
	b = appendFloat(b, s.Mean)
	b = appendFloat(b, s.Std)
	b = appendFloat(b, s.CI95)
	return b
}

func appendSpan(b []byte, s obs.SpanRec) []byte {
	b = appendUint64(b, uint64(s.Trace))
	b = appendUint64(b, uint64(s.ID))
	b = appendUint64(b, uint64(s.Parent))
	b = appendString(b, s.Name)
	b = appendString(b, s.Stage)
	b = appendInt64(b, int64(s.Job))
	b = appendFloat(b, s.Start)
	b = appendFloat(b, s.End)
	b = appendString(b, s.Err)
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = appendFloat(b, s.Attrs[k])
	}
	return b
}

func appendHeadroom(b []byte, h core.Headroom) []byte {
	b = appendFloat(b, h.From)
	b = appendFloat(b, h.Horizon)
	b = appendUint32(b, uint32(h.MaxProcs))
	b = appendFloat(b, h.MaxDuration)
	b = appendFloat(b, h.MaxArea)
	b = appendFloat(b, h.BestHole.Start)
	b = appendFloat(b, h.BestHole.End)
	b = appendUint32(b, uint32(h.BestHole.Procs))
	return b
}

// sortedNames returns a map's keys sorted — the canonical encode order.
func sortedNames[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendSnapshot(b []byte, s obs.Snapshot) []byte {
	b = appendUint32(b, uint32(len(s.Counters)))
	for _, name := range sortedNames(s.Counters) {
		b = appendString(b, name)
		b = appendInt64(b, s.Counters[name])
	}
	b = appendUint32(b, uint32(len(s.Gauges)))
	for _, name := range sortedNames(s.Gauges) {
		b = appendString(b, name)
		b = appendFloat(b, s.Gauges[name])
	}
	b = appendUint32(b, uint32(len(s.Histograms)))
	for _, name := range sortedNames(s.Histograms) {
		b = appendString(b, name)
		b = appendHistSnapshot(b, s.Histograms[name])
	}
	b = appendUint32(b, uint32(len(s.Stats)))
	for _, name := range sortedNames(s.Stats) {
		b = appendString(b, name)
		b = appendStatSnapshot(b, s.Stats[name])
	}
	return b
}

func appendSLOState(b []byte, s slo.EngineState) []byte {
	b = appendInt64(b, s.Admitted)
	b = appendInt64(b, s.Rejected)
	b = appendInt64(b, s.Completed)
	b = appendInt64(b, s.InFlight)
	b = appendInt64(b, s.DeadlineMisses)
	b = appendInt64(b, s.OverAdmissions)
	b = appendFloat(b, s.BurnThreshold)
	b = appendUint32(b, uint32(len(s.Objectives)))
	for _, o := range s.Objectives {
		b = appendString(b, o.Name)
		b = appendFloat(b, o.Budget)
		b = appendBool(b, o.Active)
		b = appendInt64(b, o.ShortBad)
		b = appendInt64(b, o.ShortTotal)
		b = appendInt64(b, o.LongBad)
		b = appendInt64(b, o.LongTotal)
	}
	return b
}

func appendExemplar(b []byte, e latency.Exemplar) []byte {
	b = appendUint64(b, e.Trace)
	b = appendInt64(b, e.Job)
	b = appendUint32(b, uint32(e.Shard))
	b = appendInt64(b, e.Total)
	b = appendUint32(b, uint32(len(e.Durs)))
	for _, d := range e.Durs {
		b = appendInt64(b, d)
	}
	return appendFloat(b, e.At)
}

// EncodeMsg serializes one message payload (no framing).
func EncodeMsg(m *Msg) ([]byte, error) {
	b := make([]byte, 0, 256)
	b = append(b, byte(m.Kind))
	switch m.Kind {
	case KindHello:
		b = appendUint32(b, m.Hello.Version)
		b = appendString(b, m.Hello.Node)
		b = appendUint64(b, m.Hello.Session)
		b = appendFloat(b, m.Hello.Now)
		b = appendFloat(b, m.Hello.Interval)
	case KindSnapshot:
		b = appendSnapshot(b, m.Snapshot)
		b = appendUint32(b, uint32(len(m.Help)))
		for _, name := range sortedNames(m.Help) {
			b = appendString(b, name)
			b = appendString(b, m.Help[name])
		}
	case KindDelta:
		b = appendUint64(b, m.Delta.Seq)
		b = appendUint32(b, uint32(len(m.Delta.Counters)))
		for _, name := range sortedNames(m.Delta.Counters) {
			b = appendString(b, name)
			b = appendInt64(b, m.Delta.Counters[name])
		}
		b = appendUint32(b, uint32(len(m.Delta.Gauges)))
		for _, name := range sortedNames(m.Delta.Gauges) {
			b = appendString(b, name)
			b = appendFloat(b, m.Delta.Gauges[name])
		}
		b = appendUint32(b, uint32(len(m.Delta.Hists)))
		for _, name := range sortedNames(m.Delta.Hists) {
			b = appendString(b, name)
			b = appendHistSnapshot(b, m.Delta.Hists[name])
		}
		b = appendUint32(b, uint32(len(m.Delta.Stats)))
		for _, name := range sortedNames(m.Delta.Stats) {
			b = appendString(b, name)
			b = appendStatSnapshot(b, m.Delta.Stats[name])
		}
	case KindSpans:
		b = appendUint32(b, uint32(len(m.Spans)))
		for _, s := range m.Spans {
			b = appendSpan(b, s)
		}
	case KindSLO:
		b = appendSLOState(b, m.SLO)
	case KindHeadroom:
		b = appendHeadroom(b, m.Headroom)
	case KindLedger:
		if m.Ledger == nil {
			return nil, fmt.Errorf("telemetry: ledger frame without a snapshot")
		}
		js, err := json.Marshal(m.Ledger)
		if err != nil {
			return nil, fmt.Errorf("telemetry: encode ledger: %w", err)
		}
		if len(js) > maxLedgerJSON {
			return nil, fmt.Errorf("telemetry: ledger JSON %d bytes exceeds limit %d", len(js), maxLedgerJSON)
		}
		b = appendUint32(b, uint32(len(js)))
		b = append(b, js...)
	case KindExemplars:
		b = appendUint32(b, uint32(len(m.Exemplars)))
		for _, e := range m.Exemplars {
			b = appendExemplar(b, e)
		}
	case KindHeartbeat:
		b = appendFloat(b, m.Heartbeat.Now)
		b = appendUint64(b, m.Heartbeat.Seq)
		b = appendInt64(b, m.Heartbeat.DroppedFrames)
		b = appendInt64(b, m.Heartbeat.DroppedSpans)
		b = appendInt64(b, m.Heartbeat.SpanTotal)
	default:
		return nil, fmt.Errorf("telemetry: unknown message kind %d", uint8(m.Kind))
	}
	return b, nil
}

// cursor is a bounds-checked little-endian payload reader (the durable
// layer's canonical-decode discipline).
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail("telemetry: truncated payload (want %d bytes at %d of %d)", n, c.off, len(c.b))
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// boolean accepts only the canonical encodings 0 and 1.
func (c *cursor) boolean() bool {
	b := c.u8()
	if b > 1 {
		c.fail("telemetry: non-canonical bool byte %#x", b)
	}
	return b == 1
}

func (c *cursor) str() string {
	n := c.u32()
	if n > maxStringLen {
		c.fail("telemetry: string length %d exceeds limit %d", n, maxStringLen)
		return ""
	}
	b := c.take(int(n))
	return string(b)
}

// count reads a collection count with a limit and a minimum per-element
// size, so a corrupt count cannot force a huge allocation.
func (c *cursor) count(limit uint32, minElem int, what string) int {
	n := c.u32()
	if n > limit {
		c.fail("telemetry: %s count %d exceeds limit %d", what, n, limit)
		return 0
	}
	if c.err == nil && int(n)*minElem > len(c.b)-c.off {
		c.fail("telemetry: %s count %d exceeds remaining payload", what, n)
		return 0
	}
	return int(n)
}

func (c *cursor) histSnapshot() obs.HistSnapshot {
	var h obs.HistSnapshot
	h.Lo = c.f64()
	h.Hi = c.f64()
	n := c.count(maxBuckets, 8, "bucket")
	if n > 0 {
		h.Buckets = make([]int64, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			h.Buckets = append(h.Buckets, c.i64())
		}
	}
	h.Under = c.i64()
	h.Over = c.i64()
	h.Count = c.i64()
	h.Sum = c.f64()
	nb := c.count(maxBuckets, 8, "bound")
	if nb > 0 {
		if nb != n {
			c.fail("telemetry: histogram carries %d bounds for %d buckets", nb, n)
			return h
		}
		h.Bounds = make([]float64, 0, nb)
		for i := 0; i < nb && c.err == nil; i++ {
			h.Bounds = append(h.Bounds, c.f64())
		}
	}
	return h
}

func (c *cursor) statSnapshot() obs.StatSnapshot {
	var s obs.StatSnapshot
	s.N = int(c.i64())
	s.Mean = c.f64()
	s.Std = c.f64()
	s.CI95 = c.f64()
	return s
}

// nameSeq enforces the canonical strictly-increasing key order, so every
// cleanly decoded map re-encodes to the exact same bytes.
type nameSeq struct {
	prev string
	seen bool
}

func (ns *nameSeq) check(c *cursor, name string) {
	if ns.seen && name <= ns.prev {
		c.fail("telemetry: non-canonical key order (%q after %q)", name, ns.prev)
	}
	ns.prev, ns.seen = name, true
}

func (c *cursor) span() obs.SpanRec {
	var s obs.SpanRec
	s.Trace = obs.TraceID(c.u64())
	s.ID = obs.SpanID(c.u64())
	s.Parent = obs.SpanID(c.u64())
	s.Name = c.str()
	s.Stage = c.str()
	s.Job = int(c.i64())
	s.Start = c.f64()
	s.End = c.f64()
	s.Err = c.str()
	n := c.count(maxAttrs, 12, "attr")
	if n > 0 {
		s.Attrs = make(map[string]float64, n)
		var ns nameSeq
		for i := 0; i < n && c.err == nil; i++ {
			k := c.str()
			ns.check(c, k)
			s.Attrs[k] = c.f64()
		}
	}
	return s
}

func (c *cursor) headroom() core.Headroom {
	var h core.Headroom
	h.From = c.f64()
	h.Horizon = c.f64()
	h.MaxProcs = int(int32(c.u32()))
	h.MaxDuration = c.f64()
	h.MaxArea = c.f64()
	h.BestHole.Start = c.f64()
	h.BestHole.End = c.f64()
	h.BestHole.Procs = int(int32(c.u32()))
	return h
}

func (c *cursor) snapshot() obs.Snapshot {
	var s obs.Snapshot
	if n := c.count(maxNames, 12, "counter"); n > 0 || c.err == nil {
		s.Counters = make(map[string]int64, n)
		var ns nameSeq
		for i := 0; i < n && c.err == nil; i++ {
			k := c.str()
			ns.check(c, k)
			s.Counters[k] = c.i64()
		}
	}
	if n := c.count(maxNames, 12, "gauge"); n > 0 || c.err == nil {
		s.Gauges = make(map[string]float64, n)
		var ns nameSeq
		for i := 0; i < n && c.err == nil; i++ {
			k := c.str()
			ns.check(c, k)
			s.Gauges[k] = c.f64()
		}
	}
	if n := c.count(maxNames, 24, "histogram"); n > 0 || c.err == nil {
		s.Histograms = make(map[string]obs.HistSnapshot, n)
		var ns nameSeq
		for i := 0; i < n && c.err == nil; i++ {
			k := c.str()
			ns.check(c, k)
			s.Histograms[k] = c.histSnapshot()
		}
	}
	if n := c.count(maxNames, 36, "stat"); n > 0 || c.err == nil {
		s.Stats = make(map[string]obs.StatSnapshot, n)
		var ns nameSeq
		for i := 0; i < n && c.err == nil; i++ {
			k := c.str()
			ns.check(c, k)
			s.Stats[k] = c.statSnapshot()
		}
	}
	return s
}

func (c *cursor) sloState() slo.EngineState {
	var s slo.EngineState
	s.Admitted = c.i64()
	s.Rejected = c.i64()
	s.Completed = c.i64()
	s.InFlight = c.i64()
	s.DeadlineMisses = c.i64()
	s.OverAdmissions = c.i64()
	s.BurnThreshold = c.f64()
	n := c.count(maxObjectives, 45, "objective")
	if n > 0 {
		s.Objectives = make([]slo.ObjectiveState, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			var o slo.ObjectiveState
			o.Name = c.str()
			o.Budget = c.f64()
			o.Active = c.boolean()
			o.ShortBad = c.i64()
			o.ShortTotal = c.i64()
			o.LongBad = c.i64()
			o.LongTotal = c.i64()
			s.Objectives = append(s.Objectives, o)
		}
	}
	return s
}

// exemplar decodes one tail exemplar.  The phase-waterfall length is
// carried on the wire and must match this build's phase count exactly —
// a node speaking a different phase model cannot be merged meaningfully.
func (c *cursor) exemplar() latency.Exemplar {
	var e latency.Exemplar
	e.Trace = c.u64()
	e.Job = c.i64()
	e.Shard = int32(c.u32())
	e.Total = c.i64()
	nd := c.count(64, 8, "phase duration")
	if c.err == nil && nd != latency.NumPhases {
		c.fail("telemetry: exemplar carries %d phase durations, want %d", nd, latency.NumPhases)
		return e
	}
	for i := 0; i < nd && c.err == nil; i++ {
		e.Durs[i] = c.i64()
	}
	e.At = c.f64()
	return e
}

// DecodeMsg parses one message payload.  Truncated, oversized,
// non-canonical or trailing-garbage payloads return an error; no input
// may panic (the fuzz target pins this), and decode∘encode is the
// identity on success.
func DecodeMsg(payload []byte) (*Msg, error) {
	c := &cursor{b: payload}
	m := &Msg{Kind: MsgKind(c.u8())}
	switch m.Kind {
	case KindHello:
		m.Hello.Version = c.u32()
		m.Hello.Node = c.str()
		m.Hello.Session = c.u64()
		m.Hello.Now = c.f64()
		m.Hello.Interval = c.f64()
	case KindSnapshot:
		m.Snapshot = c.snapshot()
		if n := c.count(maxNames, 8, "help"); n > 0 || c.err == nil {
			m.Help = make(map[string]string, n)
			var ns nameSeq
			for i := 0; i < n && c.err == nil; i++ {
				k := c.str()
				ns.check(c, k)
				m.Help[k] = c.str()
			}
		}
	case KindDelta:
		m.Delta.Seq = c.u64()
		if n := c.count(maxNames, 12, "counter"); n > 0 {
			m.Delta.Counters = make(map[string]int64, n)
			var ns nameSeq
			for i := 0; i < n && c.err == nil; i++ {
				k := c.str()
				ns.check(c, k)
				m.Delta.Counters[k] = c.i64()
			}
		}
		if n := c.count(maxNames, 12, "gauge"); n > 0 {
			m.Delta.Gauges = make(map[string]float64, n)
			var ns nameSeq
			for i := 0; i < n && c.err == nil; i++ {
				k := c.str()
				ns.check(c, k)
				m.Delta.Gauges[k] = c.f64()
			}
		}
		if n := c.count(maxNames, 24, "histogram"); n > 0 {
			m.Delta.Hists = make(map[string]obs.HistSnapshot, n)
			var ns nameSeq
			for i := 0; i < n && c.err == nil; i++ {
				k := c.str()
				ns.check(c, k)
				m.Delta.Hists[k] = c.histSnapshot()
			}
		}
		if n := c.count(maxNames, 36, "stat"); n > 0 {
			m.Delta.Stats = make(map[string]obs.StatSnapshot, n)
			var ns nameSeq
			for i := 0; i < n && c.err == nil; i++ {
				k := c.str()
				ns.check(c, k)
				m.Delta.Stats[k] = c.statSnapshot()
			}
		}
	case KindSpans:
		n := c.count(maxSpans, 60, "span")
		m.Spans = make([]obs.SpanRec, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			m.Spans = append(m.Spans, c.span())
		}
	case KindSLO:
		m.SLO = c.sloState()
	case KindHeadroom:
		m.Headroom = c.headroom()
	case KindLedger:
		n := c.u32()
		if n > maxLedgerJSON {
			return nil, fmt.Errorf("telemetry: ledger JSON %d bytes exceeds limit %d", n, maxLedgerJSON)
		}
		js := c.take(int(n))
		if c.err == nil {
			var ls ledger.Snapshot
			if err := json.Unmarshal(js, &ls); err != nil {
				return nil, fmt.Errorf("telemetry: decode ledger: %w", err)
			}
			// Canonical-form check: the payload must be exactly what this
			// encoder would emit, so decode∘encode stays the identity.
			canon, err := json.Marshal(&ls)
			if err != nil {
				return nil, fmt.Errorf("telemetry: re-encode ledger: %w", err)
			}
			if !bytes.Equal(canon, js) {
				return nil, fmt.Errorf("telemetry: non-canonical ledger JSON")
			}
			m.Ledger = &ls
		}
	case KindExemplars:
		n := c.count(maxExemplars, 44, "exemplar")
		m.Exemplars = make([]latency.Exemplar, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			m.Exemplars = append(m.Exemplars, c.exemplar())
		}
	case KindHeartbeat:
		m.Heartbeat.Now = c.f64()
		m.Heartbeat.Seq = c.u64()
		m.Heartbeat.DroppedFrames = c.i64()
		m.Heartbeat.DroppedSpans = c.i64()
		m.Heartbeat.SpanTotal = c.i64()
	default:
		return nil, fmt.Errorf("telemetry: unknown message kind %d", uint8(m.Kind))
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(payload) {
		return nil, fmt.Errorf("telemetry: %d trailing bytes after %s frame", len(payload)-c.off, m.Kind)
	}
	return m, nil
}

// EncodeFrame wraps a payload in the wire framing:
// [len u32][crc32c u32][payload].
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	copy(out[8:], payload)
	return out
}

// WriteMsg encodes and writes one framed message.
func WriteMsg(w io.Writer, m *Msg) error {
	payload, err := EncodeMsg(m)
	if err != nil {
		return err
	}
	_, err = w.Write(EncodeFrame(payload))
	return err
}

// ReadMsg reads one framed message.  io.EOF means a clean end of stream;
// any other error (torn frame, checksum mismatch, limit breach,
// non-canonical payload) means the stream is unusable and the subscriber
// must resync.
func ReadMsg(r io.Reader) (*Msg, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("telemetry: torn frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxFramePayload {
		return nil, fmt.Errorf("telemetry: frame length %d exceeds limit %d", length, maxFramePayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("telemetry: torn frame payload: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("telemetry: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	return DecodeMsg(payload)
}
