package telemetry

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"milan/internal/obs"
)

// mutate applies one random batch of metric activity to the registry.
func mutate(reg *obs.Registry, rng *rand.Rand) {
	for i := 0; i < 1+rng.Intn(8); i++ {
		switch rng.Intn(4) {
		case 0:
			reg.Counter(fmt.Sprintf("c%d", rng.Intn(4))).Add(int64(1 + rng.Intn(5)))
		case 1:
			reg.Gauge(fmt.Sprintf("g%d", rng.Intn(3))).Set(rng.Float64() * 10)
		case 2:
			reg.Histogram(fmt.Sprintf("h%d", rng.Intn(2)), 0, 1, 8).Observe(rng.Float64() * 1.2)
		case 3:
			reg.Stat(fmt.Sprintf("s%d", rng.Intn(2))).Observe(rng.NormFloat64())
		}
	}
}

// The exporter's correctness contract: a snapshot plus every delta since,
// applied in order, reproduces the live registry exactly — including
// metrics that first appear mid-stream.
func TestSnapshotPlusDeltasConvergesBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reg := obs.NewRegistry()
	mutate(reg, rng)

	acc := reg.Snapshot() // the subscriber's accumulated view
	prev := reg.Snapshot()
	for step := 0; step < 50; step++ {
		mutate(reg, rng)
		cur := reg.Snapshot()
		d := ComputeDelta(prev, cur)
		if err := ApplyDelta(&acc, d); err != nil {
			t.Fatalf("step %d: apply: %v", step, err)
		}
		prev = cur
	}
	if !reflect.DeepEqual(acc, reg.Snapshot()) {
		t.Fatalf("accumulated view diverged from live registry:\n acc  %+v\n live %+v", acc, reg.Snapshot())
	}
}

// Coalescing: a delta computed across k skipped intervals must equal the
// composition of the k per-interval deltas — the property that lets the
// exporter drop a delta frame and fold its increments into the next one.
func TestDeltaCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	reg := obs.NewRegistry()
	mutate(reg, rng)
	base := reg.Snapshot()

	stepwise := base.Clone()
	prev := base
	for i := 0; i < 7; i++ {
		mutate(reg, rng)
		cur := reg.Snapshot()
		if err := ApplyDelta(&stepwise, ComputeDelta(prev, cur)); err != nil {
			t.Fatal(err)
		}
		prev = cur
	}

	coalesced := base.Clone()
	if err := ApplyDelta(&coalesced, ComputeDelta(base, reg.Snapshot())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stepwise, coalesced) {
		t.Fatal("coalesced delta diverged from stepwise application")
	}
}

// A delta round-tripped through the wire must apply identically: the
// omit-zero encoding on counters/gauges must not lose increments.
func TestDeltaWireRoundTripApplies(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	reg := obs.NewRegistry()
	mutate(reg, rng)
	before := reg.Snapshot()
	mutate(reg, rng)
	after := reg.Snapshot()

	d := ComputeDelta(before, after)
	payload, err := EncodeMsg(&Msg{Kind: KindDelta, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	acc := before.Clone()
	if err := ApplyDelta(&acc, m.Delta); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acc, after) {
		t.Fatal("wire-round-tripped delta did not reproduce the target snapshot")
	}
}

// Applying a histogram delta onto a reshaped accumulator must error —
// silently merging mismatched bucket layouts would corrupt the view.
func TestApplyDeltaRejectsHistogramReshape(t *testing.T) {
	acc := obs.Snapshot{Histograms: map[string]obs.HistSnapshot{
		"h": {Lo: 0, Hi: 1, Buckets: []int64{1, 2}},
	}}
	d := Delta{Hists: map[string]obs.HistSnapshot{
		"h": {Lo: 0, Hi: 2, Buckets: []int64{1, 2, 3}},
	}}
	if err := ApplyDelta(&acc, d); err == nil {
		t.Fatal("histogram reshape applied silently")
	}
}
