package telemetry

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
)

// AggregatorConfig tunes one aggregator.
type AggregatorConfig struct {
	// Nodes are the exporter addresses to subscribe to.
	Nodes []string
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 250ms / 5s).
	RetryMin time.Duration
	RetryMax time.Duration
	// SpanRing bounds per-node span retention (default 16384).
	SpanRing int
	// AlertEvery is the merged burn-rate re-evaluation cadence (default
	// 1s); AlertLog bounds the retained alert transitions (default 256).
	AlertEvery time.Duration
	AlertLog   int
	// Clock is the aggregator's local timestamp source, used for stream
	// lag and alert-event times (wall seconds since creation when nil).
	Clock func() float64
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 250 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.SpanRing < 1 {
		c.SpanRing = 16384
	}
	if c.AlertEvery <= 0 {
		c.AlertEvery = time.Second
	}
	if c.AlertLog < 1 {
		c.AlertLog = 256
	}
	return c
}

// nodeState is one subscribed node's accumulated view.  A snapshot frame
// REPLACES the accumulated registry state (that is the resync contract:
// after a node or stream restart the new session's snapshot supersedes
// everything the old session delivered), and deltas fold in on top.
type nodeState struct {
	addr string

	mu        sync.Mutex
	name      string
	session   uint64
	connected bool
	lastErr   string

	haveSnap bool
	snap     obs.Snapshot
	help     map[string]string
	deltaSeq uint64

	haveSLO      bool
	slo          slo.EngineState
	haveHeadroom bool
	headroom     core.Headroom
	ledger       *ledger.Snapshot
	exemplars    []latency.Exemplar
	spans        *obs.Ring[obs.SpanRec]

	frames      int64
	resyncs     int64
	seqGaps     int64
	lastFrameAt float64
	heartbeat   Heartbeat
	hasHB       bool
}

// NodeStatus is one node's liveness and stream accounting (the /nodes
// surface).
type NodeStatus struct {
	Addr      string `json:"addr"`
	Node      string `json:"node,omitempty"`
	Connected bool   `json:"connected"`
	Session   uint64 `json:"session,omitempty"`
	LastError string `json:"last_error,omitempty"`

	Frames   int64  `json:"frames"`
	DeltaSeq uint64 `json:"delta_seq"`
	Resyncs  int64  `json:"resyncs"`
	SeqGaps  int64  `json:"seq_gaps"`
	// LagSeconds is the aggregator-clock age of the last frame.
	LagSeconds float64 `json:"lag_seconds"`

	// Exporter-side drop accounting, from the last heartbeat.
	ExporterDroppedFrames int64 `json:"exporter_dropped_frames"`
	ExporterDroppedSpans  int64 `json:"exporter_dropped_spans"`
	ExporterSpanTotal     int64 `json:"exporter_span_total"`
	SpansHeld             int   `json:"spans_held"`
}

// AlertEvent is one edge of the merged burn-rate alert signal.
type AlertEvent struct {
	At        float64 `json:"at"`
	Objective string  `json:"objective"`
	Short     float64 `json:"short_burn"`
	Long      float64 `json:"long_burn"`
	On        bool    `json:"on"`
}

// Aggregator subscribes to N telemetry exporters, accumulates each
// node's state (snapshot-then-delta), and serves merged cluster views
// built from the same Merge primitives the in-process surfaces use.
type Aggregator struct {
	cfg   AggregatorConfig
	start time.Time
	nodes []*nodeState

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	alertOn  map[string]bool
	alertLog []AlertEvent
	injected map[string][]obs.SpanRec

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewAggregator builds an aggregator over the configured node addresses.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:      cfg,
		start:    time.Now(),
		conns:    make(map[net.Conn]struct{}),
		alertOn:  make(map[string]bool),
		injected: make(map[string][]obs.SpanRec),
		quit:     make(chan struct{}),
	}
	for _, addr := range cfg.Nodes {
		a.nodes = append(a.nodes, &nodeState{
			addr:  addr,
			spans: obs.NewRing[obs.SpanRec](cfg.SpanRing),
		})
	}
	return a
}

func (a *Aggregator) now() float64 {
	if a.cfg.Clock != nil {
		return a.cfg.Clock()
	}
	return time.Since(a.start).Seconds()
}

// Start launches one subscription loop per node plus the merged
// burn-rate alert evaluator.
func (a *Aggregator) Start() {
	for _, ns := range a.nodes {
		a.wg.Add(1)
		go a.runNode(ns)
	}
	a.wg.Add(1)
	go a.alertLoop()
}

// Close stops all subscriptions.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	close(a.quit)
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
}

func (a *Aggregator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-a.quit:
		return false
	case <-t.C:
		return true
	}
}

func (a *Aggregator) runNode(ns *nodeState) {
	defer a.wg.Done()
	backoff := a.cfg.RetryMin
	for {
		select {
		case <-a.quit:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", ns.addr, a.cfg.DialTimeout)
		if err != nil {
			ns.setError(err)
			if !a.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, a.cfg.RetryMax)
			continue
		}
		backoff = a.cfg.RetryMin
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()

		err = a.consume(ns, conn)

		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		conn.Close()
		ns.setError(err)
		if !a.sleep(a.cfg.RetryMin) {
			return
		}
	}
}

func (ns *nodeState) setError(err error) {
	ns.mu.Lock()
	ns.connected = false
	if err != nil {
		ns.lastErr = err.Error()
	}
	ns.mu.Unlock()
}

// consume drains one session's frames into the node state.  Any decode
// or protocol error tears the session down; the reconnect's fresh
// snapshot makes the state whole again (snapshot-then-delta resync).
func (a *Aggregator) consume(ns *nodeState, conn net.Conn) error {
	for {
		msg, err := ReadMsg(conn)
		if err != nil {
			return err
		}
		now := a.now()
		ns.mu.Lock()
		ns.frames++
		ns.lastFrameAt = now
		switch msg.Kind {
		case KindHello:
			if msg.Hello.Version != Version {
				ns.mu.Unlock()
				return fmt.Errorf("telemetry: node %s speaks version %d, want %d", ns.addr, msg.Hello.Version, Version)
			}
			ns.name = msg.Hello.Node
			ns.session = msg.Hello.Session
			ns.connected = true
			ns.lastErr = ""
		case KindSnapshot:
			if ns.haveSnap {
				ns.resyncs++
			}
			ns.haveSnap = true
			ns.snap = msg.Snapshot
			ns.help = msg.Help
			ns.deltaSeq = 0
		case KindDelta:
			if !ns.haveSnap || msg.Delta.Seq != ns.deltaSeq+1 {
				ns.seqGaps++
				have := ns.deltaSeq
				ns.mu.Unlock()
				return fmt.Errorf("telemetry: node %s delta seq %d after %d, forcing resync", ns.addr, msg.Delta.Seq, have)
			}
			if err := ApplyDelta(&ns.snap, msg.Delta); err != nil {
				ns.mu.Unlock()
				return err
			}
			ns.deltaSeq = msg.Delta.Seq
		case KindSpans:
			for _, s := range msg.Spans {
				ns.spans.Push(s)
			}
		case KindSLO:
			ns.slo = msg.SLO
			ns.haveSLO = true
		case KindHeadroom:
			ns.headroom = msg.Headroom
			ns.haveHeadroom = true
		case KindLedger:
			ns.ledger = msg.Ledger
		case KindExemplars:
			ns.exemplars = msg.Exemplars
		case KindHeartbeat:
			ns.heartbeat = msg.Heartbeat
			ns.hasHB = true
		}
		ns.mu.Unlock()
	}
}

// Nodes returns per-node liveness, lag, and drop accounting.
func (a *Aggregator) Nodes() []NodeStatus {
	now := a.now()
	out := make([]NodeStatus, 0, len(a.nodes))
	for _, ns := range a.nodes {
		ns.mu.Lock()
		st := NodeStatus{
			Addr:      ns.addr,
			Node:      ns.name,
			Connected: ns.connected,
			Session:   ns.session,
			LastError: ns.lastErr,
			Frames:    ns.frames,
			DeltaSeq:  ns.deltaSeq,
			Resyncs:   ns.resyncs,
			SeqGaps:   ns.seqGaps,
			SpansHeld: ns.spans.Len(),
		}
		if ns.frames > 0 {
			st.LagSeconds = now - ns.lastFrameAt
		}
		if ns.hasHB {
			st.ExporterDroppedFrames = ns.heartbeat.DroppedFrames
			st.ExporterDroppedSpans = ns.heartbeat.DroppedSpans
			st.ExporterSpanTotal = ns.heartbeat.SpanTotal
		}
		ns.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// nodeLabel names a node for merged views: the Hello identity when
// known, the dial address until then.
func (ns *nodeState) nodeLabel() string {
	if ns.name != "" {
		return ns.name
	}
	return ns.addr
}

// NodeSnapshots returns each node's accumulated registry snapshot,
// keyed by node label (the Prometheus node-label scheme renders these as
// name{node="label"} series).
func (a *Aggregator) NodeSnapshots() (map[string]obs.Snapshot, map[string]string) {
	snaps := make(map[string]obs.Snapshot, len(a.nodes))
	help := make(map[string]string)
	for _, ns := range a.nodes {
		ns.mu.Lock()
		if ns.haveSnap {
			snaps[ns.nodeLabel()] = ns.snap.Clone()
			for k, v := range ns.help {
				if help[k] == "" {
					help[k] = v
				}
			}
		}
		ns.mu.Unlock()
	}
	return snaps, help
}

// MergedRegistry folds every node's accumulated snapshot into one
// cluster snapshot with obs.Snapshot.Merge (counters and histogram
// buckets add across nodes).
func (a *Aggregator) MergedRegistry() (obs.Snapshot, error) {
	snaps, _ := a.NodeSnapshots()
	labels := make([]string, 0, len(snaps))
	for l := range snaps {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var merged obs.Snapshot
	for _, l := range labels {
		if err := merged.Merge(snaps[l]); err != nil {
			return merged, fmt.Errorf("telemetry: merging node %s: %w", l, err)
		}
	}
	return merged, nil
}

// MergedSLO folds every node's SLO state with slo.MergeStates; Burns()
// on the result re-runs multi-window burn-rate alerting over the merged
// window totals.
func (a *Aggregator) MergedSLO() slo.EngineState {
	var states []slo.EngineState
	for _, ns := range a.nodes {
		ns.mu.Lock()
		if ns.haveSLO {
			states = append(states, ns.slo)
		}
		ns.mu.Unlock()
	}
	return slo.MergeStates(states...)
}

// MergedHeadroom folds every node's frontier with core.Headroom.Merge.
func (a *Aggregator) MergedHeadroom() core.Headroom {
	var merged core.Headroom
	for _, ns := range a.nodes {
		ns.mu.Lock()
		if ns.haveHeadroom {
			merged = merged.Merge(ns.headroom)
		}
		ns.mu.Unlock()
	}
	return merged
}

// MergedLedger folds every node's utilization ledger with
// ledger.Snapshot.Merge (nil when no node has sent one yet).
func (a *Aggregator) MergedLedger() *ledger.Snapshot {
	var merged *ledger.Snapshot
	for _, ns := range a.nodes {
		ns.mu.Lock()
		merged = merged.Merge(ns.ledger)
		ns.mu.Unlock()
	}
	return merged
}

// MergedExemplars folds every node's tail exemplars into the k slowest
// cluster-wide (latency.MergeTopK), slowest first.  k <= 0 keeps all.
func (a *Aggregator) MergedExemplars(k int) []latency.Exemplar {
	var sets [][]latency.Exemplar
	for _, ns := range a.nodes {
		ns.mu.Lock()
		if len(ns.exemplars) > 0 {
			sets = append(sets, ns.exemplars)
		}
		ns.mu.Unlock()
	}
	return latency.MergeTopK(k, sets...)
}

// InjectSpans adds locally produced spans (e.g. milanmon's own qosnet
// client spans) under the given node label, so cross-process trees can
// stitch client-side arrival spans to server-side admission spans.
func (a *Aggregator) InjectSpans(node string, spans []obs.SpanRec) {
	a.mu.Lock()
	a.injected[node] = append(a.injected[node], spans...)
	a.mu.Unlock()
}

// Spans returns every retained span across all nodes (including
// injected ones), the flat input to span-tree stitching.
func (a *Aggregator) Spans() []obs.SpanRec {
	var out []obs.SpanRec
	for _, ns := range a.nodes {
		ns.mu.Lock()
		out = append(out, ns.spans.Items()...)
		ns.mu.Unlock()
	}
	a.mu.Lock()
	for _, spans := range a.injected {
		out = append(out, spans...)
	}
	a.mu.Unlock()
	return out
}

// SpanTrees stitches cross-process span trees over every retained span:
// trace and span IDs are cluster-unique (Tracer.SeedIDs), so a client
// span on one node parents a server span from another exactly as if
// they shared a process.
func (a *Aggregator) SpanTrees() map[obs.TraceID]*obs.SpanNode {
	return obs.BuildSpanTrees(a.Spans())
}

// alertLoop re-evaluates merged burn rates on a cadence and records
// edge-triggered alert transitions.
func (a *Aggregator) alertLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.AlertEvery)
	defer ticker.Stop()
	for {
		select {
		case <-a.quit:
			return
		case <-ticker.C:
		}
		burns := a.MergedSLO().Burns()
		now := a.now()
		a.mu.Lock()
		for _, b := range burns {
			if b.Alerting == a.alertOn[b.Objective] {
				continue
			}
			a.alertOn[b.Objective] = b.Alerting
			a.alertLog = append(a.alertLog, AlertEvent{
				At: now, Objective: b.Objective,
				Short: b.Short, Long: b.Long, On: b.Alerting,
			})
			if len(a.alertLog) > a.cfg.AlertLog {
				a.alertLog = a.alertLog[len(a.alertLog)-a.cfg.AlertLog:]
			}
		}
		a.mu.Unlock()
	}
}

// Alerts returns the retained merged-view alert transitions.
func (a *Aggregator) Alerts() []AlertEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AlertEvent(nil), a.alertLog...)
}
