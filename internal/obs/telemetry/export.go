package telemetry

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
)

// NodeIDBase derives the span-ID seed for a node name: an fnv-1a hash
// of the name in the high 32 bits, leaving the low 32 for the process's
// own sequence (see obs.Tracer.SeedIDs).  Distinct node names yield
// disjoint ID ranges, so spans from different processes stitch into one
// tree without collisions.
func NodeIDBase(node string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(node))
	return uint64(h.Sum32()) << 32
}

// Exporter metric names (registered in the exported registry itself, so
// the cluster view includes the telemetry plane's own health).
const (
	MetricSubscribers   = "telemetry_subscribers"
	MetricFramesSent    = "telemetry_frames_sent"
	MetricDroppedFrames = "telemetry_dropped_frames"
	MetricDroppedSpans  = "telemetry_dropped_spans"
)

// Sources are the observability surfaces one exporter streams.  Every
// field is optional: a nil source simply never produces its frame kind.
type Sources struct {
	// Registry feeds the snapshot/delta stream.
	Registry *obs.Registry
	// Tracer feeds the completed-span stream (hooked via OnEnd; the hook
	// is a single atomic load when no subscriber is attached, honoring
	// the nil-hook zero-cost contract).
	Tracer *obs.Tracer
	// SLO feeds the objective-state stream.
	SLO *slo.Engine
	// Ledger returns the current utilization-ledger snapshot (e.g.
	// (*ledger.Ledger).Snapshot or (*ledger.Sharded).Merged).
	Ledger func() *ledger.Snapshot
	// Headroom returns the current headroom frontier (e.g. a closure over
	// fed.Arbitrator.Headroom).
	Headroom func() core.Headroom
	// Latency feeds the tail-exemplar stream (the node's latency plane;
	// its phase histograms already ride the registry stream — this adds
	// only the exemplar identities).  nil, like everywhere else, costs a
	// pointer comparison.
	Latency *latency.Plane
	// Clock is the exporter's timestamp source (wall seconds since
	// exporter creation when nil).
	Clock func() float64
}

// ExporterConfig tunes one exporter.
type ExporterConfig struct {
	// Node is the identity stamped on every session's Hello (required for
	// meaningful aggregation; defaults to "node").
	Node string
	// Interval is the delta cadence (default 1s).
	Interval time.Duration
	// QueueFrames bounds each subscriber's outbound frame queue (default
	// 256).  A full queue drops frames — counted, never blocking.
	QueueFrames int
	// SpanSpool bounds the shared completed-span spool (default 8192).  A
	// subscriber that falls behind the spool loses the overwritten spans
	// — counted per stream, never blocking the span producer.
	SpanSpool int
	// SpanBatch caps spans per frame (default 512).
	SpanBatch int
	// LedgerEvery sends the (comparatively large) ledger frame every Nth
	// tick (default 2).
	LedgerEvery int
	// WriteTimeout bounds one frame write to a subscriber (default 5s);
	// exceeding it drops the subscriber, never stalls the exporter.
	WriteTimeout time.Duration
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.Node == "" {
		c.Node = "node"
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.QueueFrames < 1 {
		c.QueueFrames = 256
	}
	if c.SpanSpool < 1 {
		c.SpanSpool = 8192
	}
	if c.SpanBatch < 1 {
		c.SpanBatch = 512
	}
	if c.LedgerEvery < 1 {
		c.LedgerEvery = 2
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	return c
}

// Exporter streams one process's observability state to any number of
// subscribers.  The admission hot path is never blocked: completed spans
// land in a bounded spool under a short mutex (guarded by an atomic
// subscriber count, so an attached-but-idle exporter costs one atomic
// load per span and nothing on untraced paths), and every subscriber
// owns a bounded frame queue drained by its own writer goroutine — a
// slow or dead subscriber drops frames (counted) and is eventually
// disconnected by the write timeout.
type Exporter struct {
	cfg ExporterConfig
	src Sources

	start    time.Time
	sessions atomic.Uint64
	subs     atomic.Int32

	spoolMu sync.Mutex
	spool   *obs.Ring[obs.SpanRec]

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	quit   chan struct{}

	framesSent    atomic.Int64
	droppedFrames atomic.Int64
	droppedSpans  atomic.Int64

	subsGauge *obs.Gauge
	framesC   *obs.Counter
	dropFC    *obs.Counter
	dropSC    *obs.Counter
}

// NewExporter builds an exporter over the given sources.  It installs the
// span hook immediately; serving starts with Serve/ListenAndServe.
func NewExporter(cfg ExporterConfig, src Sources) *Exporter {
	e := &Exporter{
		cfg:   cfg.withDefaults(),
		src:   src,
		start: time.Now(),
		spool: obs.NewRing[obs.SpanRec](cfg.withDefaults().SpanSpool),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
	if reg := src.Registry; reg != nil {
		reg.Describe(MetricSubscribers, "Connected telemetry subscribers.")
		reg.Describe(MetricFramesSent, "Telemetry frames written to subscribers.")
		reg.Describe(MetricDroppedFrames, "Telemetry frames dropped on full subscriber queues.")
		reg.Describe(MetricDroppedSpans, "Completed spans lost to telemetry subscribers (spool overrun or queue drop).")
		e.subsGauge = reg.Gauge(MetricSubscribers)
		e.framesC = reg.Counter(MetricFramesSent)
		e.dropFC = reg.Counter(MetricDroppedFrames)
		e.dropSC = reg.Counter(MetricDroppedSpans)
	}
	if t := src.Tracer; t != nil {
		t.OnEnd(func(rec obs.SpanRec) {
			if e.subs.Load() == 0 {
				return // unattached: one atomic load, zero allocations
			}
			e.spoolMu.Lock()
			e.spool.Push(rec)
			e.spoolMu.Unlock()
		})
	}
	return e
}

func (e *Exporter) now() float64 {
	if e.src.Clock != nil {
		return e.src.Clock()
	}
	return time.Since(e.start).Seconds()
}

// Serve accepts subscribers on ln until Close.
func (e *Exporter) Serve(ln net.Listener) {
	e.mu.Lock()
	e.ln = ln
	e.mu.Unlock()
	e.wg.Add(1)
	go e.acceptLoop(ln)
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves.
func (e *Exporter) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	e.Serve(ln)
	return nil
}

// Addr returns the listen address ("" before Serve).
func (e *Exporter) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ln == nil {
		return ""
	}
	return e.ln.Addr().String()
}

// ExporterStats is a point-in-time accounting of one exporter.
type ExporterStats struct {
	Subscribers   int   `json:"subscribers"`
	Sessions      int64 `json:"sessions"`
	FramesSent    int64 `json:"frames_sent"`
	DroppedFrames int64 `json:"dropped_frames"`
	DroppedSpans  int64 `json:"dropped_spans"`
}

// Stats returns the exporter's drop/session accounting.
func (e *Exporter) Stats() ExporterStats {
	return ExporterStats{
		Subscribers:   int(e.subs.Load()),
		Sessions:      int64(e.sessions.Load()),
		FramesSent:    e.framesSent.Load(),
		DroppedFrames: e.droppedFrames.Load(),
		DroppedSpans:  e.droppedSpans.Load(),
	}
}

// Close stops serving and disconnects every subscriber.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.quit)
	var err error
	if e.ln != nil {
		err = e.ln.Close()
	}
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

func (e *Exporter) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.serveSubscriber(conn)
	}
}

// subscriber is one stream's state, owned by its producer goroutine.
type subscriber struct {
	conn  net.Conn
	queue chan []byte
	dead  chan struct{} // closed by the writer on write failure

	lastSnap obs.Snapshot
	cursor   int64 // spool position (Ring.Total at last drain)
	deltaSeq uint64
	hbSeq    uint64

	droppedFrames int64
	droppedSpans  int64
}

// enqueue offers one encoded frame to the subscriber's bounded queue,
// reporting success.  It never blocks.
func (e *Exporter) enqueue(sub *subscriber, payload []byte) bool {
	frame := EncodeFrame(payload)
	select {
	case <-sub.dead:
		return false
	default:
	}
	select {
	case sub.queue <- frame:
		return true
	default:
		sub.droppedFrames++
		e.droppedFrames.Add(1)
		if e.dropFC != nil {
			e.dropFC.Inc()
		}
		return false
	}
}

func (e *Exporter) encodeOrNil(m *Msg) []byte {
	payload, err := EncodeMsg(m)
	if err != nil {
		return nil
	}
	return payload
}

func (e *Exporter) serveSubscriber(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
		conn.Close()
	}()

	sub := &subscriber{
		conn:  conn,
		queue: make(chan []byte, e.cfg.QueueFrames),
		dead:  make(chan struct{}),
	}
	session := e.sessions.Add(1)
	n := e.subs.Add(1)
	if e.subsGauge != nil {
		e.subsGauge.Set(float64(n))
	}
	defer func() {
		n := e.subs.Add(-1)
		if e.subsGauge != nil {
			e.subsGauge.Set(float64(n))
		}
	}()

	// Writer: drains the bounded queue onto the connection.  A write
	// error or timeout marks the stream dead; the producer notices and
	// exits, and the deferred conn.Close unblocks everything else.
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for frame := range sub.queue {
			_ = conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
			if _, err := conn.Write(frame); err != nil {
				close(sub.dead)
				// Drain so the producer's sends never block.
				for range sub.queue {
				}
				return
			}
			e.framesSent.Add(1)
			if e.framesC != nil {
				e.framesC.Inc()
			}
		}
	}()
	defer close(sub.queue)

	// Session preamble: hello, then the full snapshot the deltas build
	// on.  The queue is empty here, so these cannot drop.
	e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindHello, Hello: Hello{
		Version: Version, Node: e.cfg.Node, Session: session,
		Now: e.now(), Interval: e.cfg.Interval.Seconds(),
	}}))
	if e.src.Registry != nil {
		sub.lastSnap = e.src.Registry.Snapshot()
		e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindSnapshot, Snapshot: sub.lastSnap, Help: e.src.Registry.Help()}))
	}
	e.spoolMu.Lock()
	sub.cursor = e.spool.Total()
	e.spoolMu.Unlock()
	e.publishState(sub, 0)

	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for tick := 1; ; tick++ {
		select {
		case <-e.quit:
			return
		case <-sub.dead:
			return
		case <-ticker.C:
		}
		e.publishDelta(sub)
		e.publishSpans(sub)
		e.publishState(sub, tick)
		e.publishHeartbeat(sub)
	}
}

// publishDelta sends the registry delta since the last delivered one.  A
// dropped delta keeps lastSnap, so the change coalesces into the next
// delta instead of being lost — delivered deltas are contiguous and
// loss-free by construction.
func (e *Exporter) publishDelta(sub *subscriber) {
	reg := e.src.Registry
	if reg == nil {
		return
	}
	cur := reg.Snapshot()
	d := ComputeDelta(sub.lastSnap, cur)
	if len(d.Counters) == 0 && len(d.Gauges) == 0 && len(d.Hists) == 0 && len(d.Stats) == 0 {
		return
	}
	d.Seq = sub.deltaSeq + 1
	if e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindDelta, Delta: d})) {
		sub.deltaSeq++
		sub.lastSnap = cur
	}
}

// publishSpans drains the span spool since the subscriber's cursor,
// counting anything the spool overwrote as dropped.
func (e *Exporter) publishSpans(sub *subscriber) {
	if e.src.Tracer == nil {
		return
	}
	e.spoolMu.Lock()
	total := e.spool.Total()
	var items []obs.SpanRec
	if total > sub.cursor {
		items = e.spool.Items()
	}
	e.spoolMu.Unlock()
	if total == sub.cursor {
		return
	}
	oldest := total - int64(len(items))
	if sub.cursor < oldest {
		lost := oldest - sub.cursor
		sub.droppedSpans += lost
		e.droppedSpans.Add(lost)
		if e.dropSC != nil {
			e.dropSC.Add(lost)
		}
		sub.cursor = oldest
	}
	pending := items[sub.cursor-oldest:]
	sub.cursor = total
	for len(pending) > 0 {
		batch := pending
		if len(batch) > e.cfg.SpanBatch {
			batch = batch[:e.cfg.SpanBatch]
		}
		pending = pending[len(batch):]
		if !e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindSpans, Spans: batch})) {
			lost := int64(len(batch) + len(pending))
			sub.droppedSpans += lost
			e.droppedSpans.Add(lost)
			if e.dropSC != nil {
				e.dropSC.Add(lost)
			}
			return
		}
	}
}

// publishState sends the full-state frames (SLO, headroom, ledger);
// they carry absolute values, so a drop is harmless.
func (e *Exporter) publishState(sub *subscriber, tick int) {
	if e.src.SLO != nil {
		e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindSLO, SLO: e.src.SLO.ExportState()}))
	}
	if e.src.Headroom != nil {
		e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindHeadroom, Headroom: e.src.Headroom()}))
	}
	if e.src.Ledger != nil && tick%e.cfg.LedgerEvery == 0 {
		if ls := e.src.Ledger(); ls != nil {
			if payload := e.encodeOrNil(&Msg{Kind: KindLedger, Ledger: ls}); payload != nil {
				e.enqueue(sub, payload)
			}
		}
	}
	if e.src.Latency != nil {
		if ex := e.src.Latency.TopK(); len(ex) > 0 {
			e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindExemplars, Exemplars: ex}))
		}
	}
}

func (e *Exporter) publishHeartbeat(sub *subscriber) {
	sub.hbSeq++
	e.enqueue(sub, e.encodeOrNil(&Msg{Kind: KindHeartbeat, Heartbeat: Heartbeat{
		Now:           e.now(),
		Seq:           sub.hbSeq,
		DroppedFrames: sub.droppedFrames,
		DroppedSpans:  sub.droppedSpans,
		SpanTotal:     e.src.Tracer.Total(),
	}}))
}
