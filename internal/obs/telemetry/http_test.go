package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"milan/internal/obs"
)

// WritePromLabeled must emit one HELP/TYPE header per metric family and
// one node-labeled sample per node, with histogram buckets cumulative.
func TestWritePromLabeled(t *testing.T) {
	snaps := map[string]obs.Snapshot{
		"n1": {
			Counters:   map[string]int64{"jobs_admitted": 5},
			Gauges:     map[string]float64{"inflight": 2},
			Histograms: map[string]obs.HistSnapshot{"lat": {Lo: 0, Hi: 1, Buckets: []int64{3, 1}, Under: 0, Over: 1, Count: 5, Sum: 2.5}},
			Stats:      map[string]obs.StatSnapshot{"slack": {N: 4, Mean: 0.5, Std: 0.1}},
		},
		"n2": {Counters: map[string]int64{"jobs_admitted": 7}},
	}
	var sb strings.Builder
	if err := WritePromLabeled(&sb, snaps, map[string]string{"jobs_admitted": "Jobs admitted."}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP jobs_admitted Jobs admitted.",
		"# TYPE jobs_admitted counter",
		`jobs_admitted{node="n1"} 5`,
		`jobs_admitted{node="n2"} 7`,
		`inflight{node="n1"} 2`,
		`lat_count{node="n1"} 5`,
		`lat_sum{node="n1"} 2.5`,
		`slack_mean{node="n1"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative buckets: le="1" must equal the total in-range+under
	// count and the +Inf bucket the full count.
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("no +Inf bucket in:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE jobs_admitted counter"); n != 1 {
		t.Fatalf("HELP/TYPE emitted %d times, want once per family", n)
	}
}

// The cluster endpoints must serve: JSON /metrics with merged == node
// sums, Prometheus /metrics on content negotiation, /nodes, /healthz.
func TestHandlerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("jobs_admitted").Add(3)
	exp := newTestExporter(t, "n1", "127.0.0.1:0", Sources{Registry: reg})
	defer exp.Close()
	agg := newTestAggregator(t, exp.Addr())
	waitFor(t, 5*time.Second, func() error {
		st := agg.Nodes()[0]
		if !st.Connected || st.Frames == 0 {
			return fmt.Errorf("not ready")
		}
		return nil
	})
	h := agg.Handler()

	// JSON /metrics.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var body struct {
		Merged obs.Snapshot            `json:"merged"`
		Nodes  map[string]obs.Snapshot `json:"nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/metrics JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Merged.Counters["jobs_admitted"] != 3 || body.Nodes["n1"].Counters["jobs_admitted"] != 3 {
		t.Fatalf("merged/per-node mismatch: %+v", body)
	}

	// Prometheus /metrics via ?format=prom.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if !strings.Contains(rec.Body.String(), `jobs_admitted{node="n1"} 3`) {
		t.Fatalf("prom exposition missing labeled sample:\n%s", rec.Body.String())
	}

	// /nodes reports the connected node.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nodes", nil))
	var nodes []NodeStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || !nodes[0].Connected || nodes[0].Node != "n1" {
		t.Fatalf("/nodes = %+v", nodes)
	}

	// /healthz is 200 while the node is up, 503 once it goes dark.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d with node up", rec.Code)
	}
	exp.Close()
	waitFor(t, 5*time.Second, func() error {
		if agg.Nodes()[0].Connected {
			return fmt.Errorf("not ready")
		}
		return nil
	})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz = %d with node down", rec.Code)
	}

	// /state is one self-contained JSON document.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/state", nil))
	var st ClusterState
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/state: %v", err)
	}
	if len(st.Nodes) != 1 {
		t.Fatalf("/state nodes = %+v", st.Nodes)
	}
}

// Conformance pin for the per-node exposition's histogram families:
// cumulative counts over strictly-increasing le bounds PER NODE, under-
// range observations folded into the first bucket, over-range visible
// only in the mandatory +Inf bucket, and +Inf == _count.  Uses a
// log-linear histogram so the le values exercise the Bounds-based path.
func TestWritePromLabeledHistogramConformance(t *testing.T) {
	mk := func(seed float64) obs.HistSnapshot {
		reg := obs.NewRegistry()
		h := reg.HistogramLogLinear("lat", 8, 6, 4)
		h.Observe(1)    // under range
		h.Observe(seed) // in range
		h.Observe(seed * 2)
		h.Observe(1e18) // over range
		return h.Snapshot()
	}
	snaps := map[string]obs.Snapshot{
		"n1": {Histograms: map[string]obs.HistSnapshot{"lat": mk(400)}},
		"n2": {Histograms: map[string]obs.HistSnapshot{"lat": mk(900)}},
	}
	var sb strings.Builder
	if err := WritePromLabeled(&sb, snaps, nil); err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"n1", "n2"} {
		prevLE := -1.0
		prevCum := int64(-1)
		var infCum, count int64
		sawInf, sawSum, sawCount := false, false, false
		for _, line := range strings.Split(sb.String(), "\n") {
			switch {
			case strings.HasPrefix(line, "lat_bucket{") && strings.Contains(line, `node="`+node+`"`):
				var le string
				var cum int64
				if strings.Contains(line, `le="+Inf"`) {
					if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
						t.Fatalf("bad +Inf line %q: %v", line, err)
					}
					sawInf, infCum = true, cum
					continue
				}
				if _, err := fmt.Sscanf(line, `lat_bucket{node="`+node+`",le="%s`, &le); err != nil {
					t.Fatalf("unparseable bucket line %q: %v", line, err)
				}
				le = strings.TrimSuffix(le, `"}`)
				var f float64
				if _, err := fmt.Sscanf(le, "%g", &f); err != nil {
					t.Fatalf("le %q not a float in %q: %v", le, line, err)
				}
				if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
					t.Fatalf("bad count in %q: %v", line, err)
				}
				if sawInf {
					t.Fatalf("finite bucket after +Inf for %s: %q", node, line)
				}
				if f <= prevLE {
					t.Fatalf("%s: le not strictly increasing: %v after %v", node, f, prevLE)
				}
				if cum < prevCum {
					t.Fatalf("%s: cumulative count decreased: %d after %d", node, cum, prevCum)
				}
				prevLE, prevCum = f, cum
			case strings.HasPrefix(line, "lat_sum{node=\""+node+"\"}"):
				sawSum = true
			case strings.HasPrefix(line, "lat_count{node=\""+node+"\"}"):
				if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &count); err != nil {
					t.Fatalf("bad _count line %q: %v", line, err)
				}
				sawCount = true
			}
		}
		if !sawInf || !sawSum || !sawCount {
			t.Fatalf("%s: missing +Inf/_sum/_count (inf=%v sum=%v count=%v)", node, sawInf, sawSum, sawCount)
		}
		if count != 4 {
			t.Fatalf("%s: _count = %d, want 4", node, count)
		}
		if infCum != count {
			t.Fatalf("%s: +Inf bucket %d != _count %d", node, infCum, count)
		}
		if prevCum != 3 {
			t.Fatalf("%s: last finite bucket %d, want 3 (over-range only in +Inf)", node, prevCum)
		}
	}
}
