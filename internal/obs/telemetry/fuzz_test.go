package telemetry

import (
	"bytes"
	"testing"

	"milan/internal/obs/latency"
)

// FuzzTelemetryDecode hardens the wire decoder the same way
// durable.FuzzRecordDecode hardens the WAL: arbitrary bytes must either
// error or decode canonically — a clean decode re-encodes to the exact
// input, so hostile frames can never smuggle state the encoder would not
// have produced.
func FuzzTelemetryDecode(f *testing.F) {
	for _, m := range sampleMsgs(f) {
		payload, err := EncodeMsg(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	// Adversarial seeds: empty, lone kind byte, unknown kind, a count
	// field inflated toward the decoder's allocation limits.
	f.Add([]byte{})
	f.Add([]byte{byte(KindHello)})
	f.Add([]byte{0xee, 1, 2, 3, 4, 5, 6, 7})
	huge, err := EncodeMsg(&Msg{Kind: KindSpans, Spans: sampleSpans()})
	if err != nil {
		f.Fatal(err)
	}
	huge[1] = 0xff // inflate the span count
	f.Add(huge)

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeMsg(payload)
		if err != nil {
			return
		}
		re, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, re)
		}
		if _, err := DecodeMsg(re); err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
	})
}

// FuzzExemplarDecode focuses the fuzzer on the KindExemplars frame
// decoder: the tail-exemplar records cross the trust boundary from every
// node into the aggregator, so arbitrary bytes must either error or
// decode canonically — exact consumption (no trailing bytes), the
// phase-waterfall length pinned to latency.NumPhases, and decode∘encode
// returning the identical payload.  Seeds live in
// testdata/fuzz/FuzzExemplarDecode (committed corpus).
func FuzzExemplarDecode(f *testing.F) {
	for _, m := range sampleMsgs(f) {
		if m.Kind != KindExemplars {
			continue
		}
		payload, err := EncodeMsg(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	// Empty exemplar set (a node with no tail yet).
	empty, err := EncodeMsg(&Msg{Kind: KindExemplars})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	// Adversarial: truncated frame, inflated count, wrong waterfall
	// length byte.
	full, err := EncodeMsg(&Msg{Kind: KindExemplars, Exemplars: sampleExemplars()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full[:len(full)/2])
	inflated := append([]byte(nil), full...)
	inflated[1] = 0xff // count varint
	f.Add(inflated)

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeMsg(payload)
		if err != nil {
			return
		}
		if m.Kind != KindExemplars {
			return
		}
		for _, ex := range m.Exemplars {
			var sum int64
			for _, d := range ex.Durs {
				sum += d
			}
			_ = sum // the waterfall length is pinned by the decoder
		}
		re, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("decoded exemplar frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, re)
		}
	})
}

// sampleExemplars returns a deterministic exemplar set for seeds.
func sampleExemplars() []latency.Exemplar {
	out := make([]latency.Exemplar, 4)
	for i := range out {
		out[i] = latency.Exemplar{
			Trace: uint64(i+1) * 0x9e3779b97f4a7c15,
			Job:   int64(100 + i),
			Shard: int32(i - 1),
			Total: int64(1000 * (i + 1)),
			At:    float64(1700 + i),
		}
		for ph := range out[i].Durs {
			out[i].Durs[ph] = int64(ph * (i + 1) * 37)
		}
	}
	return out
}
