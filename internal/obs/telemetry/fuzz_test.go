package telemetry

import (
	"bytes"
	"testing"
)

// FuzzTelemetryDecode hardens the wire decoder the same way
// durable.FuzzRecordDecode hardens the WAL: arbitrary bytes must either
// error or decode canonically — a clean decode re-encodes to the exact
// input, so hostile frames can never smuggle state the encoder would not
// have produced.
func FuzzTelemetryDecode(f *testing.F) {
	for _, m := range sampleMsgs(f) {
		payload, err := EncodeMsg(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	// Adversarial seeds: empty, lone kind byte, unknown kind, a count
	// field inflated toward the decoder's allocation limits.
	f.Add([]byte{})
	f.Add([]byte{byte(KindHello)})
	f.Add([]byte{0xee, 1, 2, 3, 4, 5, 6, 7})
	huge, err := EncodeMsg(&Msg{Kind: KindSpans, Spans: sampleSpans()})
	if err != nil {
		f.Fatal(err)
	}
	huge[1] = 0xff // inflate the span count
	f.Add(huge)

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeMsg(payload)
		if err != nil {
			return
		}
		re, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, re)
		}
		if _, err := DecodeMsg(re); err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
	})
}
