package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
)

// ClusterState is the aggregator's full view in one JSON-marshalable
// value: the /state surface, and the artifact milanmon dumps on smoke
// failure.
type ClusterState struct {
	Nodes     []NodeStatus            `json:"nodes"`
	Merged    obs.Snapshot            `json:"merged"`
	PerNode   map[string]obs.Snapshot `json:"per_node"`
	SLO       slo.EngineState         `json:"slo"`
	Burns     []slo.ObjectiveBurn     `json:"burns"`
	Headroom  core.Headroom           `json:"headroom"`
	Ledger    *ledger.Snapshot        `json:"ledger,omitempty"`
	Exemplars []latency.Exemplar      `json:"exemplars,omitempty"`
	Alerts    []AlertEvent            `json:"alerts,omitempty"`
	Error     string                  `json:"error,omitempty"`
}

// State captures the aggregator's current cluster view.
func (a *Aggregator) State() ClusterState {
	merged, err := a.MergedRegistry()
	perNode, _ := a.NodeSnapshots()
	st := ClusterState{
		Nodes:     a.Nodes(),
		Merged:    merged,
		PerNode:   perNode,
		SLO:       a.MergedSLO(),
		Headroom:  a.MergedHeadroom(),
		Ledger:    a.MergedLedger(),
		Exemplars: a.MergedExemplars(0),
		Alerts:    a.Alerts(),
	}
	st.Burns = st.SLO.Burns()
	if err != nil {
		st.Error = err.Error()
	}
	return st
}

// Handler serves the aggregator's cluster-level view:
//
//	/metrics  merged registry (JSON: merged + per-node; ?format=prom for
//	          node-labeled Prometheus text exposition)
//	/trace    stitched cross-process span trees as JSON (?trace=ID)
//	/slo      merged SLO state, re-derived burns, and alert transitions
//	/nodes    per-node liveness, stream lag, and drop accounting
//	/headroom merged admissibility frontier
//	/ledger   merged utilization ledger
//	/latency  merged phase-latency anatomy: cluster-wide per-phase
//	          quantiles, top-K slowest exemplars, stitched traces
//	/state    the full ClusterState in one document
//	/healthz  200 when every node is connected, 503 otherwise
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("milanmon cluster view\n\n/metrics  merged registry (JSON; ?format=prom for node-labeled Prometheus text)\n/trace    stitched cross-process span trees (JSON, ?trace=ID)\n/slo      merged SLO state + re-derived burn rates + alerts\n/nodes    node liveness, stream lag, drop accounting\n/headroom merged admissibility frontier\n/ledger   merged utilization ledger\n/state    full cluster state in one document\n/healthz  cluster liveness\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if obs.WantsProm(r) {
			snaps, help := a.NodeSnapshots()
			w.Header().Set("Content-Type", obs.PromContentType)
			if err := WritePromLabeled(w, snaps, help); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		merged, err := a.MergedRegistry()
		perNode, _ := a.NodeSnapshots()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, struct {
			Merged obs.Snapshot            `json:"merged"`
			Nodes  map[string]obs.Snapshot `json:"nodes"`
		}{merged, perNode})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		trees := a.SpanTrees()
		if s := r.URL.Query().Get("trace"); s != "" {
			var id uint64
			if _, err := fmt.Sscanf(s, "%d", &id); err != nil {
				http.Error(w, "bad trace parameter", http.StatusBadRequest)
				return
			}
			if tree, ok := trees[obs.TraceID(id)]; ok {
				writeJSON(w, tree)
				return
			}
			http.NotFound(w, r)
			return
		}
		// Render keyed by decimal trace ID, ordered.
		ids := make([]obs.TraceID, 0, len(trees))
		for id := range trees {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := make([]*obs.SpanNode, 0, len(ids))
		for _, id := range ids {
			out = append(out, trees[id])
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		st := a.MergedSLO()
		writeJSON(w, struct {
			State  slo.EngineState     `json:"state"`
			Burns  []slo.ObjectiveBurn `json:"burns"`
			Alerts []AlertEvent        `json:"alerts"`
		}{st, st.Burns(), a.Alerts()})
	})
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.Nodes())
	})
	mux.HandleFunc("/headroom", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.MergedHeadroom())
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, r *http.Request) {
		ls := a.MergedLedger()
		if ls == nil {
			http.Error(w, "no ledger received yet", http.StatusNotFound)
			return
		}
		writeJSON(w, ls)
	})
	mux.HandleFunc("/latency", func(w http.ResponseWriter, r *http.Request) {
		k := 16
		if q := r.URL.Query().Get("k"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &k); err != nil || k < 1 {
				http.Error(w, "bad k parameter", http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, a.LatencyView(k))
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.State())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		nodes := a.Nodes()
		down := 0
		for _, n := range nodes {
			if !n.Connected {
				down++
			}
		}
		if down > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, struct {
			Nodes int `json:"nodes"`
			Down  int `json:"down"`
		}{len(nodes), down})
	})
	return mux
}

// LatencyPhaseView is one phase's cluster-merged latency summary.
type LatencyPhaseView struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// LatencyView is the /latency surface: cluster-wide phase anatomy built
// from the merged phase histograms, the k slowest exemplars across all
// nodes, and — for every exemplar whose trace the span stream retained —
// the stitched cross-process span tree, so a tail request is navigable
// from waterfall to spans in one document.
type LatencyView struct {
	Phases    map[string]LatencyPhaseView `json:"phases"`
	Exemplars []latency.Exemplar          `json:"exemplars"`
	Traces    map[string]*obs.SpanNode    `json:"traces,omitempty"`
	Error     string                      `json:"error,omitempty"`
}

// LatencyView assembles the cluster latency anatomy (k bounds the
// exemplar list; <= 0 keeps all).
func (a *Aggregator) LatencyView(k int) LatencyView {
	v := LatencyView{Phases: make(map[string]LatencyPhaseView)}
	merged, err := a.MergedRegistry()
	if err != nil {
		v.Error = err.Error()
	}
	names := latency.PhaseNames()
	grab := func(key, metric string) {
		h, ok := merged.Histograms[metric]
		if !ok || h.Count == 0 {
			return
		}
		v.Phases[key] = LatencyPhaseView{
			Count:  h.Count,
			MeanNs: h.Mean(),
			P50Ns:  h.Quantile(0.50),
			P99Ns:  h.Quantile(0.99),
		}
	}
	grab("e2e", "latency_admit_ns")
	for _, n := range names {
		grab(n, "latency_phase_"+n+"_ns")
	}
	v.Exemplars = a.MergedExemplars(k)
	trees := a.SpanTrees()
	for _, e := range v.Exemplars {
		if e.Trace == 0 {
			continue
		}
		if tree, ok := trees[obs.TraceID(e.Trace)]; ok {
			if v.Traces == nil {
				v.Traces = make(map[string]*obs.SpanNode)
			}
			v.Traces[fmt.Sprintf("%d", e.Trace)] = tree
		}
	}
	return v
}

// WritePromLabeled renders per-node registry snapshots in the
// Prometheus text exposition format with every sample labeled by origin
// (`name{node="label"}`): one HELP/TYPE header per family, then one
// series per node.  Cross-node aggregation is left to the scraper
// (`sum by (__name__)`), matching Prometheus convention — the merged
// totals are served pre-computed on the JSON side only.
func WritePromLabeled(w io.Writer, snaps map[string]obs.Snapshot, help map[string]string) error {
	nodes := make([]string, 0, len(snaps))
	for n := range snaps {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	label := func(node string, extra string) string {
		if extra == "" {
			return fmt.Sprintf(`{node="%s"}`, obs.PromEscapeLabel(node))
		}
		return fmt.Sprintf(`{node="%s",%s}`, obs.PromEscapeLabel(node), extra)
	}
	header := func(name, kind, suffix string) error {
		n := obs.PromName(name) + suffix
		h := help[name]
		if h == "" {
			h = "milan " + kind + " " + obs.PromName(name) + "."
		}
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, obs.PromEscapeHelp(h), n, kind)
		return err
	}
	// Union of family names per kind, sorted for a stable exposition.
	families := func(pick func(obs.Snapshot) []string) []string {
		seen := make(map[string]bool)
		var out []string
		for _, node := range nodes {
			for _, name := range pick(snaps[node]) {
				if !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
			}
		}
		sort.Strings(out)
		return out
	}
	counterNames := families(func(s obs.Snapshot) []string { return mapKeys(s.Counters) })
	gaugeNames := families(func(s obs.Snapshot) []string { return mapKeys(s.Gauges) })
	histNames := families(func(s obs.Snapshot) []string { return mapKeys(s.Histograms) })
	statNames := families(func(s obs.Snapshot) []string { return mapKeys(s.Stats) })

	for _, name := range counterNames {
		if err := header(name, "counter", ""); err != nil {
			return err
		}
		for _, node := range nodes {
			if v, ok := snaps[node].Counters[name]; ok {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", obs.PromName(name), label(node, ""), v); err != nil {
					return err
				}
			}
		}
	}
	for _, name := range gaugeNames {
		if err := header(name, "gauge", ""); err != nil {
			return err
		}
		for _, node := range nodes {
			if v, ok := snaps[node].Gauges[name]; ok {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", obs.PromName(name), label(node, ""), obs.PromFloat(v)); err != nil {
					return err
				}
			}
		}
	}
	for _, name := range histNames {
		if err := header(name, "histogram", ""); err != nil {
			return err
		}
		n := obs.PromName(name)
		for _, node := range nodes {
			h, ok := snaps[node].Histograms[name]
			if !ok {
				continue
			}
			cum := h.Under
			for i, c := range h.Buckets {
				cum += c
				le := h.BucketUpper(i)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n,
					label(node, fmt.Sprintf(`le="%s"`, obs.PromEscapeLabel(obs.PromFloat(le)))), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
				n, label(node, `le="+Inf"`), h.Count,
				n, label(node, ""), obs.PromFloat(h.Sum),
				n, label(node, ""), h.Count); err != nil {
				return err
			}
		}
	}
	for _, name := range statNames {
		n := obs.PromName(name)
		for _, part := range []string{"_mean", "_std", "_count"} {
			if err := header(name, "gauge", part); err != nil {
				return err
			}
			for _, node := range nodes {
				st, ok := snaps[node].Stats[name]
				if !ok {
					continue
				}
				var v string
				switch part {
				case "_mean":
					v = obs.PromFloat(st.Mean)
				case "_std":
					v = obs.PromFloat(st.Std)
				case "_count":
					v = fmt.Sprint(st.N)
				}
				if _, err := fmt.Fprintf(w, "%s%s%s %s\n", n, part, label(node, ""), v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func mapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
