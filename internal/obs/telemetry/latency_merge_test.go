package telemetry

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"milan/internal/obs"
	"milan/internal/obs/latency"
)

// Cluster property: the aggregator's merged per-phase latency
// histograms must equal the per-node sums BIT-FOR-BIT after riding the
// real telemetry wire (encode → stream → accumulate → merge).  Phase
// durations are integer nanoseconds, so the float64 bucket sums stay
// exactly representable and reflect.DeepEqual is the honest check.
func TestMergedPhaseHistogramsEqualNodeSums(t *testing.T) {
	const nodes = 3
	regs := make([]*obs.Registry, nodes)
	exps := make([]*Exporter, nodes)
	addrs := make([]string, nodes)
	rng := rand.New(rand.NewSource(99))
	for i := range regs {
		regs[i] = obs.NewRegistry()
		lp := latency.New(latency.Config{Registry: regs[i]})
		// Drive admissions with per-node-distinct phase durations.
		for j := 0; j < 50+i*17; j++ {
			var durs [latency.NumPhases]int64
			total := int64(0)
			for ph := range durs {
				durs[ph] = rng.Int63n(1 << 20)
				total += durs[ph]
			}
			lp.Done(rng.Uint64(), int64(j), int32(i), total, durs, int64(j))
		}
		exps[i] = newTestExporter(t, fmt.Sprintf("n%d", i), "127.0.0.1:0", Sources{Registry: regs[i], Latency: lp})
		defer exps[i].Close()
		addrs[i] = exps[i].Addr()
	}
	agg := newTestAggregator(t, addrs...)

	// Expected: the direct merge of the live per-node snapshots.
	want := make(map[string]obs.HistSnapshot)
	histNames := []string{"latency_admit_ns"}
	for _, ph := range latency.PhaseNames() {
		histNames = append(histNames, "latency_phase_"+ph+"_ns")
	}
	for _, name := range histNames {
		for i, reg := range regs {
			h, ok := reg.Snapshot().Histograms[name]
			if !ok {
				t.Fatalf("node %d registry missing %s", i, name)
			}
			if acc, ok := want[name]; ok {
				if err := acc.Merge(h); err != nil {
					t.Fatal(err)
				}
				want[name] = acc
			} else {
				want[name] = h
			}
		}
	}

	waitFor(t, 5e9, func() error {
		merged, err := agg.MergedRegistry()
		if err != nil {
			return err
		}
		for _, name := range histNames {
			got, ok := merged.Histograms[name]
			if !ok {
				return fmt.Errorf("merged registry missing %s", name)
			}
			if !reflect.DeepEqual(got, want[name]) {
				return fmt.Errorf("%s: merged != per-node sum\n got %+v\nwant %+v", name, got, want[name])
			}
		}
		return nil
	})
}

// Exemplars flow node -> wire -> aggregator: the merged top-K must
// contain the cluster-slowest request with its waterfall intact.
func TestAggregatorMergesExemplars(t *testing.T) {
	reg := obs.NewRegistry()
	lp := latency.New(latency.Config{Registry: reg})
	var durs [latency.NumPhases]int64
	durs[1] = 50_000_000 // probe-dominated waterfall
	lp.Done(0xabcd, 7, 2, 50_100_000, durs, 0)
	exp := newTestExporter(t, "n1", "127.0.0.1:0", Sources{Registry: reg, Latency: lp})
	defer exp.Close()
	agg := newTestAggregator(t, exp.Addr())

	waitFor(t, 5e9, func() error {
		got := agg.MergedExemplars(4)
		if len(got) == 0 {
			return fmt.Errorf("no exemplars merged yet")
		}
		e := got[0]
		if e.Trace != 0xabcd || e.Total != 50_100_000 || e.Durs[1] != 50_000_000 {
			return fmt.Errorf("exemplar drifted over the wire: %+v", e)
		}
		return nil
	})
	view := agg.LatencyView(4)
	if len(view.Exemplars) == 0 || view.Exemplars[0].Trace != 0xabcd {
		t.Fatalf("latency view missing the exemplar: %+v", view.Exemplars)
	}
}
