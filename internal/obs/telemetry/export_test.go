package telemetry

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"milan/internal/core"
	"milan/internal/fed"
	"milan/internal/obs"
	"milan/internal/qos/qosnet"
)

const testInterval = 20 * time.Millisecond

func waitFor(t *testing.T, timeout time.Duration, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var err error
	for time.Now().Before(deadline) {
		if err = cond(); err == nil {
			return
		}
		time.Sleep(testInterval)
	}
	t.Fatalf("condition never held: %v", err)
}

// stripSelf drops the exporter's own telemetry_* metrics: they count
// frame writes, so they advance as a side effect of being exported and
// can never be compared against a live registry at a single instant.
func stripSelf(s obs.Snapshot) obs.Snapshot {
	out := s.Clone()
	for _, m := range []map[string]int64{out.Counters} {
		for name := range m {
			if strings.HasPrefix(name, "telemetry_") {
				delete(m, name)
			}
		}
	}
	for name := range out.Gauges {
		if strings.HasPrefix(name, "telemetry_") {
			delete(out.Gauges, name)
		}
	}
	return out
}

func newTestExporter(t *testing.T, node, addr string, src Sources) *Exporter {
	t.Helper()
	e := NewExporter(ExporterConfig{Node: node, Interval: testInterval}, src)
	if err := e.ListenAndServe(addr); err != nil {
		t.Fatal(err)
	}
	return e
}

func newTestAggregator(t *testing.T, nodes ...string) *Aggregator {
	t.Helper()
	a := NewAggregator(AggregatorConfig{
		Nodes:    nodes,
		RetryMin: testInterval,
		RetryMax: 4 * testInterval,
	})
	a.Start()
	t.Cleanup(a.Close)
	return a
}

// One node, live registry churning concurrently with the stream: once
// the churn stops, the aggregator's accumulated view must equal the live
// registry exactly (snapshot + contiguous deltas, nothing lost).
func TestAggregatorConvergesToLiveRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	exp := newTestExporter(t, "n1", "127.0.0.1:0", Sources{Registry: reg})
	defer exp.Close()
	agg := newTestAggregator(t, exp.Addr())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
				mutate(reg, rng)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(10 * testInterval)
	close(stop)
	wg.Wait()

	waitFor(t, 5*time.Second, func() error {
		snaps, _ := agg.NodeSnapshots()
		acc, ok := snaps["n1"]
		if !ok {
			return fmt.Errorf("no accumulated snapshot yet")
		}
		if !reflect.DeepEqual(stripSelf(acc), stripSelf(reg.Snapshot())) {
			return fmt.Errorf("accumulated view != live registry")
		}
		return nil
	})
	if st := agg.Nodes()[0]; !st.Connected || st.Frames == 0 || st.DeltaSeq == 0 {
		t.Fatalf("node status = %+v", st)
	}
}

// Kill-and-reconnect: the exporter process dies mid-stream and a new one
// (same registry, same address) takes over.  The aggregator must resync
// via the new session's snapshot and converge again — including the churn
// that happened while the stream was down.
func TestAggregatorResyncsAfterExporterRestart(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(5))
	mutate(reg, rng)

	exp := newTestExporter(t, "n1", "127.0.0.1:0", Sources{Registry: reg})
	addr := exp.Addr()
	agg := newTestAggregator(t, addr)

	waitFor(t, 5*time.Second, func() error {
		st := agg.Nodes()[0]
		if !st.Connected || st.Frames == 0 {
			return fmt.Errorf("not connected: %+v", st)
		}
		return nil
	})

	// Kill the exporter; churn the registry while the stream is dark.
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mutate(reg, rng)
	}

	// A new exporter takes over the same address (a restarted junctiond).
	var exp2 *Exporter
	waitFor(t, 5*time.Second, func() error {
		e := NewExporter(ExporterConfig{Node: "n1", Interval: testInterval}, Sources{Registry: reg})
		if err := e.ListenAndServe(addr); err != nil {
			e.Close()
			return err
		}
		exp2 = e
		return nil
	})
	defer exp2.Close()

	waitFor(t, 10*time.Second, func() error {
		st := agg.Nodes()[0]
		if !st.Connected {
			return fmt.Errorf("not reconnected: %+v", st)
		}
		if st.Resyncs < 1 {
			return fmt.Errorf("resyncs = %d, want >= 1 (the post-restart snapshot supersedes)", st.Resyncs)
		}
		snaps, _ := agg.NodeSnapshots()
		if !reflect.DeepEqual(stripSelf(snaps["n1"]), stripSelf(reg.Snapshot())) {
			return fmt.Errorf("post-restart view has not converged")
		}
		return nil
	})
}

// testNode is one in-process junctiond stand-in: a sharded federated
// plane behind a qosnet server, with a seeded tracer and an exporter.
type testNode struct {
	name string
	reg  *obs.Registry
	tr   *obs.Tracer
	srv  *qosnet.Server
	exp  *Exporter
}

func startTestNode(t *testing.T, name string) *testNode {
	t.Helper()
	n := &testNode{name: name, reg: obs.NewRegistry(), tr: obs.NewTracer(1 << 12)}
	n.tr.SeedIDs(NodeIDBase(name))
	plane, err := fed.New(fed.Config{Procs: 16, Shards: 2, ProbeK: 2, Tracer: n.tr})
	if err != nil {
		t.Fatal(err)
	}
	n.srv, err = qosnet.ListenAndServe(plane, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.srv.Close() })
	n.srv.SetTracer(n.tr)
	n.exp = newTestExporter(t, name, "127.0.0.1:0", Sources{Registry: n.reg, Tracer: n.tr})
	t.Cleanup(func() { n.exp.Close() })
	return n
}

// Cross-process span propagation under -race: concurrent qosnet clients
// mint root spans in their own ID range, negotiate against two traced
// server nodes, and the aggregator must (a) merge both registries into
// exactly the per-node sum, bit for bit on counters, and (b) stitch
// client-rooted trees whose arrival/route/plan/reserve/run stages span
// both ID ranges — proof the trace identity crossed the wire.
func TestCrossProcessSpanStitchingConcurrentClients(t *testing.T) {
	nodes := []*testNode{startTestNode(t, "nodeA"), startTestNode(t, "nodeB")}
	agg := newTestAggregator(t, nodes[0].exp.Addr(), nodes[1].exp.Addr())

	const clients, perClient = 4, 8
	clientTr := obs.NewTracer(1 << 12)
	clientTr.SeedIDs(NodeIDBase("client"))

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		for _, n := range nodes {
			wg.Add(1)
			go func(c int, n *testNode) {
				defer wg.Done()
				cli, err := qosnet.Dial(n.srv.Addr().String())
				if err != nil {
					t.Error(err)
					return
				}
				defer cli.Close()
				for i := 0; i < perClient; i++ {
					job := core.Job{ID: c*1000 + i, Chains: []core.Chain{{
						Quality: 1,
						Tasks:   []core.Task{{Procs: 1, Duration: 1, Deadline: 1e9, Quality: 1}},
					}}}
					root := clientTr.Start(clientTr.NewTrace(), 0, "client.submit", obs.StageArrival, job.ID)
					job.Trace, job.Span = uint64(root.Trace()), uint64(root.ID())
					g, err := cli.Negotiate(job)
					if err == nil {
						run := clientTr.StartAt(obs.TraceID(job.Trace), root.ID(), "job.run", obs.StageRun, job.ID, g.Placement.Start())
						run.EndAt(g.Placement.Finish())
					}
					root.End()
					n.reg.Counter("node_requests").Inc()
				}
			}(c, n)
		}
	}
	wg.Wait()
	agg.InjectSpans("client", clientTr.Spans())

	clientBase := NodeIDBase("client") >> 32
	waitFor(t, 10*time.Second, func() error {
		merged, err := agg.MergedRegistry()
		if err != nil {
			return err
		}
		snaps, _ := agg.NodeSnapshots()
		if len(snaps) != len(nodes) {
			return fmt.Errorf("%d/%d node snapshots", len(snaps), len(nodes))
		}
		sums := make(map[string]int64)
		for _, s := range snaps {
			for name, v := range s.Counters {
				sums[name] += v
			}
		}
		if len(sums) != len(merged.Counters) {
			return fmt.Errorf("merged has %d counters, sum has %d", len(merged.Counters), len(sums))
		}
		for name, want := range sums {
			if merged.Counters[name] != want {
				return fmt.Errorf("merged[%s] = %d, per-node sum = %d", name, merged.Counters[name], want)
			}
		}
		if got := sums["node_requests"]; got != int64(clients*perClient*len(nodes)) {
			return fmt.Errorf("node_requests = %d, want %d", got, clients*perClient*len(nodes))
		}

		for _, tree := range agg.SpanTrees() {
			if tree.FindStage(obs.StageArrival) == nil ||
				tree.FindStage(obs.StageRoute) == nil ||
				tree.FindStage(obs.StagePlan) == nil ||
				tree.FindStage(obs.StageReserve) == nil ||
				tree.FindStage(obs.StageRun) == nil {
				continue
			}
			origins := make(map[uint64]bool)
			tree.Walk(func(n *obs.SpanNode) {
				if n.ID != 0 {
					origins[uint64(n.ID)>>32] = true
				}
			})
			if len(origins) >= 2 && origins[clientBase] {
				return nil
			}
		}
		return fmt.Errorf("no stitched cross-process tree yet")
	})
}

// The nil-hook contract's "attached but idle" case: with an exporter
// hooked to the tracer and zero subscribers connected, a span start+end
// must allocate exactly what it allocates with no exporter at all.
func TestAttachedIdleExporterAddsNoAllocs(t *testing.T) {
	span := func(tr *obs.Tracer) {
		s := tr.Start(tr.NewTrace(), 0, "probe", obs.StagePlan, 1)
		s.End()
	}
	plain := obs.NewTracer(1 << 10)
	attached := obs.NewTracer(1 << 10)
	exp := NewExporter(ExporterConfig{Node: "idle"}, Sources{Tracer: attached})
	defer exp.Close()

	base := testing.AllocsPerRun(500, func() { span(plain) })
	idle := testing.AllocsPerRun(500, func() { span(attached) })
	if idle != base {
		t.Fatalf("attached-but-idle exporter changed span cost: %.1f allocs vs %.1f", idle, base)
	}
}
