package telemetry

import (
	"bytes"
	"reflect"
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
)

// sampleSnapshot is a fully-populated registry snapshot exercising every
// metric family the wire carries.
func sampleSnapshot() obs.Snapshot {
	return obs.Snapshot{
		Counters: map[string]int64{"jobs_admitted": 41, "jobs_rejected": 7},
		Gauges:   map[string]float64{"inflight": 3.5},
		Histograms: map[string]obs.HistSnapshot{
			"admit_latency": {Lo: 0, Hi: 1, Buckets: []int64{1, 2, 3, 0}, Under: 1, Over: 2, Count: 9, Sum: 4.25},
		},
		Stats: map[string]obs.StatSnapshot{
			"slack": {N: 12, Mean: 0.5, Std: 0.125, CI95: 0.07},
		},
	}
}

func sampleSpans() []obs.SpanRec {
	return []obs.SpanRec{
		{Trace: 9, ID: 10, Name: "qosnet.negotiate", Stage: obs.StageArrival, Job: 3, Start: 1, End: 2},
		{Trace: 9, ID: 11, Parent: 10, Name: "fed.route", Stage: obs.StageRoute, Job: 3, Start: 1.1, End: 1.9,
			Err: "rejected", Attrs: map[string]float64{"shard": 2, "finish": 8.5}},
	}
}

func sampleMsgs(t testing.TB) []*Msg {
	led := ledger.New(ledger.Config{}).Snapshot()
	return []*Msg{
		{Kind: KindHello, Hello: Hello{Version: Version, Node: "n1", Session: 7, Now: 1.5, Interval: 0.2}},
		{Kind: KindSnapshot, Snapshot: sampleSnapshot(), Help: map[string]string{"jobs_admitted": "Jobs \"admitted\".\n"}},
		{Kind: KindDelta, Delta: Delta{
			Seq:      3,
			Counters: map[string]int64{"jobs_admitted": 2},
			Gauges:   map[string]float64{"inflight": -1},
			Hists:    map[string]obs.HistSnapshot{"admit_latency": {Lo: 0, Hi: 1, Buckets: []int64{0, 1, 0, 0}, Count: 1, Sum: 0.3}},
			Stats:    map[string]obs.StatSnapshot{"slack": {N: 13, Mean: 0.51, Std: 0.12, CI95: 0.06}},
		}},
		{Kind: KindSpans, Spans: sampleSpans()},
		{Kind: KindSLO, SLO: slo.EngineState{
			Admitted: 5, Rejected: 1, Completed: 4, InFlight: 1, DeadlineMisses: 1, BurnThreshold: 2,
			Objectives: []slo.ObjectiveState{
				{Name: slo.ObjectiveLatency, Budget: 0.01, Active: true, ShortBad: 1, ShortTotal: 10, LongBad: 2, LongTotal: 100},
			},
		}},
		{Kind: KindHeadroom, Headroom: core.Headroom{
			From: 1, Horizon: 100, MaxProcs: 8, MaxDuration: 40, MaxArea: 80,
			BestHole: core.Hole{Start: 2, End: 42, Procs: 2},
		}},
		{Kind: KindLedger, Ledger: led},
		{Kind: KindExemplars, Exemplars: []latency.Exemplar{
			{Trace: 0xdeadbeef, Job: 42, Shard: 3, Total: 51_000_000,
				Durs: [latency.NumPhases]int64{1000, 50_000_000, 0, 900_000, 90_000, 9_000}, At: 1723.5},
			{Trace: 0, Job: -1, Shard: -1, Total: 700,
				Durs: [latency.NumPhases]int64{100, 100, 100, 100, 100, 200}, At: 1724.25},
		}},
		{Kind: KindHeartbeat, Heartbeat: Heartbeat{Now: 2.5, Seq: 9, DroppedFrames: 1, DroppedSpans: 3, SpanTotal: 44}},
	}
}

// Every message kind must survive an encode/decode round trip intact.
func TestMsgRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs(t) {
		payload, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Kind, err)
		}
		got, err := DecodeMsg(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%v round trip drifted:\n got %+v\nwant %+v", m.Kind, got, m)
		}
		// Canonical: re-encoding the decoded message reproduces the bytes.
		re, err := EncodeMsg(got)
		if err != nil {
			t.Fatalf("%v: re-encode: %v", m.Kind, err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("%v encoding is not canonical", m.Kind)
		}
	}
}

// WriteMsg/ReadMsg must stream frames over a byte pipe and reject
// corruption anywhere in the frame: any single flipped bit fails the
// crc32c (or a structural check), never yields a wrong message.
func TestFrameStreamAndCorruption(t *testing.T) {
	msgs := sampleMsgs(t)
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	for i, want := range msgs {
		got, err := ReadMsg(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d drifted", i)
		}
	}

	for _, bit := range []int{0, 17, 35, len(stream)/2 | 1, len(stream) - 1} {
		mut := append([]byte(nil), stream...)
		mut[bit] ^= 0x40
		r := bytes.NewReader(mut)
		for {
			m, err := ReadMsg(r)
			if err != nil {
				break // corruption detected somewhere in the stream: good
			}
			// A frame that still decodes must equal one of the originals —
			// the flip hit a later frame.
			ok := false
			for _, want := range msgs {
				if reflect.DeepEqual(m, want) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("bit flip at %d yielded a novel message: %+v", bit, m)
			}
		}
	}
}

// Truncated payloads and trailing garbage must error, not panic or
// silently succeed.
func TestDecodeRejectsTruncationAndTrailing(t *testing.T) {
	for _, m := range sampleMsgs(t) {
		payload, err := EncodeMsg(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeMsg(payload[:cut]); err == nil {
				t.Fatalf("%v: truncation at %d/%d decoded cleanly", m.Kind, cut, len(payload))
			}
		}
		if _, err := DecodeMsg(append(append([]byte(nil), payload...), 0)); err == nil {
			t.Fatalf("%v: trailing byte accepted", m.Kind)
		}
	}
}

func TestDecodeRejectsUnknownKindAndEmpty(t *testing.T) {
	if _, err := DecodeMsg(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := DecodeMsg([]byte{0xee}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// The snapshot encoding sorts metric names, and the decoder enforces the
// strictly-increasing order — out-of-order or duplicate names are a
// non-canonical stream and must be rejected.
func TestDecodeRejectsUnsortedNames(t *testing.T) {
	a, err := EncodeMsg(&Msg{Kind: KindDelta, Delta: Delta{Seq: 1, Counters: map[string]int64{"a": 1, "b": 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Swap the two sorted single-byte names in place: "a"..."b" -> "b"..."a".
	ia, ib := bytes.IndexByte(a, 'a'), bytes.IndexByte(a, 'b')
	if ia < 0 || ib < 0 {
		t.Fatal("names not found in encoding")
	}
	a[ia], a[ib] = 'b', 'a'
	if _, err := DecodeMsg(a); err == nil {
		t.Fatal("out-of-order metric names accepted")
	}
}

func TestEncodeRejectsNilLedger(t *testing.T) {
	if _, err := EncodeMsg(&Msg{Kind: KindLedger}); err == nil {
		t.Fatal("nil ledger snapshot encoded")
	}
}
