// Package campaign is the adversarial campaign harness: it sweeps a
// randomized scenario matrix — arrival storms with hot-tenant skew,
// broker churn, calypso worker-fault floods, rebalance storms and
// multi-tenant saturation overload — against both admission planes (the
// monolithic qos.Arbitrator and the sharded fed.Arbitrator), asserting
// the paper's hard invariant (admitted ⇒ deadline met) and the fairness
// invariants of the saturation shedder on every run.
//
// Every run is a deterministic function of its seed: the per-run seed is
// derived from the campaign seed plus the scenario and plane names, each
// decision folds into an order-sensitive FNV digest, and re-running with
// the same seed reproduces the identical event sequence, digests and
// verdicts.  Every invariant breach is localized through slo.Replay and
// packaged as a replayable Artifact.
package campaign

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"milan/internal/core"
	"milan/internal/fed"
	"milan/internal/obs"
	"milan/internal/obs/slo"
	"milan/internal/qos"
	"milan/internal/resbroker"
	"milan/internal/sim"
	"milan/internal/workload"
)

// Plane names the admission plane (or runtime) a scenario runs against.
type Plane string

// Planes.
const (
	PlaneMonolith Plane = "monolith"
	PlaneSharded  Plane = "sharded"
	// PlaneRuntime marks scenarios that exercise the calypso execution
	// runtime rather than an admission plane.
	PlaneRuntime Plane = "runtime"
	// PlaneDurable is the WAL-backed admission plane (durable.Plane):
	// node-kill scenarios crash and recover it mid-storm.
	PlaneDurable Plane = "durable"
)

// Inject selects deliberate faults for campaign self-tests: each one
// breaks a specific subsystem's contract, and the resulting breach
// artifact must replay to that subsystem's fault verdict.
type Inject struct {
	// OverAdmission reports every admitted job to the auditor with a
	// deadline pulled in front of its reservation finish, so admission
	// appears to have reserved past the deadline (fault=planner).
	OverAdmission bool
	// CompletionDelay delays every completion past its reservation, so
	// the runtime breaks the contract it was granted (fault=runtime).
	CompletionDelay float64
	// ShedderBypass turns the fairness shedder off while leaving the
	// fairness invariant checks armed (fault=shedder).
	ShedderBypass bool
	// DroppedFsync arms a lying fsync in the node-kill scenario's
	// filesystem shortly before each kill: acknowledged grants ride on
	// syncs that never reached the platter, so recovery comes back
	// missing them (fault=durability).
	DroppedFsync bool
}

// Config parameterizes a campaign.
type Config struct {
	Procs  int // plane capacity (default 32)
	Shards int // sharded-plane partitions (default 4)
	ProbeK int // sharded-plane probe fan-out (default 2)
	Jobs   int // arrivals per run (default 300)
	// Seed is the campaign master seed; every run's seed derives from it
	// (default 1).
	Seed int64
	// Scenarios restricts the matrix to the named scenarios (empty = all).
	Scenarios []string
	// Inject enables deliberate faults (see Inject).
	Inject Inject
}

func (c Config) withDefaults() Config {
	if c.Procs < 1 {
		c.Procs = 32
	}
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.ProbeK < 1 {
		c.ProbeK = 2
	}
	if c.Jobs < 1 {
		c.Jobs = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Breach is one violated invariant, with the localized fault and the
// replayable artifact behind it (Artifact may be nil when the flight
// recorder's cooldown already captured an identical breach this run).
type Breach struct {
	Scenario  string
	Plane     Plane
	Invariant string
	Detail    string
	Fault     string
	Artifact  *Artifact
}

func (b Breach) String() string {
	return fmt.Sprintf("%s/%s: %s broken (fault=%s): %s", b.Scenario, b.Plane, b.Invariant, b.Fault, b.Detail)
}

// RunReport summarizes one scenario run on one plane.
type RunReport struct {
	Scenario string
	Plane    Plane
	Seed     int64
	Jobs     int
	Admitted int
	Rejected int // rejected by the arbitrator (capacity)
	Shed     int // refused by the fairness shedder
	// Digest folds every decision (order, verdict, grant shape) into one
	// order-sensitive FNV-1a value: two runs match iff their decision
	// sequences match.
	Digest   uint64
	Breaches []Breach
}

// Report is a full campaign: one RunReport per (scenario, plane) cell.
type Report struct {
	Seed int64
	Runs []RunReport
}

// BreachCount totals the breaches across every run.
func (r *Report) BreachCount() int {
	n := 0
	for _, run := range r.Runs {
		n += len(run.Breaches)
	}
	return n
}

// Breaches flattens every run's breaches.
func (r *Report) Breaches() []Breach {
	var out []Breach
	for _, run := range r.Runs {
		out = append(out, run.Breaches...)
	}
	return out
}

// deriveSeed maps (campaign seed, scenario, plane) to the run seed, so
// every cell of the matrix sees an independent but reproducible stream.
func deriveSeed(master int64, scenario, plane string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(master))
	h.Write(buf[:])
	h.Write([]byte(scenario))
	h.Write([]byte{0})
	h.Write([]byte(plane))
	s := int64(h.Sum64() >> 1) // keep it positive for rand.NewSource friendliness
	if s == 0 {
		s = 1
	}
	return s
}

// Run executes the campaign matrix and returns the full report.  It only
// errors on configuration mistakes; invariant breaches are reported, not
// returned as errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed}
	for _, sc := range Matrix() {
		if !selected(cfg.Scenarios, sc.Name) {
			continue
		}
		for _, plane := range sc.Planes {
			rr, err := runOne(cfg, sc, plane)
			if err != nil {
				return nil, fmt.Errorf("campaign: %s/%s: %w", sc.Name, plane, err)
			}
			rep.Runs = append(rep.Runs, rr)
		}
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("campaign: no scenario matches %v", cfg.Scenarios)
	}
	return rep, nil
}

func selected(names []string, name string) bool {
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// tenantAssigner stamps accounting identity onto arrivals;
// workload.TenantCycle and workload.SkewedTenants both satisfy it.
type tenantAssigner interface {
	Assign(id int) (tenant string, class int)
}

// runCtx carries one run's live state for scenario hooks and invariant
// checks.
type runCtx struct {
	cfg   Config
	sc    Scenario
	plane Plane
	rep   *RunReport

	engine *sim.Engine
	tracer *obs.Tracer
	rec    *slo.Recorder
	eng    *slo.Engine

	fed     *fed.Arbitrator
	rb      *fed.Rebalancer
	metrics *fed.Metrics
	broker  *resbroker.Broker
	shed    *qos.Shedder

	digest hash.Hash64
	now    float64

	shedDecisions []qos.ShedDecision
	classOffered  []int64
	classAdmitted []int64
	classArea     []float64
	tenantAlive   map[string]float64
	tenantPeak    map[string]float64
}

func (rc *runCtx) growClass(class int) {
	for len(rc.classOffered) <= class {
		rc.classOffered = append(rc.classOffered, 0)
		rc.classAdmitted = append(rc.classAdmitted, 0)
		rc.classArea = append(rc.classArea, 0)
	}
}

// breach records one violated invariant and cuts a flight snapshot of the
// given trigger kind for the artifact (unless one is supplied, or the
// recorder's cooldown already captured this kind).
func (rc *runCtx) breach(invariant, detail string, kind slo.TriggerKind, snap *slo.Snapshot) {
	if snap == nil {
		snap = rc.rec.Trigger(kind, 0, rc.now, detail)
	}
	b := Breach{
		Scenario:  rc.sc.Name,
		Plane:     rc.plane,
		Invariant: invariant,
		Detail:    detail,
		// The fault is a pure function of the trigger kind and snapshot,
		// so the verdict recorded here matches what any replay of the
		// artifact concludes.
		Fault: slo.Replay(&slo.Snapshot{Kind: kind}).Fault,
	}
	if snap != nil {
		b.Fault = slo.Replay(snap).Fault
		b.Artifact = &Artifact{
			Version:   artifactVersion,
			Scenario:  rc.sc.Name,
			Plane:     string(rc.plane),
			Seed:      rc.rep.Seed,
			Invariant: invariant,
			Detail:    detail,
			Fault:     b.Fault,
			Snapshot:  snap,
		}
	}
	rc.rep.Breaches = append(rc.rep.Breaches, b)
}

// hashDecision folds one admission decision into the run digest.
func (rc *runCtx) hashDecision(id int, verdict byte, job core.Job, g *qos.Grant) {
	var buf [8]byte
	w := rc.digest
	binary.LittleEndian.PutUint64(buf[:], uint64(id))
	w.Write(buf[:])
	w.Write([]byte{verdict})
	w.Write([]byte(job.Tenant))
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(job.Class)))
	w.Write(buf[:])
	if g != nil {
		for _, v := range []uint64{
			uint64(g.Chain),
			uint64(g.Shard),
			math.Float64bits(g.Placement.Start()),
			math.Float64bits(g.Placement.Finish()),
		} {
			binary.LittleEndian.PutUint64(buf[:], v)
			w.Write(buf[:])
		}
	}
}

func runOne(cfg Config, sc Scenario, plane Plane) (RunReport, error) {
	seed := deriveSeed(cfg.Seed, sc.Name, string(plane))
	if sc.Run != nil {
		return sc.Run(cfg, sc, seed)
	}

	rr := RunReport{Scenario: sc.Name, Plane: plane, Seed: seed, Jobs: cfg.Jobs}
	rc := &runCtx{
		cfg:         cfg,
		sc:          sc,
		plane:       plane,
		rep:         &rr,
		digest:      fnv.New64a(),
		tenantAlive: make(map[string]float64),
		tenantPeak:  make(map[string]float64),
	}

	engine := &sim.Engine{}
	tracer := obs.NewTracer(8192)
	tracer.SetClock(engine.Now)
	rec := slo.NewRecorder(8192, 2048)
	rec.Attach(tracer)
	// One snapshot per trigger kind per 25 clock units: a miss flood
	// yields a handful of replayable artifacts, not 16 copies of the
	// same rings.
	rec.SetCooldown(25)
	eng := slo.New(slo.Options{Recorder: rec, StormThreshold: sc.StormThreshold})
	rc.engine, rc.tracer, rc.rec, rc.eng = engine, tracer, rec, eng

	var neg qos.Negotiator
	var observe func(now float64)
	switch plane {
	case PlaneMonolith:
		arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: cfg.Procs})
		if err != nil {
			return rr, err
		}
		neg, observe = arb, arb.Observe
	case PlaneSharded:
		metrics := fed.NewMetrics(obs.NewRegistry())
		fa, err := fed.New(fed.Config{
			Procs:   cfg.Procs,
			Shards:  cfg.Shards,
			ProbeK:  cfg.ProbeK,
			Metrics: metrics,
			Tracer:  tracer,
		})
		if err != nil {
			return rr, err
		}
		rb := fa.Rebalancer()
		if sc.Job.X > rb.MinShardProcs {
			rb.MinShardProcs = sc.Job.X
		}
		moves := sc.RebalanceMoves
		if moves == 0 {
			moves = 1
		} else if moves < 0 {
			moves = 0 // Rebalance(0) = up to one move per shard
		}
		rc.fed, rc.rb, rc.metrics = fa, rb, metrics
		neg = fa
		observe = func(now float64) {
			fa.Observe(now)
			rb.Rebalance(moves)
			eng.ObserveRouter(now, metrics.CommitRaces.Value(), metrics.Migrations.Value())
		}
	default:
		return rr, fmt.Errorf("unknown plane %q", plane)
	}

	if sc.Shed != nil {
		shcfg := *sc.Shed
		shcfg.Capacity = cfg.Procs
		shcfg.Bypass = shcfg.Bypass || cfg.Inject.ShedderBypass
		shcfg.Observer = func(d qos.ShedDecision) { rc.shedDecisions = append(rc.shedDecisions, d) }
		shed, err := qos.NewShedder(neg, shcfg)
		if err != nil {
			return rr, err
		}
		rc.shed, neg = shed, shed
	}

	if sc.Churn != nil {
		if err := sc.Churn(rc); err != nil {
			return rr, err
		}
	}

	arrivals := sc.Arrivals(seed)
	var assign tenantAssigner
	if sc.Tenants != nil {
		assign = sc.Tenants()
	}

	var lastFinish, lastRelease float64
	var schedule func(id int)
	schedule = func(id int) {
		if id >= cfg.Jobs {
			return
		}
		engine.After(arrivals.Next(), "arrival", func() {
			now := engine.Now()
			lastRelease = now
			observe(now)
			rc.shed.Observe(now)
			job := sc.Job.Job(id, now, workload.Tunable)
			if assign != nil {
				job.Tenant, job.Class = assign.Assign(id)
			}
			class := job.Class
			if class < 0 {
				class = 0
			}
			rc.growClass(class)
			rc.classOffered[class]++
			tr := tracer.NewTrace()
			root := tracer.StartAt(tr, 0, "job.admit", obs.StageArrival, id, now)
			job.Trace, job.Span = uint64(tr), uint64(root.ID())

			g, err := qos.NewAgent(job).NegotiateWith(neg)
			if err == nil {
				rr.Admitted++
				chain := job.Chains[g.Chain]
				deadline := chain.Tasks[len(chain.Tasks)-1].Deadline
				reported := deadline
				if cfg.Inject.OverAdmission {
					// The planner-fault injection: audit against a
					// deadline the committed reservation already breaks.
					reported = g.Finish() - 1
				}
				root.SetAttr("chain", float64(g.Chain))
				root.EndAt(now)
				run := tracer.StartAt(tr, root.ID(), "job.run", obs.StageRun, id, g.Placement.Start())
				run.SetAttr("deadline", reported)
				run.SetAttr("reserved_finish", g.Finish())
				eng.JobAdmitted(id, job.Trace, now, 0, reported, g.Finish())
				eng.Tick(now)

				area := g.Placement.Area()
				rc.classAdmitted[class]++
				rc.classArea[class] += area
				rc.tenantAlive[job.Tenant] += area
				if rc.tenantAlive[job.Tenant] > rc.tenantPeak[job.Tenant] {
					rc.tenantPeak[job.Tenant] = rc.tenantAlive[job.Tenant]
				}
				rc.hashDecision(id, 'A', job, g)

				finish := g.Finish() + cfg.Inject.CompletionDelay
				if finish < now {
					finish = now
				}
				if finish > lastFinish {
					lastFinish = finish
				}
				jobID, tenant := id, job.Tenant
				ev := engine.At(finish, "complete", func() {
					// End the run span before the completion lands in the
					// SLO engine, so a triggered snapshot already holds
					// the span that convicts the stage.
					run.EndAt(finish)
					eng.JobCompleted(jobID, finish)
					rc.shed.JobCompleted(jobID, finish)
					rc.tenantAlive[tenant] -= area
				})
				ev.Trace = job.Trace
			} else {
				verdict := byte('R')
				if errors.Is(err, qos.ErrShed) {
					verdict = 'S'
					rr.Shed++
				} else {
					rr.Rejected++
				}
				root.SetErr("rejected")
				root.EndAt(now)
				eng.JobRejected(id, job.Trace, now, 0)
				eng.Tick(now)
				rc.hashDecision(id, verdict, job, nil)
			}
			schedule(id + 1)
		})
	}
	schedule(0)
	engine.Run()

	// Drain: advance past every reservation so capacity checks see the
	// quiescent plane.
	rc.now = math.Max(lastFinish, lastRelease) + 1
	observe(rc.now)

	rc.collectSLOBreaches()
	rc.planeChecks()
	if sc.Check != nil {
		sc.Check(rc)
	}
	rr.Digest = rc.digest.Sum64()
	return rr, nil
}

// collectSLOBreaches turns the SLO engine's verdict on the hard invariant
// into breaches, one per flight snapshot the recorder cut for it.
func (rc *runCtx) collectSLOBreaches() {
	rep := rc.eng.Report()
	if rep.Conformant() {
		return
	}
	detail := fmt.Sprintf("deadline misses=%d over-admissions=%d", rep.DeadlineMisses, rep.OverAdmissions)
	found := false
	for _, snap := range rc.rec.Snapshots() {
		if snap.Kind != slo.TriggerDeadlineMiss && snap.Kind != slo.TriggerOverAdmission {
			continue
		}
		found = true
		rc.breach("admitted=>deadline-met", detail, snap.Kind, snap)
	}
	if !found {
		// Violated but never snapshotted (ring churn): still a breach.
		rc.breach("admitted=>deadline-met", detail, slo.TriggerDeadlineMiss, nil)
	}
}

// planeChecks asserts the sharded plane's structural invariants after the
// drain: per-shard profile consistency (no over-admission at the
// scheduler level) and capacity conservation against the resource pool.
func (rc *runCtx) planeChecks() {
	if rc.fed == nil {
		return
	}
	if err := rc.fed.CheckInvariants(); err != nil {
		rc.breach("no-over-admission", err.Error(), slo.TriggerOverAdmission, nil)
	}
	want := rc.cfg.Procs
	if rc.broker != nil {
		// The pool churned; after the drain the plane must settle back
		// to exactly the broker's surviving capacity.
		want = rc.broker.TotalProcs()
		if _, err := rc.rb.SetTotalCapacity(want); err != nil {
			rc.breach("capacity-conservation",
				fmt.Sprintf("cannot settle to pool capacity %d: %v", want, err),
				slo.TriggerCapacityDrift, nil)
			return
		}
	}
	total := 0
	for i, p := range rc.fed.ShardProcs() {
		total += p
		if p < 1 {
			rc.breach("capacity-conservation",
				fmt.Sprintf("shard %d holds %d processors", i, p),
				slo.TriggerCapacityDrift, nil)
		}
	}
	if total != want {
		rc.breach("capacity-conservation",
			fmt.Sprintf("plane holds %d processors, pool holds %d", total, want),
			slo.TriggerCapacityDrift, nil)
	}
}
