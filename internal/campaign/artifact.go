package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"milan/internal/obs/slo"
)

// Artifact is one invariant breach persisted for replay: the campaign
// context (scenario, plane, the seed that reproduces the run), the broken
// invariant, the localized fault and — when the flight recorder caught
// the breach — the full slo.Snapshot, so `slo.Replay` reproduces the
// verdict anywhere from the file alone.
//
// The wire format is JSONL: one header line (the exported fields below),
// then the embedded snapshot's own JSONL lines verbatim.  A header-only
// artifact (no snapshot) is valid — some invariants, like capacity
// conservation, are convicted by construction rather than by spans.
type Artifact struct {
	Version   int    `json:"v"`
	Scenario  string `json:"scenario"`
	Plane     string `json:"plane"`
	Seed      int64  `json:"seed"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail,omitempty"`
	Fault     string `json:"fault,omitempty"`

	Snapshot *slo.Snapshot `json:"-"`
}

// artifactVersion is the JSONL format version written by WriteJSONL.
const artifactVersion = 1

// maxArtifactBytes bounds what DecodeArtifact will read (breach artifacts
// are a snapshot plus a header, not a database).
const maxArtifactBytes = 16 << 20

// WriteJSONL writes the artifact: the header line, then the snapshot's
// JSONL when one is attached.
func (a *Artifact) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("campaign: artifact header: %w", err)
	}
	if a.Snapshot != nil {
		if err := a.Snapshot.WriteJSONL(w); err != nil {
			return fmt.Errorf("campaign: artifact snapshot: %w", err)
		}
	}
	return nil
}

// DecodeArtifact reads a JSONL artifact back (the round trip of
// WriteJSONL): the first non-blank line is the header, everything after
// it decodes through slo.DecodeSnapshot.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxArtifactBytes))
	if err != nil {
		return nil, fmt.Errorf("campaign: artifact: %w", err)
	}
	// Skip leading blank lines to find the header.
	for {
		i := bytes.IndexByte(data, '\n')
		head := data
		if i >= 0 {
			head = data[:i]
		}
		if len(bytes.TrimSpace(head)) > 0 {
			break
		}
		if i < 0 {
			return nil, fmt.Errorf("campaign: empty artifact")
		}
		data = data[i+1:]
	}
	head, rest := data, []byte(nil)
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		head, rest = data[:i], data[i+1:]
	}
	var a Artifact
	if err := json.Unmarshal(head, &a); err != nil {
		return nil, fmt.Errorf("campaign: artifact header: %w", err)
	}
	if a.Version != artifactVersion {
		return nil, fmt.Errorf("campaign: artifact version %d (want %d)", a.Version, artifactVersion)
	}
	if a.Scenario == "" {
		return nil, fmt.Errorf("campaign: artifact missing scenario")
	}
	if a.Invariant == "" {
		return nil, fmt.Errorf("campaign: artifact missing invariant")
	}
	if len(bytes.TrimSpace(rest)) > 0 {
		snap, err := slo.DecodeSnapshot(bytes.NewReader(rest))
		if err != nil {
			return nil, err
		}
		a.Snapshot = snap
	}
	return &a, nil
}

// ReplayArtifact localizes the artifact's fault from its own contents:
// the embedded snapshot's verdict when one is attached, else the fault
// recorded by construction at breach time.
func ReplayArtifact(a *Artifact) slo.Verdict {
	if a.Snapshot != nil {
		return slo.Replay(a.Snapshot)
	}
	return slo.Verdict{Fault: a.Fault, Reason: a.Detail}
}
