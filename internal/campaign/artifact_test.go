package campaign

import (
	"bytes"
	"strings"
	"testing"

	"milan/internal/obs/slo"
)

func sampleArtifact(withSnap bool) *Artifact {
	a := &Artifact{
		Version:   artifactVersion,
		Scenario:  "saturation-overload",
		Plane:     string(PlaneMonolith),
		Seed:      1234,
		Invariant: "weighted-fair-shares",
		Detail:    "normalized service spread 100..900 exceeds 2x",
		Fault:     string(slo.FaultShedder),
	}
	if withSnap {
		rec := slo.NewRecorder(8, 8)
		a.Snapshot = rec.Trigger(slo.TriggerFairnessBreach, 0, 42, a.Detail)
	}
	return a
}

func TestArtifactRoundTrip(t *testing.T) {
	for _, withSnap := range []bool{true, false} {
		a := sampleArtifact(withSnap)
		var buf bytes.Buffer
		if err := a.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("withSnap=%t: %v", withSnap, err)
		}
		if got.Scenario != a.Scenario || got.Plane != a.Plane || got.Seed != a.Seed ||
			got.Invariant != a.Invariant || got.Detail != a.Detail || got.Fault != a.Fault {
			t.Fatalf("withSnap=%t: header drifted: %+v vs %+v", withSnap, got, a)
		}
		if withSnap != (got.Snapshot != nil) {
			t.Fatalf("withSnap=%t but decoded snapshot=%v", withSnap, got.Snapshot)
		}
		if v := ReplayArtifact(got); v.Fault != string(slo.FaultShedder) {
			t.Fatalf("withSnap=%t: replay fault %q", withSnap, v.Fault)
		}
	}
}

func TestDecodeArtifactRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"blank":         "\n\n\n",
		"not json":      "this is not json\n",
		"wrong version": `{"v":99,"scenario":"s","invariant":"i"}` + "\n",
		"no scenario":   `{"v":1,"invariant":"i"}` + "\n",
		"no invariant":  `{"v":1,"scenario":"s"}` + "\n",
		"bad snapshot":  `{"v":1,"scenario":"s","invariant":"i"}` + "\nnot a snapshot line\n",
	}
	for name, in := range cases {
		if _, err := DecodeArtifact(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzArtifactDecode asserts the decoder never panics and that anything
// it accepts re-encodes and decodes to the same header.
func FuzzArtifactDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleArtifact(true).WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := sampleArtifact(false).WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"v":1,"scenario":"s","invariant":"i"}` + "\n"))
	f.Add([]byte("\n\n{\"v\":1}\n"))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := a.WriteJSONL(&out); err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
		b, err := DecodeArtifact(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		if b.Scenario != a.Scenario || b.Invariant != a.Invariant || b.Seed != a.Seed {
			t.Fatalf("round trip drifted: %+v vs %+v", b, a)
		}
	})
}
