package campaign

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"milan/internal/durable"
	"milan/internal/durable/vfs"
	"milan/internal/obs/slo"
	"milan/internal/qos"
	"milan/internal/workload"
)

// nodeKillRun storms the WAL-backed durable plane and kills the node
// (vfs crash: every unsynced byte vanishes) three times mid-storm,
// recovering from the log each time.  The invariant is the durability
// contract: under SyncAlways on an honest disk, every grant acknowledged
// before a kill and still pending at recovery must come back as a
// committed grant.  The whole run — arrivals, decisions, kill points,
// recovery — is a pure function of the seed.
//
// With Inject.DroppedFsync the filesystem starts lying about fsync a few
// jobs before each kill, so the acked tail rides on syncs that never
// happened; recovery then comes back short and the run must convict the
// durability layer (TriggerDurabilityLoss -> fault=durability).
func nodeKillRun(cfg Config, sc Scenario, seed int64) (RunReport, error) {
	rr := RunReport{Scenario: sc.Name, Plane: PlaneDurable, Seed: seed, Jobs: cfg.Jobs}
	digest := fnv.New64a()
	ft := vfs.NewFault(vfs.NewMem())
	open := func() (*durable.Plane, durable.Recovered, error) {
		return durable.OpenPlane(durable.Config{
			FS: ft, Dir: "wal",
			Procs: cfg.Procs, Shards: cfg.Shards, ProbeK: cfg.ProbeK,
			Store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 48},
		})
	}
	p, _, err := open()
	if err != nil {
		return rr, err
	}

	kill := cfg.Jobs / 3
	if kill < 10 {
		kill = 10
	}
	const lieWindow = 5 // jobs before each kill with the lying fsync armed

	arrivals := sc.Arrivals(seed)
	acked := make(map[int]float64) // jobID -> reserved finish of acked grants
	var buf [8]byte
	hash := func(id int, verdict byte, g *qos.Grant) {
		binary.LittleEndian.PutUint64(buf[:], uint64(id))
		digest.Write(buf[:])
		digest.Write([]byte{verdict})
		if g != nil {
			for _, v := range []uint64{
				uint64(g.Chain),
				uint64(g.Shard),
				math.Float64bits(g.Placement.Start()),
				math.Float64bits(g.Placement.Finish()),
			} {
				binary.LittleEndian.PutUint64(buf[:], v)
				digest.Write(buf[:])
			}
		}
	}

	now := 0.0
	for id := 0; id < cfg.Jobs; id++ {
		now += arrivals.Next()
		if cfg.Inject.DroppedFsync && id%kill == kill-lieWindow {
			ft.SetSyncLie(true)
		}
		p.Observe(now)
		job := sc.Job.Job(id, now, workload.Tunable)
		g, nerr := p.Negotiate(job)
		switch {
		case nerr == nil:
			rr.Admitted++
			acked[id] = g.Finish()
			hash(id, 'A', g)
		case errors.Is(nerr, qos.ErrRejected):
			rr.Rejected++
			hash(id, 'R', nil)
		case errors.Is(nerr, qos.ErrShed):
			rr.Shed++
			hash(id, 'S', nil)
		default:
			return rr, fmt.Errorf("node-kill: job %d: %w", id, nerr)
		}

		if (id+1)%kill != 0 {
			continue
		}
		// Node kill: everything unsynced vanishes, then the plane recovers
		// from whatever the disk honestly persisted.
		ft.Crash()
		ft.SetSyncLie(false)
		p2, rec, oerr := open()
		if oerr != nil {
			return rr, fmt.Errorf("node-kill: recovery after job %d: %w", id, oerr)
		}
		p = p2
		binary.LittleEndian.PutUint64(buf[:], rec.State.LSN)
		digest.Write(buf[:])

		// Durability contract: every acked grant still pending at the
		// recovered clock must be in the committed set.
		have := make(map[int]bool, len(p.Grants()))
		for _, gr := range p.Grants() {
			have[gr.JobID] = true
		}
		var lost []int
		for jid, fin := range acked {
			if fin <= p.Now() {
				delete(acked, jid) // legitimately elapsed
				continue
			}
			if !have[jid] {
				lost = append(lost, jid)
			}
		}
		if len(lost) > 0 {
			sort.Ints(lost)
			durabilityLoss(&rr, seed, now, fmt.Sprintf(
				"kill after job %d: %d acked grants missing after replay (first %d, recovered lsn %d, torn=%t)",
				id, len(lost), lost[0], rec.State.LSN, rec.Torn))
			for _, jid := range lost {
				delete(acked, jid) // count each loss once
			}
		}
	}
	rr.Digest = digest.Sum64()
	return rr, nil
}

// durabilityLoss records a lost-committed-grant breach with a synthetic
// flight snapshot, so the artifact replays to the durability fault.
func durabilityLoss(rr *RunReport, seed int64, now float64, detail string) {
	rec := slo.NewRecorder(64, 64)
	snap := rec.Trigger(slo.TriggerDurabilityLoss, 0, now, detail)
	b := Breach{
		Scenario:  rr.Scenario,
		Plane:     rr.Plane,
		Invariant: "no-lost-committed-grant",
		Detail:    detail,
		Fault:     slo.Replay(snap).Fault,
	}
	b.Artifact = &Artifact{
		Version:   artifactVersion,
		Scenario:  rr.Scenario,
		Plane:     string(rr.Plane),
		Seed:      seed,
		Invariant: b.Invariant,
		Detail:    detail,
		Fault:     b.Fault,
		Snapshot:  snap,
	}
	rr.Breaches = append(rr.Breaches, b)
}
