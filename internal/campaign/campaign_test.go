package campaign

import (
	"bytes"
	"strings"
	"testing"

	"milan/internal/obs/slo"
)

// The benign matrix must be breach-free — admitted ⇒ deadline met, fair
// shares, capacity conserved — and bit-reproducible: the same seed must
// yield the same digests and verdicts on every cell.
func TestBenignMatrixDeterministicAndBreachFree(t *testing.T) {
	cfg := Config{Seed: 42, Jobs: 150}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Runs) == 0 {
		t.Fatal("empty matrix")
	}
	for _, rr := range first.Runs {
		for _, b := range rr.Breaches {
			t.Errorf("benign breach: %s", b)
		}
		if rr.Admitted == 0 {
			t.Errorf("%s/%s admitted nothing — the scenario exercised no admissions", rr.Scenario, rr.Plane)
		}
		if rr.Scenario == "saturation-overload" && rr.Shed == 0 {
			t.Errorf("%s/%s shed nothing — the fairness invariants were never exercised", rr.Scenario, rr.Plane)
		}
	}

	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Runs) != len(first.Runs) {
		t.Fatalf("matrix size changed between runs: %d vs %d", len(first.Runs), len(second.Runs))
	}
	for i, a := range first.Runs {
		b := second.Runs[i]
		if a.Scenario != b.Scenario || a.Plane != b.Plane || a.Seed != b.Seed {
			t.Fatalf("run %d identity drifted: %+v vs %+v", i, a, b)
		}
		if a.Digest != b.Digest {
			t.Errorf("%s/%s: digest %x != %x for the same seed — run is not reproducible",
				a.Scenario, a.Plane, a.Digest, b.Digest)
		}
		if a.Admitted != b.Admitted || a.Rejected != b.Rejected || a.Shed != b.Shed {
			t.Errorf("%s/%s: decision counts drifted: %+v vs %+v", a.Scenario, a.Plane, a, b)
		}
	}
}

// Different seeds must actually change the event sequence (otherwise the
// campaign is not randomized at all).
func TestSeedsDiversify(t *testing.T) {
	a, err := Run(Config{Seed: 1, Jobs: 80, Scenarios: []string{"saturation-overload"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2, Jobs: 80, Scenarios: []string{"saturation-overload"}})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Runs {
		if a.Runs[i].Digest == b.Runs[i].Digest {
			same++
		}
	}
	if same == len(a.Runs) {
		t.Fatal("all digests identical across different seeds")
	}
}

func TestScenarioFilterUnknown(t *testing.T) {
	if _, err := Run(Config{Scenarios: []string{"no-such-scenario"}}); err == nil {
		t.Fatal("unknown scenario filter must error")
	}
}

// findBreach returns the breaches matching the fault, failing the test
// when none carry an artifact.
func breachesWithFault(t *testing.T, rep *Report, fault string) []Breach {
	t.Helper()
	var out []Breach
	for _, b := range rep.Breaches() {
		if b.Fault == fault {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no breach localized to fault %q; got %v", fault, rep.Breaches())
	}
	return out
}

// roundTrip pushes a breach's artifact through the JSONL wire format and
// asserts the replayed verdict survives the trip.
func roundTrip(t *testing.T, b Breach, wantFault string) {
	t.Helper()
	if b.Artifact == nil {
		t.Fatalf("breach %s carries no artifact", b)
	}
	var buf bytes.Buffer
	if err := b.Artifact.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if decoded.Scenario != b.Artifact.Scenario || decoded.Seed != b.Artifact.Seed {
		t.Fatalf("artifact identity lost: %+v vs %+v", decoded, b.Artifact)
	}
	v := ReplayArtifact(decoded)
	if v.Fault != wantFault {
		t.Fatalf("replayed artifact localizes to %q, want %q (reason %q)", v.Fault, wantFault, v.Reason)
	}
}

// A deliberately injected over-admission (reservations past the reported
// deadline) must breach admitted⇒deadline-met and replay to the planner.
func TestInjectOverAdmissionLocalizesToPlanner(t *testing.T) {
	rep, err := Run(Config{
		Seed:      7,
		Jobs:      60,
		Scenarios: []string{"arrival-storm"},
		Inject:    Inject{OverAdmission: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range breachesWithFault(t, rep, string(slo.FaultPlanner)) {
		if b.Invariant != "admitted=>deadline-met" {
			continue
		}
		if b.Artifact == nil {
			continue
		}
		found = true
		roundTrip(t, b, string(slo.FaultPlanner))
	}
	if !found {
		t.Fatal("no planner breach with a replayable artifact")
	}
}

// Completions landing past their reservation must breach the same
// invariant but replay to the runtime — the plan was sound, execution
// broke it.
func TestInjectCompletionDelayLocalizesToRuntime(t *testing.T) {
	rep, err := Run(Config{
		Seed:      7,
		Jobs:      60,
		Scenarios: []string{"arrival-storm"},
		Inject:    Inject{CompletionDelay: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range breachesWithFault(t, rep, string(slo.FaultRuntime)) {
		if b.Artifact == nil {
			continue
		}
		found = true
		roundTrip(t, b, string(slo.FaultRuntime))
	}
	if !found {
		t.Fatal("no runtime breach with a replayable artifact")
	}
}

// Turning the shedder off under saturation must break the fairness
// invariants and replay to the shedder.
func TestInjectShedderBypassLocalizesToShedder(t *testing.T) {
	rep, err := Run(Config{
		Seed:      7,
		Jobs:      250,
		Scenarios: []string{"saturation-overload"},
		Inject:    Inject{ShedderBypass: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range breachesWithFault(t, rep, string(slo.FaultShedder)) {
		if b.Artifact != nil {
			roundTrip(t, b, string(slo.FaultShedder))
			return
		}
	}
	t.Fatal("no shedder breach carried an artifact")
}

// A lying fsync armed before each node kill must lose acked grants and
// replay to the durability layer.
func TestInjectDroppedFsyncLocalizesToDurability(t *testing.T) {
	rep, err := Run(Config{
		Seed:      7,
		Jobs:      150,
		Scenarios: []string{"node-kill"},
		Inject:    Inject{DroppedFsync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range breachesWithFault(t, rep, string(slo.FaultDurability)) {
		if b.Invariant != "no-lost-committed-grant" {
			t.Errorf("durability breach carries invariant %q", b.Invariant)
		}
		if b.Artifact != nil {
			roundTrip(t, b, string(slo.FaultDurability))
			return
		}
	}
	t.Fatal("no durability breach carried an artifact")
}

// The same seed must reproduce the same node-kill run, including the
// injected fsync loss: breach artifacts are replayable by seed.
func TestNodeKillInjectionDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Jobs: 120, Scenarios: []string{"node-kill"},
		Inject: Inject{DroppedFsync: true}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs[0].Digest != b.Runs[0].Digest {
		t.Fatalf("digest %x != %x for the same seed under injection", a.Runs[0].Digest, b.Runs[0].Digest)
	}
	if a.BreachCount() != b.BreachCount() {
		t.Fatalf("breach counts drifted: %d vs %d", a.BreachCount(), b.BreachCount())
	}
}

func TestBreachString(t *testing.T) {
	b := Breach{Scenario: "s", Plane: PlaneMonolith, Invariant: "i", Detail: "d", Fault: "planner"}
	s := b.String()
	for _, want := range []string{"s/monolith", "fault=planner", "i broken"} {
		if !strings.Contains(s, want) {
			t.Errorf("breach string %q missing %q", s, want)
		}
	}
}
