package campaign

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"milan/internal/calypso"
	"milan/internal/obs/slo"
	"milan/internal/qos"
	"milan/internal/resbroker"
	"milan/internal/workload"
)

// Scenario is one cell family of the campaign matrix: an adversarial
// traffic shape plus the planes it runs against and the extra invariants
// it arms.
type Scenario struct {
	Name   string
	Doc    string // one-line description for -list and the docs
	Planes []Plane

	// Job is the figure-8 task-system template every arrival instantiates.
	Job workload.FigureJob
	// Arrivals builds the scenario's inter-arrival process from the run
	// seed.
	Arrivals func(seed int64) workload.Arrivals
	// Tenants builds the accounting-identity assigner (nil = unattributed).
	Tenants func() tenantAssigner

	// Shed, when set, fronts the plane with a quota/weighted-fair shedder
	// (Capacity is overwritten with the campaign's proc count).
	Shed *qos.ShedConfig
	// Check runs extra invariant checks after the drain (fairness, etc.).
	Check func(rc *runCtx)
	// Churn, when set, wires adversarial infrastructure (broker floods)
	// into the run before arrivals start.
	Churn func(rc *runCtx) error

	// StormThreshold overrides the SLO engine's rebalance-storm trigger
	// (0 = the engine default).
	StormThreshold int64
	// RebalanceMoves bounds migrations per observation on the sharded
	// plane: 0 = one move, -1 = up to one per shard.
	RebalanceMoves int

	// Run replaces the standard admission loop entirely (runtime
	// scenarios).
	Run func(cfg Config, sc Scenario, seed int64) (RunReport, error)
}

// campaignJob is the shared task-system template: width 8, period 20,
// alpha 0.5, laxity 0.5 — area 320, so a 32-proc plane sustains one
// arrival per 10 time units and every scenario's overload factor reads
// directly off its arrival mean.
var campaignJob = workload.FigureJob{X: 8, T: 20, Alpha: 0.5, Laxity: 0.5}

// Matrix returns the campaign's scenario matrix.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name:   "arrival-storm",
			Doc:    "Poisson bursts with a hot-tenant skew (3 of 4 arrivals bill to one whale)",
			Planes: []Plane{PlaneMonolith, PlaneSharded},
			Job:    campaignJob,
			Arrivals: func(seed int64) workload.Arrivals {
				// Busy phases fire arrivals every ~1 unit (10x overload),
				// separated by ~40-unit idle gaps; ~12 arrivals per burst.
				return workload.NewBursty(1, 40, 12, seed)
			},
			Tenants: func() tenantAssigner {
				return &workload.SkewedTenants{
					Hot:     "whale",
					Cold:    []string{"minnow-a", "minnow-b", "minnow-c"},
					HotPer:  3,
					Per:     4,
					Classes: 3,
				}
			},
		},
		{
			Name:   "broker-churn",
			Doc:    "register/deregister floods resize the sharded plane mid-admission",
			Planes: []Plane{PlaneSharded},
			Job:    campaignJob,
			Arrivals: func(seed int64) workload.Arrivals {
				return workload.NewPoisson(8, seed)
			},
			Tenants: func() tenantAssigner {
				return &workload.TenantCycle{
					Tenants: []string{"ops", "batch"},
					Classes: 2,
				}
			},
			Churn: brokerChurn,
		},
		{
			Name:   "worker-faults",
			Doc:    "calypso fault floods (crash/transient/straggler) must not lose committed work",
			Planes: []Plane{PlaneRuntime},
			Job:    campaignJob,
			Run:    workerFaultRun,
		},
		{
			Name:   "node-kill",
			Doc:    "SIGKILL-equivalent crashes mid-storm; the durable plane must recover every acked grant",
			Planes: []Plane{PlaneDurable},
			Job:    campaignJob,
			Arrivals: func(seed int64) workload.Arrivals {
				return workload.NewBursty(1.2, 35, 10, seed)
			},
			Run: nodeKillRun,
		},
		{
			Name:   "rebalance-storm",
			Doc:    "bursty load drives aggressive migration; capacity must be conserved",
			Planes: []Plane{PlaneSharded},
			Job:    campaignJob,
			Arrivals: func(seed int64) workload.Arrivals {
				return workload.NewBursty(0.8, 60, 16, seed)
			},
			Tenants: func() tenantAssigner {
				return &workload.TenantCycle{
					Tenants: []string{"red", "blue", "green"},
					Classes: 1,
				}
			},
			// Up to one migration per shard per observation, and a
			// hair-trigger storm threshold: the point is to storm and
			// still conserve capacity (storm snapshots are informational;
			// only invariant breaches fail the run).
			RebalanceMoves: -1,
			StormThreshold: 4,
		},
		{
			Name:   "saturation-overload",
			Doc:    "3.3x sustained overload against quotas and weighted-fair shedding",
			Planes: []Plane{PlaneMonolith, PlaneSharded},
			Job:    campaignJob,
			Arrivals: func(seed int64) workload.Arrivals {
				return workload.NewPoisson(3, seed)
			},
			Tenants: func() tenantAssigner {
				return &workload.TenantCycle{
					Tenants: []string{"acme-a", "acme-b", "acme-c", "acme-d"},
					Classes: 3,
				}
			},
			Shed: &qos.ShedConfig{
				Horizon:             100,
				SaturationThreshold: 0.6,
				ClassWeights:        []float64{3, 2, 1},
				FairnessBurst:       400,
				StarvationWindow:    300,
				TenantQuota:         map[string]float64{"acme-d": 0.15},
			},
			Check: fairnessCheck,
		},
	}
}

// brokerChurn wires a resource broker under the sharded plane and floods
// it with register/withdraw pairs while admissions run.  The base pool
// mirrors the plane's capacity exactly (8 machines of Procs/8), so after
// every transient machine has withdrawn the plane must settle back to the
// configured capacity — any drift is a rebalancer fault.
func brokerChurn(rc *runCtx) error {
	if rc.rb == nil {
		return fmt.Errorf("broker churn needs the sharded plane")
	}
	broker := resbroker.New(nil)
	per := rc.cfg.Procs / 8
	if per < 1 {
		per = 1
	}
	for i := 0; i < 8; i++ {
		if err := broker.Register(resbroker.Resource{
			ID:    fmt.Sprintf("base-%d", i),
			Procs: per,
			Speed: 1,
		}); err != nil {
			return err
		}
	}
	// Attach after the base pool registers: the flood below churns
	// capacity around the base total, never below it.
	rc.rb.AttachBroker(broker, 0)
	rc.broker = broker
	for k := 0; k < 15; k++ {
		id := fmt.Sprintf("churn-%d", k)
		at := 20 + 40*float64(k)
		rc.engine.At(at, "broker-register", func() {
			_ = broker.Register(resbroker.Resource{ID: id, Procs: 8, Speed: 1})
		})
		rc.engine.At(at+15, "broker-withdraw", func() {
			_ = broker.Deregister(id)
		})
	}
	return nil
}

// workerFaultRun floods the calypso runtime with injected worker faults
// (permanent crashes, transient losses, stragglers) and asserts the
// eager-scheduling contract: every parallel step's committed results
// survive, bit-exact, no matter which executions die.  The run digest
// covers only the deterministic store contents — wall-clock metrics vary
// between executions, the committed values must not.
func workerFaultRun(cfg Config, sc Scenario, seed int64) (RunReport, error) {
	rr := RunReport{Scenario: sc.Name, Plane: PlaneRuntime, Seed: seed}
	digest := fnv.New64a()
	const rounds = 6
	const width = 32
	for r := 0; r < rounds; r++ {
		rt, err := calypso.New(calypso.Config{
			Workers: 8,
			Faults: &calypso.FaultPlan{
				CrashProb:     0.08,
				TransientProb: 0.15,
				SlowProb:      0.10,
				SlowDelay:     time.Millisecond,
				MaxCrashes:    6,
				Seed:          seed + int64(r),
			},
		})
		if err != nil {
			return rr, err
		}
		round := r
		stepErr := rt.Parallel(width, func(ctx *calypso.TaskCtx, w, n int) error {
			ctx.Write(fmt.Sprintf("r%d.k%d", round, n), n*n+round)
			return nil
		})
		rr.Jobs += width
		if stepErr != nil {
			maskingLoss(&rr, seed, float64(round),
				fmt.Sprintf("round %d: runtime gave up: %v", round, stepErr))
			continue
		}
		for n := 0; n < width; n++ {
			key := fmt.Sprintf("r%d.k%d", round, n)
			got, ok := calypso.GetAs[int](rt.Store(), key)
			want := n*n + round
			if !ok || got != want {
				maskingLoss(&rr, seed, float64(round),
					fmt.Sprintf("round %d: %s = %d,%t, want %d", round, key, got, ok, want))
				continue
			}
			rr.Admitted++
			var buf [8]byte
			digest.Write([]byte(key))
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(got)))
			digest.Write(buf[:])
		}
	}
	rr.Digest = digest.Sum64()
	return rr, nil
}

// maskingLoss records a lost-committed-work breach with a synthetic
// flight snapshot, so the artifact replays to the runtime fault.
func maskingLoss(rr *RunReport, seed int64, now float64, detail string) {
	rec := slo.NewRecorder(64, 64)
	snap := rec.Trigger(slo.TriggerMaskingLoss, 0, now, detail)
	b := Breach{
		Scenario:  rr.Scenario,
		Plane:     rr.Plane,
		Invariant: "no-lost-committed-work",
		Detail:    detail,
		Fault:     slo.Replay(snap).Fault,
	}
	b.Artifact = &Artifact{
		Version:   artifactVersion,
		Scenario:  rr.Scenario,
		Plane:     string(rr.Plane),
		Seed:      seed,
		Invariant: b.Invariant,
		Detail:    detail,
		Fault:     b.Fault,
		Snapshot:  snap,
	}
	rr.Breaches = append(rr.Breaches, b)
}

// fairnessCheck asserts the saturation shedder's contract after the
// drain: admitted service tracks the class weights, shedding lands on the
// lowest classes first, no tenant starves past the window, and no quota'd
// tenant exceeds its in-flight cap.
func fairnessCheck(rc *runCtx) {
	shcfg := rc.sc.Shed
	if shcfg == nil {
		return
	}
	weights := shcfg.ClassWeights
	capArea := float64(rc.cfg.Procs) * shcfg.Horizon

	// Weighted fair shares: the normalized service (admitted area per
	// unit weight) of the best- and worst-served classes must stay within
	// 2x once enough area has moved to swamp the fairness burst.
	totalArea := 0.0
	for _, a := range rc.classArea {
		totalArea += a
	}
	if totalArea > 5*shcfg.FairnessBurst && len(rc.classArea) >= len(weights) {
		minNS, maxNS := math.Inf(1), 0.0
		for c, w := range weights {
			ns := rc.classArea[c] / w
			minNS = math.Min(minNS, ns)
			maxNS = math.Max(maxNS, ns)
		}
		if maxNS > 2*minNS {
			rc.breach("weighted-fair-shares",
				fmt.Sprintf("normalized service spread %.0f..%.0f exceeds 2x (admitted areas %v, weights %v)",
					minNS, maxNS, rc.classArea, weights),
				slo.TriggerFairnessBreach, nil)
		}
	}

	// Shed-lowest-first: among classes with enough offered traffic, the
	// class-fairness shed fraction must not decrease with class index
	// (class 0 is highest priority).
	shedBy := make([]int64, len(rc.classOffered))
	for _, d := range rc.shedDecisions {
		if d.Shed && d.Reason == qos.ShedClassFairness && d.Key.Class < len(shedBy) {
			shedBy[d.Key.Class]++
		}
	}
	prev := -1.0
	for c := range shedBy {
		if rc.classOffered[c] < 30 {
			continue
		}
		frac := float64(shedBy[c]) / float64(rc.classOffered[c])
		if frac < prev-0.08 {
			rc.breach("shed-lowest-class-first",
				fmt.Sprintf("class %d shed fraction %.3f undercuts a higher class's %.3f", c, frac, prev),
				slo.TriggerFairnessBreach, nil)
		}
		if frac > prev {
			prev = frac
		}
	}

	// Bounded starvation: class fairness may defer an under-quota tenant,
	// never starve it past the window.
	for _, d := range rc.shedDecisions {
		if d.Shed && d.Reason == qos.ShedClassFairness && d.DeniedAge > shcfg.StarvationWindow+1e-9 {
			rc.breach("bounded-starvation",
				fmt.Sprintf("tenant %s class %d denied %.1f units (window %.1f)",
					d.Key.Tenant, d.Key.Class, d.DeniedAge, shcfg.StarvationWindow),
				slo.TriggerFairnessBreach, nil)
			break
		}
	}

	// Tenant quota: the observed in-flight peak may overshoot the quota
	// by at most the one job that reached it.
	for tenant, q := range shcfg.TenantQuota {
		limit := q*capArea + rc.sc.Job.Area() + 1e-9
		if peak := rc.tenantPeak[tenant]; peak > limit {
			rc.breach("tenant-quota",
				fmt.Sprintf("tenant %s in-flight peak %.0f exceeds quota bound %.0f", tenant, peak, limit),
				slo.TriggerFairnessBreach, nil)
		}
	}
}
