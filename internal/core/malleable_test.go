package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mall(name string, work float64, maxProcs int, deadline float64) Task {
	return Task{Name: name, Malleable: true, Work: work, MaxProcs: maxProcs, Deadline: deadline}
}

func TestMalleableUsesFullConcurrencyOnEmptyMachine(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	job := Job{ID: 1, Chains: []Chain{
		{Name: "c", Tasks: []Task{mall("m", 40, 8, 100)}},
	}}
	pl := mustAdmit(t, s, job)
	tp := pl.Tasks[0]
	if tp.Procs != 8 {
		t.Fatalf("procs = %d, want 8 (descending policy starts at max)", tp.Procs)
	}
	if !timeEq(tp.Finish-tp.Start, 5) {
		t.Fatalf("duration = %v, want 40/8 = 5", tp.Finish-tp.Start)
	}
}

func TestMalleableCappedByMachineSize(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	job := Job{ID: 1, Chains: []Chain{
		{Name: "c", Tasks: []Task{mall("m", 40, 16, 100)}},
	}}
	pl := mustAdmit(t, s, job)
	if pl.Tasks[0].Procs != 4 {
		t.Fatalf("procs = %d, want 4 (machine size)", pl.Tasks[0].Procs)
	}
	if !timeEq(pl.Tasks[0].Finish, 10) {
		t.Fatalf("finish = %v, want 40/4 = 10", pl.Tasks[0].Finish)
	}
}

func TestMalleableSqueezesIntoNarrowHole(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	// Occupy 6 procs on [0, 30): only 2 free until then.
	mustAdmit(t, s, Job{ID: 0, Chains: []Chain{
		{Name: "hog", Tasks: []Task{rect("h", 6, 30, 30)}},
	}})
	// Work 20, max 8, deadline 15: 8 procs can't fit before 30; 2 procs for
	// 10 time units fits at 0..10.
	job := Job{ID: 1, Chains: []Chain{
		{Name: "c", Tasks: []Task{mall("m", 20, 8, 15)}},
	}}
	pl := mustAdmit(t, s, job)
	tp := pl.Tasks[0]
	if tp.Procs != 2 || !timeEq(tp.Start, 0) || !timeEq(tp.Finish, 10) {
		t.Fatalf("placement = %+v, want 2 procs on [0,10)", tp)
	}
}

func TestMalleableDescendingVersusEarliestFinish(t *testing.T) {
	// Occupy 6 of 8 procs on [0, 4).  Work 16, max 8.
	//   p=8: starts at 4, duration 2, finish 6.
	//   p=2: starts at 0, duration 8, finish 8.
	// Descending takes p=8 (finish 6); earliest-finish also takes p=8 here.
	// Now tighten: occupy [0,7) instead. p=8: finish 7+2=9. p=2: finish 8.
	// Earliest-finish picks p=2, descending still picks p=8.
	build := func(policy MalleablePolicy) TaskPlacement {
		s := NewScheduler(8, 0, &Options{Malleable: policy})
		mustAdmit(t, s, Job{ID: 0, Chains: []Chain{
			{Name: "hog", Tasks: []Task{rect("h", 6, 7, 7)}},
		}})
		pl := mustAdmit(t, s, Job{ID: 1, Chains: []Chain{
			{Name: "c", Tasks: []Task{mall("m", 16, 8, 100)}},
		}})
		return pl.Tasks[0]
	}
	desc := build(MalleableDescending)
	if desc.Procs != 8 || !timeEq(desc.Finish, 9) {
		t.Errorf("descending placement = %+v, want 8 procs finishing at 9", desc)
	}
	ef := build(MalleableEarliestFinish)
	if ef.Procs != 2 || !timeEq(ef.Finish, 8) {
		t.Errorf("earliest-finish placement = %+v, want 2 procs finishing at 8", ef)
	}
}

func TestMalleableEarliestFinishTiesPreferMoreProcs(t *testing.T) {
	s := NewScheduler(8, 0, &Options{Malleable: MalleableEarliestFinish})
	// Empty machine: p=8 strictly earliest finish, but also check a case
	// with equal finishes: work such that several p finish together cannot
	// happen with linear speedup on an empty machine except p differing...
	// p=8 finish work/8 is strictly smallest, so max procs must win.
	pl := mustAdmit(t, s, Job{ID: 1, Chains: []Chain{
		{Name: "c", Tasks: []Task{mall("m", 24, 8, 100)}},
	}})
	if pl.Tasks[0].Procs != 8 {
		t.Fatalf("procs = %d, want 8", pl.Tasks[0].Procs)
	}
}

func TestMalleableRejectedWhenNoCountFits(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	mustAdmit(t, s, Job{ID: 0, Chains: []Chain{
		{Name: "hog", Tasks: []Task{rect("h", 4, 50, 50)}},
	}})
	// Deadline 40 with machine full until 50: even 1 proc cannot fit.
	_, err := s.Admit(Job{ID: 1, Chains: []Chain{
		{Name: "c", Tasks: []Task{mall("m", 4, 4, 40)}},
	}})
	if err == nil {
		t.Fatal("infeasible malleable job admitted")
	}
}

func TestBacktrackPlacerMatchesGreedyOnFeasibleChains(t *testing.T) {
	// For non-malleable chains, delaying a predecessor only shrinks the
	// successor's feasible window, so backtracking cannot beat greedy
	// earliest-start placement; the two placers must agree on feasible
	// chains.  (Backtracking only helps malleable tasks, where a retry may
	// pick a different processor count.)
	for _, policy := range []ChainPlacer{PlaceGreedy, PlaceBacktrack} {
		s := NewScheduler(4, 0, &Options{ChainPlacer: policy})
		mustAdmit(t, s, Job{ID: 0, Chains: []Chain{
			{Name: "hog", Tasks: []Task{rect("h", 2, 12, 30)}},
		}})
		pl := mustAdmit(t, s, Job{ID: 1, Chains: []Chain{
			chain2("c", 2, 5, 30, 4, 5, 40),
		}})
		if !timeEq(pl.Tasks[1].Start, 12) {
			t.Errorf("policy %v: task 2 start = %v, want 12", policy, pl.Tasks[1].Start)
		}
	}
}

func TestBacktrackBudgetExhaustionFailsCleanly(t *testing.T) {
	s := NewScheduler(2, 0, &Options{ChainPlacer: PlaceBacktrack, BacktrackBudget: 1})
	// Two tasks but budget 1: second task placement exceeds the budget.
	_, err := s.Admit(Job{ID: 1, Chains: []Chain{
		chain2("c", 1, 5, 100, 1, 5, 100),
	}})
	if err == nil {
		t.Fatal("admitted despite exhausted backtrack budget")
	}
}

// TestQuickMalleablePlacementsConserveWork: a malleable placement's area
// equals the task's work (linear speedup), its processor count respects the
// degree of concurrency, and deadlines hold.
func TestQuickMalleablePlacementsConserveWork(t *testing.T) {
	f := func(seed int64, policyRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := MalleableDescending
		if policyRaw {
			policy = MalleableEarliestFinish
		}
		capacity := 4 + rng.Intn(12)
		s := NewScheduler(capacity, 0, &Options{Malleable: policy})
		release := 0.0
		for i := 0; i < 60; i++ {
			release += rng.Float64() * 10
			work := 5 + rng.Float64()*50
			maxP := 1 + rng.Intn(2*capacity)
			deadline := release + work*(0.5+rng.Float64()*2)
			job := Job{ID: i, Release: release, Chains: []Chain{
				{Tasks: []Task{{Malleable: true, Work: work, MaxProcs: maxP, Deadline: deadline}}},
			}}
			pl, err := s.Admit(job)
			if err != nil {
				continue
			}
			tp := pl.Tasks[0]
			if tp.Procs < 1 || tp.Procs > maxP || tp.Procs > capacity {
				return false
			}
			if !timeEq(float64(tp.Procs)*(tp.Finish-tp.Start), work) {
				return false
			}
			if !timeLeq(tp.Finish, deadline) || timeLess(tp.Start, release) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEarliestFinishNeverLaterThanDescending: by construction the
// earliest-finish policy finishes each single-task job no later than the
// descending policy does on the same (job-by-job identical) schedule state.
func TestQuickEarliestFinishNeverLaterThanDescending(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 8
		hogProcs := 1 + rng.Intn(7)
		hogDur := 1 + rng.Float64()*20
		work := 5 + rng.Float64()*40
		maxP := 1 + rng.Intn(10)

		run := func(policy MalleablePolicy) (float64, bool) {
			s := NewScheduler(capacity, 0, &Options{Malleable: policy})
			mustReserveSched(s, hogProcs, 0, hogDur)
			pl, err := s.Admit(Job{ID: 1, Chains: []Chain{
				{Tasks: []Task{{Malleable: true, Work: work, MaxProcs: maxP, Deadline: 1e9}}},
			}})
			if err != nil {
				return 0, false
			}
			return pl.Finish(), true
		}
		fDesc, ok1 := run(MalleableDescending)
		fEF, ok2 := run(MalleableEarliestFinish)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || timeLeq(fEF, fDesc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func mustReserveSched(s *Scheduler, procs int, start, finish float64) {
	if err := s.prof.Reserve(procs, start, finish); err != nil {
		panic(err)
	}
}
