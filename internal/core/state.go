package core

import "fmt"

// Durable-state export and restore: the bit-exact, serializable view of a
// Profile and a Scheduler used by the durable admission plane
// (internal/durable) for snapshots and replay-on-open recovery.  Restore is
// required to reproduce the exported state exactly — the same float64 bits
// in every breakpoint and accumulator — so a recovered scheduler is
// indistinguishable from one that never crashed (the crashtest differential
// pins this).

// ProfileState is the complete observable state of a Profile: capacity, the
// piecewise-constant usage segments and the trimmed-busy accumulator.  The
// segment-tree index is deliberately absent — it is derived state, rebuilt
// lazily after restore.
type ProfileState struct {
	Capacity    int
	Times       []float64
	Used        []int
	TrimmedBusy float64
}

// State exports the profile's state.  The returned slices are copies.
func (p *Profile) State() ProfileState {
	return ProfileState{
		Capacity:    p.capacity,
		Times:       append([]float64(nil), p.times...),
		Used:        append([]int(nil), p.used...),
		TrimmedBusy: p.trimmedBusy,
	}
}

// ProfileFromState rebuilds a profile from an exported state, validating
// the structural invariants (a corrupt or hand-built state must fail here,
// never poison a scheduler).  The returned profile is unindexed; callers
// attach an index per their own policy.
func ProfileFromState(st ProfileState) (*Profile, error) {
	if st.Capacity < 1 {
		return nil, fmt.Errorf("core: profile state capacity %d (must be >= 1)", st.Capacity)
	}
	p := &Profile{
		capacity:    st.Capacity,
		times:       append([]float64(nil), st.Times...),
		used:        append([]int(nil), st.Used...),
		trimmedBusy: st.TrimmedBusy,
	}
	if err := p.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: profile state invalid: %w", err)
	}
	return p, nil
}

// SchedulerState is the complete committed state of a Scheduler: its
// capacity profile plus the admission counters.  Policy (Options) is not
// state — a restored scheduler keeps the options it was constructed with.
type SchedulerState struct {
	Profile ProfileState
	Stats   Stats
}

// ExportState exports the scheduler's committed state.
func (s *Scheduler) ExportState() SchedulerState {
	return SchedulerState{Profile: s.prof.State(), Stats: s.Stats()}
}

// RestoreState replaces the scheduler's profile and counters with an
// exported state, bit-exactly.  The scheduler keeps its configured options;
// the profile index follows the option policy, not the exporter's.
func (s *Scheduler) RestoreState(st SchedulerState) error {
	p, err := ProfileFromState(st.Profile)
	if err != nil {
		return err
	}
	if s.opts.ProfileIndex != ProfileIndexOff {
		p.EnableIndex()
	}
	s.prof = p
	s.stat = st.Stats
	s.stat.TunableChosen = append([]int(nil), st.Stats.TunableChosen...)
	return nil
}

// ReplayCommit re-applies a committed placement during durable-log replay:
// the reservation plus the admission counters Commit would have recorded.
// It never re-plans and never fires hooks or observers — replay reproduces
// decisions, it does not make them.
func (s *Scheduler) ReplayCommit(pl *Placement, quality float64, tunable bool) error {
	for i, tp := range pl.Tasks {
		if err := s.prof.Reserve(tp.Procs, tp.Start, tp.Finish); err != nil {
			return fmt.Errorf("core: replay commit task %d of job %d: %w", i, pl.JobID, err)
		}
	}
	s.stat.Admitted++
	s.stat.ReservedArea += pl.Area()
	s.stat.QualitySum += quality
	if tunable {
		for len(s.stat.TunableChosen) <= pl.Chain {
			s.stat.TunableChosen = append(s.stat.TunableChosen, 0)
		}
		s.stat.TunableChosen[pl.Chain]++
	}
	return nil
}

// ReplayRejected re-applies a logged rejection during durable-log replay:
// the rejection counter alone, with no hooks (the planning-work counters a
// live rejection accumulated are diagnostics, carried only by snapshots).
func (s *Scheduler) ReplayRejected() { s.stat.Rejected++ }
