package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func vcap() VectorCapacity {
	return VectorCapacity{Names: []string{"procs", "memMB"}, Size: []int{8, 1024}}
}

func vtask(p, m int, dur, dl float64) VectorTask {
	return VectorTask{Req: []int{p, m}, Duration: dur, Deadline: dl}
}

func TestVectorCapacityValidate(t *testing.T) {
	if err := vcap().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []VectorCapacity{
		{},
		{Names: []string{"a"}, Size: []int{1, 2}},
		{Names: []string{"a"}, Size: []int{0}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVectorJobValidate(t *testing.T) {
	cap := vcap()
	good := VectorJob{ID: 1, Chains: []VectorChain{{Tasks: []VectorTask{vtask(4, 512, 10, 100)}}}}
	if err := good.Validate(cap); err != nil {
		t.Fatal(err)
	}
	cases := []VectorJob{
		{ID: 1},
		{ID: 1, Chains: []VectorChain{{}}},
		{ID: 1, Chains: []VectorChain{{Tasks: []VectorTask{{Req: []int{4}, Duration: 1, Deadline: 10}}}}},
		{ID: 1, Chains: []VectorChain{{Tasks: []VectorTask{vtask(9, 10, 1, 10)}}}},   // over procs cap
		{ID: 1, Chains: []VectorChain{{Tasks: []VectorTask{vtask(1, 2048, 1, 10)}}}}, // over mem cap
		{ID: 1, Chains: []VectorChain{{Tasks: []VectorTask{vtask(0, 0, 1, 10)}}}},    // requests nothing
		{ID: 1, Chains: []VectorChain{{Tasks: []VectorTask{vtask(1, 1, 0, 10)}}}},    // zero duration
		{ID: 1, Release: 50, Chains: []VectorChain{{Tasks: []VectorTask{vtask(1, 1, 1, 10)}}}},
	}
	for i, j := range cases {
		if j.Validate(cap) == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVectorEarliestFitRequiresAllDimensions(t *testing.T) {
	vp, err := NewVectorProfile(vcap(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Memory is the bottleneck: procs free everywhere, 900 MB held [0, 20).
	if err := vp.Reserve([]int{1, 900}, 0, 20); err != nil {
		t.Fatal(err)
	}
	// 4 procs + 200 MB: memory forces start 20 even though procs are free.
	s, ok := vp.EarliestFit([]int{4, 200}, 5, 0, Inf)
	if !ok || !timeEq(s, 20) {
		t.Fatalf("fit = (%v, %v), want (20, true)", s, ok)
	}
	// 4 procs + 100 MB fits immediately.
	s, ok = vp.EarliestFit([]int{4, 100}, 5, 0, Inf)
	if !ok || !timeEq(s, 0) {
		t.Fatalf("fit = (%v, %v), want (0, true)", s, ok)
	}
	// Zero-request dimensions are unconstrained.
	s, ok = vp.EarliestFit([]int{0, 200}, 5, 0, Inf)
	if !ok || !timeEq(s, 20) {
		t.Fatalf("mem-only fit = (%v, %v), want (20, true)", s, ok)
	}
}

func TestVectorEarliestFitAlternatingBottlenecks(t *testing.T) {
	vp, _ := NewVectorProfile(vcap(), 0)
	// Procs busy [0,10), memory busy [10,25): a joint request must wait
	// for 25 — the fixed-point search must hop dimensions.
	mustVReserve(t, vp, []int{8, 1}, 0, 10)
	mustVReserve(t, vp, []int{1, 1024}, 10, 25)
	s, ok := vp.EarliestFit([]int{2, 128}, 5, 0, Inf)
	if !ok || !timeEq(s, 25) {
		t.Fatalf("fit = (%v, %v), want (25, true)", s, ok)
	}
}

func TestVectorEarliestFitDeadline(t *testing.T) {
	vp, _ := NewVectorProfile(vcap(), 0)
	mustVReserve(t, vp, []int{8, 1024}, 0, 50)
	if _, ok := vp.EarliestFit([]int{1, 1}, 10, 0, 55); ok {
		t.Fatal("met impossible deadline")
	}
	if s, ok := vp.EarliestFit([]int{1, 1}, 10, 0, 60); !ok || !timeEq(s, 50) {
		t.Fatalf("fit = (%v, %v)", s, ok)
	}
}

func TestVectorSchedulerAdmitTunable(t *testing.T) {
	s, err := NewVectorScheduler(vcap(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hold most of memory for a while.
	if err := s.prof.Reserve([]int{0, 900}, 0, 40); err != nil {
		t.Fatal(err)
	}
	// Chain A: fast but memory-hungry; chain B: slower, lean.  A cannot
	// start before 40, so B (finish 30) wins.
	job := VectorJob{ID: 1, Chains: []VectorChain{
		{Name: "hungry", Tasks: []VectorTask{vtask(2, 512, 10, 100)}},
		{Name: "lean", Tasks: []VectorTask{vtask(4, 64, 30, 100)}},
	}}
	pl, err := s.Admit(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chain != 1 {
		t.Fatalf("chose chain %d, want 1 (lean finishes first)", pl.Chain)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.TunableChosen[1] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A memory-infeasible job is rejected.
	_, err = s.Admit(VectorJob{ID: 2, Chains: []VectorChain{
		{Tasks: []VectorTask{vtask(1, 1000, 10, 30)}},
	}})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

func TestVectorSchedulerChainSequencing(t *testing.T) {
	s, _ := NewVectorScheduler(vcap(), 0)
	job := VectorJob{ID: 1, Chains: []VectorChain{{
		Tasks: []VectorTask{
			vtask(8, 100, 10, 100),
			vtask(2, 800, 5, 100),
		},
	}}}
	pl, err := s.Admit(job)
	if err != nil {
		t.Fatal(err)
	}
	if timeLess(pl.Tasks[1].Start, pl.Tasks[0].Finish) {
		t.Fatalf("precedence violated: %+v", pl.Tasks)
	}
}

// TestQuickVectorNeverOvercommitsAnyDimension: random admissions keep every
// dimension within capacity (checked by each dimension's own invariants).
func TestQuickVectorNeverOvercommitsAnyDimension(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := VectorCapacity{Names: []string{"p", "m", "bw"}, Size: []int{8, 64, 16}}
		s, err := NewVectorScheduler(cap, 0)
		if err != nil {
			return false
		}
		release := 0.0
		for i := 0; i < 10+int(nRaw%40); i++ {
			release += rng.Float64() * 10
			dur := 1 + rng.Float64()*10
			job := VectorJob{ID: i, Release: release, Chains: []VectorChain{{
				Tasks: []VectorTask{{
					Req:      []int{rng.Intn(9), rng.Intn(65), rng.Intn(17)},
					Duration: dur,
					Deadline: release + dur*(1+rng.Float64()*3),
				}},
			}}}
			if job.Validate(cap) != nil {
				continue
			}
			pl, err := s.Admit(job)
			if errors.Is(err, ErrRejected) {
				continue
			}
			if err != nil {
				return false
			}
			chain := job.Chains[pl.Chain]
			for k, tp := range pl.Tasks {
				if !timeLeq(tp.Finish, chain.Tasks[k].Deadline) || timeLess(tp.Start, release) {
					return false
				}
			}
		}
		for _, p := range s.prof.dims {
			p.checkInvariants()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func mustVReserve(t *testing.T, vp *VectorProfile, req []int, start, finish float64) {
	t.Helper()
	if err := vp.Reserve(req, start, finish); err != nil {
		t.Fatal(err)
	}
}
