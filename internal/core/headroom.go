package core

// Headroom forecasting: the "largest admissible job" signal.
//
// A tunability-aware admission plane should be able to tell QoS agents
// ahead of time what it can still take.  Headroom summarizes the free
// processor-time plane over a sliding horizon as the frontier of feasible
// demand rectangles: the widest placeable job, the longest placeable job,
// and the largest width×duration rectangle (with the maximal hole
// realizing it).  It is derived from MaximalHoles, so with the profile
// index attached one refresh costs O(n log n) in the number of committed
// reservations.

// Headroom is the admissibility frontier of one machine over a window.
type Headroom struct {
	// From/Horizon delimit the window [From, From+Horizon) the signal
	// describes.
	From    float64 `json:"from"`
	Horizon float64 `json:"horizon"`
	// MaxProcs is the widest task placeable right now for any positive
	// duration within the window.
	MaxProcs int `json:"max_procs"`
	// MaxDuration is the longest single stretch (within the window) with
	// at least one processor free.
	MaxDuration float64 `json:"max_duration"`
	// MaxArea is the largest width×duration rectangle that fits inside
	// one hole within the window — an upper bound on the area of any
	// single rigid task admissible without queueing behind reservations.
	MaxArea float64 `json:"max_area"`
	// BestHole is the hole (clipped to the window) realizing MaxArea.
	BestHole Hole `json:"best_hole"`
}

// Fits reports whether a procs×duration demand rectangle lies inside the
// advertised frontier: some hole in the window offered at least procs
// processors for at least duration.  It is the forecast the SLO engine
// audits — a rejection of a demand the frontier claimed to fit is a
// forecast miss.
func (h Headroom) Fits(procs int, duration float64) bool {
	if procs <= 0 || duration <= 0 {
		return false
	}
	// The frontier retains only the best rectangle per axis, so be
	// conservative: claim a fit only if the best-area hole itself covers
	// the demand (exactness per-axis would need the full hole set).
	return procs <= h.BestHole.Procs && timeLeq(duration, h.BestHole.End-h.BestHole.Start)
}

// HeadroomOf computes the admissibility frontier of the profile over
// [from, from+horizon).  A non-positive horizon yields a zero frontier.
func HeadroomOf(p *Profile, from, horizon float64) Headroom {
	hr := Headroom{From: from, Horizon: horizon}
	if horizon <= 0 {
		return hr
	}
	end := from + horizon
	for _, h := range p.MaximalHoles(from) {
		s0 := maxTime(h.Start, from)
		e0 := minTime(h.End, end)
		if !timeLess(s0, e0) {
			continue
		}
		if h.Procs > hr.MaxProcs {
			hr.MaxProcs = h.Procs
		}
		d := e0 - s0
		if d > hr.MaxDuration {
			hr.MaxDuration = d
		}
		if area := float64(h.Procs) * d; area > hr.MaxArea {
			hr.MaxArea = area
			hr.BestHole = Hole{Start: s0, End: e0, Procs: h.Procs}
		}
	}
	return hr
}

// Merge folds another machine's frontier into this one, producing the
// plane-wide frontier of a sharded admission plane: a job is admissible
// somewhere if it is admissible on some shard, so every axis merges by
// maximum (areas are per-hole and never summed across shards — shards
// cannot co-schedule one rigid task).
func (h Headroom) Merge(o Headroom) Headroom {
	out := h
	if o.From < out.From || out.Horizon == 0 {
		out.From = o.From
	}
	if o.Horizon > out.Horizon {
		out.Horizon = o.Horizon
	}
	if o.MaxProcs > out.MaxProcs {
		out.MaxProcs = o.MaxProcs
	}
	if o.MaxDuration > out.MaxDuration {
		out.MaxDuration = o.MaxDuration
	}
	if o.MaxArea > out.MaxArea {
		out.MaxArea = o.MaxArea
		out.BestHole = o.BestHole
	}
	return out
}

// Headroom returns the scheduler's admissibility frontier over
// [now, now+horizon), computed against the live profile (read-only).
func (s *Scheduler) Headroom(now, horizon float64) Headroom {
	return HeadroomOf(s.prof, maxTime(now, s.prof.Origin()), horizon)
}
