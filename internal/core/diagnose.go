package core

// Rejection explainer.
//
// The arbitrator tries every candidate chain of a tunable job and silently
// discards the ones that do not fit (Section 5.2).  When a plan fails, the
// structures below explain the failure per candidate chain: which task
// could not be placed, which constraint bound it (machine width, intrinsic
// deadline, or competing reservations), the best near-miss hole the
// processor-time plane offered, and a minimal slack vector — extra
// processors, extra deadline, or reduced width — that would have made the
// chain schedulable.  Every slack value is verified by replaying the
// corresponding WhatIfDelta on a fork of the live schedule before it is
// reported, so a diagnosis's suggestion is admissible by construction
// (the closed-loop property the forensics tests pin).
//
// Diagnosis is strictly opt-in: Options.Diagnosis is nil by default and
// the planning hot path pays nothing — not even an allocation — until a
// plan actually fails with a diagnosis sink installed.

// Constraint names the binding constraint that stopped a task placement.
type Constraint string

const (
	// ConstraintWidth: the task demands more simultaneous processors than
	// the machine has; no schedule on this machine can place it.
	ConstraintWidth Constraint = "width"
	// ConstraintDeadline: the task's window is too short even on an idle
	// machine (its deadline binds intrinsically, independent of load).
	ConstraintDeadline Constraint = "deadline"
	// ConstraintCapacity: the task fits the machine and its window, but
	// competing reservations leave no hole wide enough in time.
	ConstraintCapacity Constraint = "capacity"
)

// SlackVector reports, per relaxation axis, the minimal relaxation that
// makes the chain schedulable on its own.  A zero value on an axis means
// that axis alone cannot admit the chain (e.g. no deadline extension
// helps a job wider than the machine).  Every non-zero value has been
// verified by replay on a fork of the live schedule.
type SlackVector struct {
	// ExtraProcs is the minimal machine growth (processors) that admits
	// the chain with deadlines unchanged.
	ExtraProcs int `json:"extra_procs,omitempty"`
	// ExtraDeadline is the minimal uniform deadline extension (applied to
	// every task of the chain) that admits it on the current machine.
	ExtraDeadline float64 `json:"extra_deadline,omitempty"`
	// ReducedWidth is the minimal width reduction of the chain's tasks
	// (via a constant-area width cap at FailedTask's Procs-ReducedWidth)
	// that admits the chain on the current machine.
	ReducedWidth int `json:"reduced_width,omitempty"`
}

// ChainDiagnosis explains why one candidate chain failed to place.
type ChainDiagnosis struct {
	Chain     int    `json:"chain"`
	ChainName string `json:"chain_name,omitempty"`
	// Schedulable is true when the greedy replay placed the chain after
	// all (possible when Diagnose is invoked on an admittable job).
	Schedulable bool `json:"schedulable,omitempty"`
	// FailedTask is the index of the first task the greedy replay could
	// not place (-1 when Schedulable).
	FailedTask int    `json:"failed_task"`
	TaskName   string `json:"task_name,omitempty"`
	Constraint Constraint `json:"constraint,omitempty"`
	// WantProcs/WantDuration are the failed task's demand rectangle (for
	// malleable tasks: the narrowest duration at full concurrency).
	WantProcs    int     `json:"want_procs,omitempty"`
	WantDuration float64 `json:"want_duration,omitempty"`
	// EarliestStart is where the failed task's search began (its
	// predecessor's finish) and Deadline its absolute deadline.
	EarliestStart float64 `json:"earliest_start,omitempty"`
	Deadline      float64 `json:"deadline,omitempty"`
	// AvailProcs is the best achievable width over any window of
	// WantDuration within [EarliestStart, Deadline] — the near-miss: the
	// task needed WantProcs and the plane offered AvailProcs.
	AvailProcs int `json:"avail_procs"`
	// BestHole is the maximal hole realizing AvailProcs (clipped to the
	// task's window; zero when no hole intersects the window at all).
	BestHole Hole `json:"best_hole"`
	// Slack is the per-axis minimal relaxation admitting this chain.
	Slack SlackVector `json:"slack"`
}

// PlanDiagnosis explains one failed planning pass: every candidate chain's
// failure analysis plus one replay-verified suggestion that flips the job
// to admitted.
type PlanDiagnosis struct {
	JobID   int     `json:"job"`
	JobName string  `json:"job_name,omitempty"`
	Release float64 `json:"release"`
	// Shard is filled by the federated router (-1 for a monolith plane).
	Shard int `json:"shard,omitempty"`
	// Capacity and PeakUsed snapshot the machine at decision time.
	Capacity int `json:"capacity"`
	PeakUsed int `json:"peak_used"`
	Chains   []ChainDiagnosis `json:"chains"`
	// Suggestion is the cheapest verified WhatIfDelta that admits the job
	// (preferring deadline slack over width reduction over machine
	// growth).  It is nil only for jobs no finite relaxation can admit.
	Suggestion *WhatIfDelta `json:"suggestion,omitempty"`
}

// maxWidthScan bounds the linear width-cap search per chain.
const maxWidthScan = 64

// Diagnose explains why the job is (or would be) rejected: a greedy
// failure analysis per candidate chain plus verified minimal slack.  It
// never mutates the scheduler — all replays run on forks of the profile —
// and it fires no hooks and accumulates no statistics.  Plan calls it
// automatically on failure when Options.Diagnosis is installed; it is
// also safe to call directly (e.g. from an operator's /explain request).
func (s *Scheduler) Diagnose(job Job) *PlanDiagnosis {
	d := &PlanDiagnosis{
		JobID:    job.ID,
		JobName:  job.Name,
		Release:  job.Release,
		Shard:    -1,
		Capacity: s.prof.Capacity(),
		PeakUsed: s.prof.PeakUsed(),
	}
	d.Chains = make([]ChainDiagnosis, len(job.Chains))
	for ci := range job.Chains {
		d.Chains[ci] = s.diagnoseChain(job, ci)
	}
	d.Suggestion = s.suggest(job, d.Chains)
	return d
}

// minDuration is the task's shortest possible duration: its fixed
// duration when non-malleable, its duration at full concurrency when
// malleable (capped at the machine width only when cap > 0).
func minDuration(t Task, machine int) float64 {
	if !t.Malleable {
		return t.Duration
	}
	p := t.MaxProcs
	if machine > 0 && p > machine {
		p = machine
	}
	if p < 1 {
		p = 1
	}
	return t.Work / float64(p)
}

// taskWidth is the task's maximum simultaneous processor demand.
func taskWidth(t Task) int {
	if t.Malleable {
		return t.MaxProcs
	}
	return t.Procs
}

// diagnoseChain replays one chain greedily on a fork, identifies the
// first failing task and its binding constraint, probes the near-miss
// hole, and computes the verified per-axis slack.
func (s *Scheduler) diagnoseChain(job Job, ci int) ChainDiagnosis {
	chain := job.Chains[ci]
	cd := ChainDiagnosis{Chain: ci, ChainName: chain.Name, FailedTask: -1}
	f := s.Fork() // probing never touches the live profile or stats
	cap := f.prof.Capacity()

	est := job.Release
	idleFinish := job.Release // back-to-back finish on an idle machine
	var failed Task
	for i, t := range chain.Tasks {
		idleFinish += minDuration(t, cap)
		tp, ok := f.placeTask(t, i, est)
		if !ok {
			cd.FailedTask = i
			failed = t
			break
		}
		est = tp.Finish
	}
	if cd.FailedTask < 0 {
		cd.Schedulable = true
		return cd
	}

	cd.TaskName = failed.Name
	cd.WantProcs = taskWidth(failed)
	cd.WantDuration = minDuration(failed, cap)
	cd.EarliestStart = est
	cd.Deadline = failed.Deadline

	// Binding constraint: width beats deadline beats capacity.
	switch {
	case !failed.Malleable && failed.Procs > cap:
		cd.Constraint = ConstraintWidth
	case !timeLeq(idleFinish, failed.Deadline):
		// Even an idle machine, running every predecessor at its minimal
		// duration, blows the deadline: the window is intrinsically short.
		cd.Constraint = ConstraintDeadline
	default:
		cd.Constraint = ConstraintCapacity
	}

	cd.AvailProcs, cd.BestHole = nearMiss(f.prof, est, failed.Deadline, cd.WantDuration)
	cd.Slack = s.chainSlack(job, ci, failed)
	return cd
}

// nearMiss returns the best achievable width W over any window of the
// given duration within [est, deadline], and the maximal hole realizing
// it (clipped to the window so the record is JSON-finite).  By the
// maximal-rectangle extension argument, scanning MaximalHoles(est) is
// exact: any feasible (start, width) pair lies inside some maximal hole
// at least as wide.
func nearMiss(p *Profile, est, deadline, duration float64) (int, Hole) {
	holes := p.MaximalHoles(est)
	bestW := 0
	var best Hole
	var widest Hole // fallback: widest hole intersecting the window at all
	for _, h := range holes {
		s0 := maxTime(h.Start, est)
		e0 := minTime(h.End, deadline)
		if !timeLess(s0, e0) {
			continue
		}
		if h.Procs > widest.Procs {
			widest = Hole{Start: s0, End: e0, Procs: h.Procs}
		}
		if timeLeq(s0+duration, e0) && h.Procs > bestW {
			bestW = h.Procs
			best = Hole{Start: s0, End: e0, Procs: h.Procs}
		}
	}
	if bestW == 0 {
		// No hole long enough for the duration: report the widest
		// too-short hole as the near-miss.
		return 0, widest
	}
	return bestW, best
}

// verify replays the delta via the public WhatIf path and reports whether
// it admits the job.
func (s *Scheduler) verify(job Job, d WhatIfDelta) bool {
	_, ok := s.WhatIf(job, d)
	return ok
}

// chainSlack computes the verified minimal relaxation per axis for one
// chain.
func (s *Scheduler) chainSlack(job Job, ci int, failed Task) SlackVector {
	var sl SlackVector
	sl.ExtraDeadline = s.deadlineSlack(job, ci, 0)
	sl.ExtraProcs = s.procSlack(job, ci)
	sl.ReducedWidth = s.widthSlack(job, ci, failed)
	return sl
}

// deadlineSlack returns the minimal uniform deadline extension admitting
// chain ci on a machine grown by extraProcs (0 for the current machine),
// or 0 when no finite extension helps (the chain is wider than the
// machine).
//
// Exactness: greedy placement with deadlines is identical to unbounded
// greedy placement whenever no deadline binds — EarliestFit returns the
// same earliest start and the deadline only accepts or rejects it.  So
// the minimal uniform extension is D = max_i(F_i - deadline_i) over the
// unbounded replay finishes F_i, and replaying with +D reproduces the
// unbounded placements exactly.  The result is still replay-verified
// (guarding against floating-point edge cases), with a tolerance nudge
// before giving up.
func (s *Scheduler) deadlineSlack(job Job, ci int, extraProcs int) float64 {
	chain := job.Chains[ci]
	f := s.Fork()
	if extraProcs > 0 {
		if f.prof.SetCapacity(f.prof.Capacity()+extraProcs) != nil {
			return 0
		}
	}
	// Unbounded replay: lift every deadline to +inf.
	est := job.Release
	need := 0.0
	for i, t := range chain.Tasks {
		lt := t
		lt.Deadline = Inf
		tp, ok := f.placeTask(lt, i, est)
		if !ok {
			return 0 // wider than the machine: no deadline extension helps
		}
		est = tp.Finish
		if over := tp.Finish - t.Deadline; over > need {
			need = over
		}
	}
	if need <= 0 {
		// The unbounded replay already meets every deadline, so the
		// failure was deadline-free — this axis is not the binding one.
		return 0
	}
	d := WhatIfDelta{OnlyChain: ci + 1, ExtraDeadline: need, ExtraProcs: extraProcs}
	for range [4]struct{}{} {
		if s.verify(job, d) {
			return d.ExtraDeadline
		}
		// Floating-point edge: nudge past the tolerance band and retry.
		d.ExtraDeadline += 10 * Eps * (1 + d.ExtraDeadline)
	}
	return 0
}

// procSlack returns the minimal machine growth admitting chain ci with
// deadlines unchanged, or 0 when no growth helps (the deadline binds
// intrinsically).
func (s *Scheduler) procSlack(job Job, ci int) int {
	chain := job.Chains[ci]
	// Intrinsic feasibility: on an unloaded machine of unlimited width,
	// tasks run back-to-back at minimal duration; if that already misses a
	// deadline, no amount of hardware admits the chain.
	finish := job.Release
	wmax := 0
	for _, t := range chain.Tasks {
		finish += minDuration(t, 0) // unlimited machine
		if !timeLeq(finish, t.Deadline) {
			return 0
		}
		if w := taskWidth(t); w > wmax {
			wmax = w
		}
	}
	cap := s.prof.Capacity()
	// Upper bound: enough growth to dwarf both the committed peak and the
	// chain's widest task, making the machine look idle to this chain.
	hi := s.prof.PeakUsed()
	if wmax > cap {
		hi += wmax - cap
	}
	if hi < 1 {
		hi = 1
	}
	if !s.verify(job, WhatIfDelta{OnlyChain: ci + 1, ExtraProcs: hi}) {
		return 0 // should not happen; fail closed rather than suggest junk
	}
	// Binary search the minimal admitting growth (feasibility is monotone
	// in capacity: growth only raises availability pointwise).
	lo := 0 // known infeasible (the plan just failed)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if s.verify(job, WhatIfDelta{OnlyChain: ci + 1, ExtraProcs: mid}) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// widthSlack returns the minimal width reduction (in processors, applied
// as a constant-area width cap at failed.Procs-k) admitting chain ci on
// the current machine, or 0 when narrowing does not help or does not
// apply (malleable tasks already narrow themselves).
func (s *Scheduler) widthSlack(job Job, ci int, failed Task) int {
	if failed.Malleable || failed.Procs <= 1 {
		return 0
	}
	lo := failed.Procs - maxWidthScan
	if lo < 1 {
		lo = 1
	}
	for w := failed.Procs - 1; w >= lo; w-- {
		if s.verify(job, WhatIfDelta{OnlyChain: ci + 1, WidthCap: w}) {
			return failed.Procs - w
		}
	}
	return 0
}

// suggest picks the cheapest verified delta across all chains: deadline
// slack first (no hardware, no quality loss), then width reduction
// (degraded but self-served), then machine growth, then a combined
// growth+extension fallback that exists for every intrinsically feasible
// job.
func (s *Scheduler) suggest(job Job, chains []ChainDiagnosis) *WhatIfDelta {
	best := func(pick func(ChainDiagnosis) (WhatIfDelta, float64)) *WhatIfDelta {
		var out *WhatIfDelta
		bestCost := Inf
		for _, cd := range chains {
			if cd.Schedulable {
				continue
			}
			d, cost := pick(cd)
			if cost > 0 && cost < bestCost {
				dd := d
				out, bestCost = &dd, cost
			}
		}
		return out
	}
	if d := best(func(cd ChainDiagnosis) (WhatIfDelta, float64) {
		return WhatIfDelta{OnlyChain: cd.Chain + 1, ExtraDeadline: cd.Slack.ExtraDeadline}, cd.Slack.ExtraDeadline
	}); d != nil {
		return d
	}
	if d := best(func(cd ChainDiagnosis) (WhatIfDelta, float64) {
		if cd.Slack.ReducedWidth == 0 {
			return WhatIfDelta{}, 0
		}
		return WhatIfDelta{OnlyChain: cd.Chain + 1, WidthCap: cd.WantProcs - cd.Slack.ReducedWidth},
			float64(cd.Slack.ReducedWidth)
	}); d != nil {
		return d
	}
	if d := best(func(cd ChainDiagnosis) (WhatIfDelta, float64) {
		return WhatIfDelta{OnlyChain: cd.Chain + 1, ExtraProcs: cd.Slack.ExtraProcs}, float64(cd.Slack.ExtraProcs)
	}); d != nil {
		return d
	}
	// Combined fallback: grow the machine past peak + widest task, then
	// extend deadlines by the minimal amount the grown machine needs.
	for ci := range job.Chains {
		if chains[ci].Schedulable {
			continue
		}
		wmax := 0
		for _, t := range job.Chains[ci].Tasks {
			if w := taskWidth(t); w > wmax {
				wmax = w
			}
		}
		grow := s.prof.PeakUsed()
		if c := s.prof.Capacity(); wmax > c {
			grow += wmax - c
		}
		if grow < 1 {
			grow = 1
		}
		if need := s.deadlineSlack(job, ci, grow); need > 0 {
			return &WhatIfDelta{OnlyChain: ci + 1, ExtraProcs: grow, ExtraDeadline: need}
		}
		if s.verify(job, WhatIfDelta{OnlyChain: ci + 1, ExtraProcs: grow}) {
			return &WhatIfDelta{OnlyChain: ci + 1, ExtraProcs: grow}
		}
	}
	return nil
}
