package core

// Hooks observes the scheduler's admission pipeline.  Every field is
// optional; a nil Hooks pointer (the default) or a nil field disables that
// hook with a single pointer comparison, so unobserved schedulers pay no
// instrumentation cost.  The hooks fire synchronously on the scheduling
// path and must be cheap; heavier processing belongs behind a trace sink
// (see internal/obs, which provides a ready-made adapter).
//
// The scheduler is not safe for concurrent use, so hook implementations
// need no internal ordering with respect to one admission; implementations
// shared across schedulers (one Observer feeding many runs) must be safe
// for concurrent use.
type Hooks struct {
	// AdmitStart fires when admission control starts evaluating a job.
	AdmitStart func(job *Job)
	// ChainTried fires after each execution path's feasibility check with
	// the outcome; finish is the chain's completion time when ok.
	ChainTried func(job *Job, chain int, ok bool, finish float64)
	// HolesProbed fires after each chain placement attempt with the number
	// of placement probes (maximal-hole or profile-segment queries) the
	// attempt issued.
	HolesProbed func(job *Job, chain, probes int)
	// TieBreak fires when a later chain displaces the incumbent best under
	// the configured tie-break policy.
	TieBreak func(job *Job, winner, over int)
	// Committed fires when a job's reservation is committed.
	Committed func(job *Job, pl *Placement)
	// Rejected fires when admission control rejects a job.
	Rejected func(job *Job, reason string)
	// PlanFailure fires when no execution path of a job is schedulable.
	PlanFailure func(job *Job)
}
