package core

import (
	"errors"
	"fmt"
)

// The paper's QoS agent describes a task's needs as "a vector of values,
// one for each resource in the system", then restricts the evaluation to
// the processor dimension.  This file implements the full vector model:
// capacity and requests are per-dimension (e.g. processors, memory pages,
// interconnect bandwidth), a task occupies its whole request vector for
// its duration, and placement requires a slot where every dimension fits
// simultaneously.

// VectorCapacity names the machine's dimensions and their sizes.
type VectorCapacity struct {
	Names []string
	Size  []int
}

// Validate checks the capacity description.
func (vc VectorCapacity) Validate() error {
	if len(vc.Size) == 0 {
		return errors.New("core: vector capacity has no dimensions")
	}
	if len(vc.Names) != len(vc.Size) {
		return fmt.Errorf("core: %d names for %d dimensions", len(vc.Names), len(vc.Size))
	}
	for i, s := range vc.Size {
		if s < 1 {
			return fmt.Errorf("core: dimension %q size %d", vc.Names[i], s)
		}
	}
	return nil
}

// VectorTask is one stage with a per-dimension request.
type VectorTask struct {
	Name     string
	Req      []int // one entry per capacity dimension
	Duration float64
	Deadline float64
}

// VectorChain is one execution path of a vector job.
type VectorChain struct {
	Name    string
	Tasks   []VectorTask
	Quality float64
}

// VectorJob is a (possibly tunable) job with vector resource requests.
type VectorJob struct {
	ID      int
	Release float64
	Chains  []VectorChain
}

// Validate checks the job against the capacity's dimensionality.
func (j VectorJob) Validate(vc VectorCapacity) error {
	if len(j.Chains) == 0 {
		return fmt.Errorf("core: vector job %d has no chains", j.ID)
	}
	for ci, c := range j.Chains {
		if len(c.Tasks) == 0 {
			return fmt.Errorf("core: vector job %d chain %d has no tasks", j.ID, ci)
		}
		for ti, t := range c.Tasks {
			if len(t.Req) != len(vc.Size) {
				return fmt.Errorf("core: vector job %d chain %d task %d: %d request dims for %d capacity dims",
					j.ID, ci, ti, len(t.Req), len(vc.Size))
			}
			if t.Duration <= 0 {
				return fmt.Errorf("core: vector job %d chain %d task %d: duration %v", j.ID, ci, ti, t.Duration)
			}
			positive := false
			for di, r := range t.Req {
				if r < 0 || r > vc.Size[di] {
					return fmt.Errorf("core: vector job %d chain %d task %d: request %d exceeds %q capacity %d",
						j.ID, ci, ti, r, vc.Names[di], vc.Size[di])
				}
				if r > 0 {
					positive = true
				}
			}
			if !positive {
				return fmt.Errorf("core: vector job %d chain %d task %d requests nothing", j.ID, ci, ti)
			}
			if timeLess(t.Deadline, j.Release) {
				return fmt.Errorf("core: vector job %d chain %d task %d: deadline before release", j.ID, ci, ti)
			}
		}
	}
	return nil
}

// VectorProfile tracks committed usage per dimension, one capacity profile
// each.
type VectorProfile struct {
	cap  VectorCapacity
	dims []*Profile
}

// NewVectorProfile returns an empty multi-dimensional profile.
func NewVectorProfile(vc VectorCapacity, origin float64) (*VectorProfile, error) {
	if err := vc.Validate(); err != nil {
		return nil, err
	}
	vp := &VectorProfile{cap: vc}
	for _, s := range vc.Size {
		vp.dims = append(vp.dims, NewProfile(s, origin))
	}
	return vp, nil
}

// Capacity returns the capacity description.
func (vp *VectorProfile) Capacity() VectorCapacity { return vp.cap }

// EarliestFit returns the earliest start s >= est at which every requested
// dimension is simultaneously free for `duration`, with s+duration <=
// deadline.  Dimensions with zero request are unconstrained.
//
// The search alternates over dimensions: each round takes the current
// candidate start and asks every dimension for its earliest fit at or
// after it; if they all agree the candidate stands, otherwise the maximum
// becomes the next candidate.  Each dimension's earliest-fit is monotone
// in est, so the candidate only moves forward and the loop terminates at
// the deadline.
func (vp *VectorProfile) EarliestFit(req []int, duration, est, deadline float64) (float64, bool) {
	if len(req) != len(vp.dims) {
		return 0, false
	}
	s := est
	for {
		agreed := true
		for di, p := range vp.dims {
			if req[di] <= 0 {
				continue
			}
			ds, ok := p.EarliestFit(req[di], duration, s, deadline)
			if !ok {
				return 0, false
			}
			if timeLess(s, ds) {
				s = ds
				agreed = false
			}
		}
		if agreed {
			if !timeLeq(s+duration, deadline) {
				return 0, false
			}
			return s, true
		}
	}
}

// Reserve commits the request vector over [start, finish).
func (vp *VectorProfile) Reserve(req []int, start, finish float64) error {
	if len(req) != len(vp.dims) {
		return fmt.Errorf("core: reserve with %d dims on %d-dim profile", len(req), len(vp.dims))
	}
	for di, p := range vp.dims {
		if req[di] <= 0 {
			continue
		}
		if err := p.Reserve(req[di], start, finish); err != nil {
			// Roll back dimensions already reserved: rebuild is impossible
			// on the additive profile, so the scheduler must pre-check via
			// EarliestFit; failure here is a programming error surfaced
			// loudly.
			return fmt.Errorf("core: vector reserve dim %q: %w", vp.cap.Names[di], err)
		}
	}
	return nil
}

// TrimBefore compacts every dimension's history.
func (vp *VectorProfile) TrimBefore(t float64) {
	for _, p := range vp.dims {
		p.TrimBefore(t)
	}
}

// BusyUpTo returns the per-dimension usage integrals up to t.
func (vp *VectorProfile) BusyUpTo(t float64) []float64 {
	out := make([]float64, len(vp.dims))
	for i, p := range vp.dims {
		out[i] = p.BusyUpTo(t)
	}
	return out
}

// VectorScheduler runs admission control for vector jobs with the greedy
// heuristic (earliest finish among schedulable chains).
type VectorScheduler struct {
	prof *VectorProfile
	stat Stats
}

// NewVectorScheduler returns a scheduler over the given capacity vector.
func NewVectorScheduler(vc VectorCapacity, origin float64) (*VectorScheduler, error) {
	vp, err := NewVectorProfile(vc, origin)
	if err != nil {
		return nil, err
	}
	return &VectorScheduler{prof: vp}, nil
}

// Stats returns the scheduler's counters.
func (s *VectorScheduler) Stats() Stats { return s.stat }

// Observe compacts history up to now.
func (s *VectorScheduler) Observe(now float64) { s.prof.TrimBefore(now) }

// VectorPlacement is the reservation granted to a vector job.
type VectorPlacement struct {
	JobID int
	Chain int
	Tasks []VectorTaskPlacement
}

// VectorTaskPlacement is one placed vector task.
type VectorTaskPlacement struct {
	Task   int
	Start  float64
	Finish float64
	Req    []int
}

// Finish returns the placement's completion time.
func (p VectorPlacement) Finish() float64 {
	if len(p.Tasks) == 0 {
		return 0
	}
	return p.Tasks[len(p.Tasks)-1].Finish
}

// Admit runs admission control: the earliest-finishing schedulable chain
// is reserved; ErrRejected if none fits.
func (s *VectorScheduler) Admit(job VectorJob) (*VectorPlacement, error) {
	if err := job.Validate(s.prof.cap); err != nil {
		return nil, err
	}
	var best *VectorPlacement
	for ci, chain := range job.Chains {
		pl, ok := s.placeChain(chain, job.Release)
		if !ok {
			continue
		}
		pl.JobID = job.ID
		pl.Chain = ci
		if best == nil || timeLess(pl.Finish(), best.Finish()) {
			best = pl
		}
	}
	if best == nil {
		s.stat.Rejected++
		return nil, ErrRejected
	}
	for _, tp := range best.Tasks {
		if err := s.prof.Reserve(tp.Req, tp.Start, tp.Finish); err != nil {
			return nil, err
		}
	}
	s.stat.Admitted++
	s.stat.QualitySum += job.Chains[best.Chain].Quality
	if len(job.Chains) > 1 {
		for len(s.stat.TunableChosen) <= best.Chain {
			s.stat.TunableChosen = append(s.stat.TunableChosen, 0)
		}
		s.stat.TunableChosen[best.Chain]++
	}
	return best, nil
}

// placeChain places the chain's tasks sequentially at earliest fits.
func (s *VectorScheduler) placeChain(chain VectorChain, release float64) (*VectorPlacement, bool) {
	pl := &VectorPlacement{}
	est := release
	for i, t := range chain.Tasks {
		start, ok := s.prof.EarliestFit(t.Req, t.Duration, est, t.Deadline)
		if !ok {
			return nil, false
		}
		pl.Tasks = append(pl.Tasks, VectorTaskPlacement{
			Task:   i,
			Start:  start,
			Finish: start + t.Duration,
			Req:    append([]int(nil), t.Req...),
		})
		est = start + t.Duration
	}
	return pl, true
}
