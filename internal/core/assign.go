package core

import (
	"container/heap"
	"fmt"
	"sort"
)

// Assignment binds one placed task to a concrete set of processor IDs for
// its whole (non-preemptive) interval.  The QoS arbitrator communicates
// these bindings back to each application's QoS agent.
type Assignment struct {
	JobID  int
	Task   int
	Start  float64
	Finish float64
	Procs  []int // processor IDs, sorted ascending
}

// AssignProcessors converts count-based placements into concrete
// processor-ID bindings such that no processor is double-booked and each
// task holds the same processors throughout its interval.
//
// Feasibility is guaranteed whenever the placements respect the capacity
// profile: splitting each task into Procs unit-demand intervals yields an
// interval graph with clique number at most `capacity`, and interval graphs
// are perfect, so a left-to-right greedy coloring with `capacity` colors
// always succeeds.  An error therefore indicates an invalid (over-committed)
// placement set.
func AssignProcessors(capacity int, placements []*Placement) ([]Assignment, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: assign: capacity %d must be >= 1", capacity)
	}
	var tasks []Assignment
	var counts []int
	for _, pl := range placements {
		for _, tp := range pl.Tasks {
			tasks = append(tasks, Assignment{
				JobID:  pl.JobID,
				Task:   tp.Task,
				Start:  tp.Start,
				Finish: tp.Finish,
				Procs:  make([]int, 0, tp.Procs),
			})
			counts = append(counts, tp.Procs)
		}
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		if !timeEq(ta.Start, tb.Start) {
			return ta.Start < tb.Start
		}
		return ta.Finish < tb.Finish
	})

	free := &intHeap{}
	for id := 0; id < capacity; id++ {
		free.push(id)
	}
	active := &releaseHeap{}

	for _, idx := range order {
		t := &tasks[idx]
		// Return processors of every task finished by this start time
		// (intervals are half-open, so finish == start does not conflict).
		for active.Len() > 0 && timeLeq((*active)[0].finish, t.Start) {
			rel := heap.Pop(active).(release)
			for _, id := range rel.procs {
				free.push(id)
			}
		}
		need := counts[idx]
		if free.Len() < need {
			return nil, fmt.Errorf("core: assign: job %d task %d at %v needs %d processors, only %d free",
				t.JobID, t.Task, t.Start, need, free.Len())
		}
		for k := 0; k < need; k++ {
			t.Procs = append(t.Procs, free.pop())
		}
		sort.Ints(t.Procs)
		heap.Push(active, release{finish: t.Finish, procs: t.Procs})
	}
	return tasks, nil
}

// release records processors to be returned to the free pool when a task
// finishes.
type release struct {
	finish float64
	procs  []int
}

type releaseHeap []release

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(i, j int) bool  { return h[i].finish < h[j].finish }
func (h releaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// intHeap is a min-heap of processor IDs so assignments are deterministic
// (lowest free IDs first).
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (h *intHeap) push(id int) { heap.Push(h, id) }
func (h *intHeap) pop() int    { return heap.Pop(h).(int) }
