package core

import (
	"math"
	"math/rand"
	"testing"
)

// brute-force helpers against which the tree walks are checked.

func bruteFirstBelow(p *Profile, from, k int) int {
	for i := from; i < len(p.used); i++ {
		if p.capacity-p.used[i] < k {
			return i
		}
	}
	return len(p.used)
}

func bruteFirstAtLeast(p *Profile, from, k int) int {
	for i := from; i < len(p.used); i++ {
		if p.capacity-p.used[i] >= k {
			return i
		}
	}
	return len(p.used)
}

func bruteLastBelow(p *Profile, upTo, k int) int {
	if upTo >= len(p.used) {
		upTo = len(p.used) - 1
	}
	for i := upTo; i >= 0; i-- {
		if p.capacity-p.used[i] < k {
			return i
		}
	}
	return -1
}

func bruteRangeMin(p *Profile, l, r int) int {
	min := p.capacity
	for i := l; i <= r; i++ {
		if a := p.capacity - p.used[i]; a < min {
			min = a
		}
	}
	return min
}

// TestIndexDescentsMatchBruteForce checks every tree primitive against the
// straight scan on randomized profiles of many shapes and sizes.
func TestIndexDescentsMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(16)
		p := randomProfile(rng, capacity, rng.Intn(64))
		p.EnableIndex()
		x := p.idxEnsure()
		n := len(p.used)
		for trial := 0; trial < 200; trial++ {
			from := rng.Intn(n + 2)
			k := rng.Intn(capacity + 2)
			if got, want := x.firstBelow(from, k), bruteFirstBelow(p, from, k); got != want {
				t.Fatalf("seed %d: firstBelow(%d,%d) = %d, want %d (%s)", seed, from, k, got, want, p)
			}
			if got, want := x.firstAtLeast(from, k), bruteFirstAtLeast(p, from, k); got != want {
				t.Fatalf("seed %d: firstAtLeast(%d,%d) = %d, want %d (%s)", seed, from, k, got, want, p)
			}
			if got, want := x.lastBelow(from, k), bruteLastBelow(p, from, k); got != want {
				t.Fatalf("seed %d: lastBelow(%d,%d) = %d, want %d (%s)", seed, from, k, got, want, p)
			}
			l := rng.Intn(n)
			r := l + rng.Intn(n-l)
			if got, want := x.rangeMin(l, r), bruteRangeMin(p, l, r); got != want {
				t.Fatalf("seed %d: rangeMin(%d,%d) = %d, want %d (%s)", seed, l, r, got, want, p)
			}
		}
	}
}

// TestIndexIncrementalLeafUpdates: a reservation whose boundaries land on
// existing breakpoints must refresh leaves in place (no rebuild), and the
// refreshed tree must remain internally consistent.
func TestIndexIncrementalLeafUpdates(t *testing.T) {
	p := NewProfile(8, 0)
	p.EnableIndex()
	mustReserve(t, p, 2, 10, 20)
	mustReserve(t, p, 2, 20, 30)
	_ = p.MinAvailOn(0, 40) // force a build
	st := p.IndexStats()
	if st.Rebuilds == 0 {
		t.Fatal("no rebuild after first query")
	}
	// Boundaries 10 and 30 both exist: purely incremental.
	mustReserve(t, p, 3, 10, 30)
	st2 := p.IndexStats()
	if st2.Rebuilds != st.Rebuilds {
		t.Fatalf("aligned reserve triggered a rebuild (%d -> %d)", st.Rebuilds, st2.Rebuilds)
	}
	if st2.LeafUpdates == st.LeafUpdates {
		t.Fatal("aligned reserve did not refresh any leaves")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := p.MinAvailOn(10, 30); got != 3 {
		t.Fatalf("MinAvailOn(10,30) = %d, want 3", got)
	}
	// A misaligned reserve must dirty the index; the next query rebuilds.
	mustReserve(t, p, 1, 12, 18)
	if !p.idx.dirty {
		t.Fatal("breakpoint insertion did not dirty the index")
	}
	if got := p.MinAvailOn(12, 18); got != 2 {
		t.Fatalf("MinAvailOn(12,18) = %d, want 2", got)
	}
	if p.IndexStats().Rebuilds != st.Rebuilds+1 {
		t.Fatal("misaligned reserve did not rebuild on next query")
	}
}

// TestIndexSameProfileAgreesWithLinear compares the indexed and linear
// query paths on the *same* profile instance (not just replayed twins):
// every probe of a randomized profile must agree exactly.
func TestIndexSameProfileAgreesWithLinear(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		capacity := 1 + rng.Intn(12)
		p := randomProfile(rng, capacity, 48)
		p.EnableIndex()
		for trial := 0; trial < 150; trial++ {
			a := rng.Float64() * 180
			b := a + rng.Float64()*40
			if got, want := p.minAvailOnIndexed(a, b), p.minAvailOnLinear(a, b); got != want {
				t.Fatalf("seed %d: MinAvailOn(%v,%v) indexed %d, linear %d", seed, a, b, got, want)
			}
			procs := 1 + rng.Intn(capacity)
			dur := 0.2 + rng.Float64()*15
			deadline := a + dur + rng.Float64()*80
			if trial%3 == 0 {
				deadline = math.Inf(1)
			}
			si, oki := p.earliestFitIndexed(procs, dur, a, deadline)
			sl, okl := p.earliestFitLinear(procs, dur, a, deadline)
			if oki != okl || si != sl {
				t.Fatalf("seed %d: EarliestFit(%d,%v,%v,%v) indexed (%v,%v), linear (%v,%v)",
					seed, procs, dur, a, deadline, si, oki, sl, okl)
			}
			if trial%10 == 0 {
				hi := p.maximalHolesIndexed(a)
				hl := p.maximalHolesLinear(a)
				if len(hi) != len(hl) {
					t.Fatalf("seed %d: holes count %d vs %d", seed, len(hi), len(hl))
				}
				for i := range hi {
					if hi[i] != hl[i] && !(math.IsInf(hi[i].End, 1) && math.IsInf(hl[i].End, 1) &&
						hi[i].Start == hl[i].Start && hi[i].Procs == hl[i].Procs) {
						t.Fatalf("seed %d: hole %d: %+v vs %+v", seed, i, hi[i], hl[i])
					}
				}
				if err := p.validateHoles(hi, a); err != nil {
					t.Fatalf("seed %d: indexed holes invalid: %v", seed, err)
				}
			}
		}
	}
}

// TestIndexCloneStartsFresh: cloning an indexed profile keeps indexing
// enabled but with a lazily rebuilt tree and zeroed counters, and the
// clone answers queries identically.
func TestIndexCloneStartsFresh(t *testing.T) {
	p := NewProfile(4, 0)
	p.EnableIndex()
	mustReserve(t, p, 2, 1, 5)
	_ = p.MinAvailOn(0, 10)
	q := p.Clone()
	if !q.IndexEnabled() {
		t.Fatal("clone of indexed profile lost its index")
	}
	if st := q.IndexStats(); st.Rebuilds != 0 {
		t.Fatalf("clone inherited counters: %+v", st)
	}
	if got, want := q.MinAvailOn(1, 5), p.MinAvailOn(1, 5); got != want {
		t.Fatalf("clone MinAvailOn = %d, want %d", got, want)
	}
	// Mutating the clone must not touch the parent's tree.
	mustReserve(t, q, 2, 1, 5)
	if got := p.MinAvailOn(1, 5); got != 2 {
		t.Fatalf("parent MinAvailOn changed to %d after clone mutation", got)
	}
}

// TestEnsureBreakEpsilonDedup is the regression test for the breakpoint
// epsilon-dedup: reservation boundaries recomputed with sub-tolerance float
// drift must snap to existing breakpoints instead of inserting
// near-duplicate breaks.  Without the dedup a long churn run accumulates
// one sliver segment per drifted boundary, inflating every later probe.
func TestEnsureBreakEpsilonDedup(t *testing.T) {
	p := NewProfile(16, 0)
	// 1000 reservations over the same [10, 20) window, each boundary
	// drifted by a fresh sub-Eps offset.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		start := 10 + (rng.Float64()*2-1)*4e-10
		finish := 20 + (rng.Float64()*2-1)*4e-10
		if err := p.Reserve(1, start, finish); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if p.UsedAt(15) != i+1 {
			t.Fatalf("reserve %d: UsedAt(15) = %d, want %d", i, p.UsedAt(15), i+1)
		}
		if i >= 15 {
			break // capacity is 16; stop before the window fills
		}
	}
	if got := p.Segments(); got != 3 {
		t.Fatalf("drifting boundaries inflated segments to %d, want 3 (%s)", got, p)
	}
	p.checkInvariants()
	// No two breakpoints may ever be within Eps of each other.
	for i := 1; i < len(p.times); i++ {
		if p.times[i]-p.times[i-1] <= Eps {
			t.Fatalf("breakpoints %v and %v closer than Eps", p.times[i-1], p.times[i])
		}
	}
}

// TestEnsureBreakDedupUnderChurn drives a trim-and-reserve churn loop whose
// boundary arithmetic accumulates float error (repeated addition of an
// irrational step) and checks the segment count stays proportional to the
// number of *live* reservations, not the total history.
func TestEnsureBreakDedupUnderChurn(t *testing.T) {
	p := NewProfile(8, 0)
	step := 1.0 / 3.0
	clock := 0.0
	maxSegs := 0
	for i := 0; i < 5000; i++ {
		clock += step
		// Reserve a window [clock, clock+6*step) — boundaries reuse the
		// drifting accumulator, so later windows re-derive "the same"
		// times through different float paths.  One arrival per step of
		// duration 6*step is offered load 6 < capacity 8, so the *live*
		// reservation set stays bounded; only dedup failure can make the
		// segment count grow with history.
		if s, ok := p.EarliestFit(1, 6*step, clock, Inf); ok {
			if err := p.Reserve(1, s, s+6*step); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
		p.TrimBefore(clock)
		if segs := p.Segments(); segs > maxSegs {
			maxSegs = segs
		}
	}
	p.checkInvariants()
	// At most ~6-8 concurrent reservations of length 2 over a window that
	// advances 1/3 per iteration: live structure is tens of segments.  A
	// dedup regression shows up as hundreds to thousands.
	if maxSegs > 64 {
		t.Fatalf("segment count peaked at %d under churn, want <= 64", maxSegs)
	}
}

// TestIndexStatsAccounting: the exported counters move as documented.
func TestIndexStatsAccounting(t *testing.T) {
	p := NewProfile(8, 0)
	if st := p.IndexStats(); st.Enabled {
		t.Fatal("index reported enabled before EnableIndex")
	}
	p.EnableIndex()
	st := p.IndexStats()
	if !st.Enabled || st.Rebuilds != 0 {
		t.Fatalf("fresh index stats = %+v", st)
	}
	mustReserve(t, p, 1, 0, 10)
	_, _ = p.EarliestFit(4, 2, 0, Inf)
	st = p.IndexStats()
	if st.Rebuilds == 0 || st.Descents == 0 || st.DescentSteps < st.Descents {
		t.Fatalf("index did not count its work: %+v", st)
	}
	// Scheduler-level accessor.
	s := NewScheduler(8, 0, nil)
	if !s.Profile().IndexEnabled() {
		t.Fatal("NewScheduler(nil opts) did not enable the index by default")
	}
	if _, err := s.Admit(Job{ID: 1, Release: 0, Chains: []Chain{{Quality: 1,
		Tasks: []Task{{Procs: 2, Duration: 3, Deadline: 10}}}}}); err != nil {
		t.Fatal(err)
	}
	if st := s.IndexStats(); !st.Enabled || st.Rebuilds == 0 {
		t.Fatalf("scheduler index stats = %+v", st)
	}
	off := NewScheduler(8, 0, &Options{ProfileIndex: ProfileIndexOff})
	if off.Profile().IndexEnabled() {
		t.Fatal("ProfileIndexOff still attached an index")
	}
}
