package core

import (
	"errors"
	"fmt"
)

// ErrRejected is returned by Admit when no chain of the job can be scheduled
// to meet its deadlines; the job fails admission control.
var ErrRejected = errors.New("core: job rejected by admission control")

// Stats accumulates scheduler-level counters over a run.
type Stats struct {
	Admitted      int
	Rejected      int
	TunableChosen []int // per-chain-index selection counts for tunable jobs
	ReservedArea  float64
	// QualitySum is the total output quality of the chosen chains; divided
	// by Admitted it is the mean achieved job quality.
	QualitySum float64
	// ChainsTried counts execution-path feasibility checks across all
	// planning calls (every chain evaluated by Plan or AdmitDAG).
	ChainsTried int
	// HolesProbed counts placement probes: each query of the
	// processor-time plane for a task slot (a maximal-hole enumeration
	// under EngineHoles, a profile segment scan under EngineProfile).
	HolesProbed int
	// PlanFailures counts planning calls in which no execution path was
	// schedulable.
	PlanFailures int
}

// MeanQuality returns the mean output quality over admitted jobs.
func (s Stats) MeanQuality() float64 {
	if s.Admitted == 0 {
		return 0
	}
	return s.QualitySum / float64(s.Admitted)
}

// Scheduler implements the QoS arbitrator's scheduling decisions: online
// admission control and reservation of processor-time for jobs arriving over
// time (Section 5.2's greedy heuristic).
//
// A Scheduler is not safe for concurrent use; the arbitrator serializes
// admissions (negotiations are independent requests ordered by arrival).
type Scheduler struct {
	prof *Profile
	opts Options
	stat Stats
}

// NewScheduler returns a scheduler managing `procs` homogeneous processors
// from time origin, using the zero Options (the paper's configuration) if
// opts is nil.
func NewScheduler(procs int, origin float64, opts *Options) *Scheduler {
	var o Options
	if opts != nil {
		o = *opts
	}
	prof := NewProfile(procs, origin)
	if o.ProfileIndex != ProfileIndexOff {
		prof.EnableIndex()
	}
	return &Scheduler{prof: prof, opts: o}
}

// Procs returns the machine size.
func (s *Scheduler) Procs() int { return s.prof.Capacity() }

// Profile exposes the underlying capacity profile (read-mostly; callers must
// not reserve through it directly).
func (s *Scheduler) Profile() *Profile { return s.prof }

// Stats returns a copy of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	st := s.stat
	st.TunableChosen = append([]int(nil), s.stat.TunableChosen...)
	return st
}

// IndexStats returns the capacity profile's segment-tree work counters
// (zero value when Options.ProfileIndex is off).
func (s *Scheduler) IndexStats() IndexStats { return s.prof.IndexStats() }

// Observe informs the scheduler that simulated time has advanced to now,
// letting it fold fully elapsed reservations into its utilization
// accounting.  Admission decisions are unaffected.
func (s *Scheduler) Observe(now float64) { s.prof.TrimBefore(now) }

// BusyUpTo returns total reserved processor-time from the origin up to t.
func (s *Scheduler) BusyUpTo(t float64) float64 { return s.prof.BusyUpTo(t) }

// Utilization returns the fraction of machine capacity reserved between the
// origin and horizon.
func (s *Scheduler) Utilization(origin, horizon float64) float64 {
	if !timeLess(origin, horizon) {
		return 0
	}
	return s.prof.BusyUpTo(horizon) / (float64(s.prof.Capacity()) * (horizon - origin))
}

// Admit runs admission control for a job arriving at job.Release.  If some
// chain of the job can be placed so every task meets its deadline, Admit
// commits the reservation and returns the placement; otherwise it returns
// ErrRejected and the schedule is unchanged.
func (s *Scheduler) Admit(job Job) (*Placement, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("core: admit: %w", err)
	}
	if h := s.opts.Hooks; h != nil && h.AdmitStart != nil {
		h.AdmitStart(&job)
	}
	pl, ok := s.Plan(job)
	if !ok {
		s.stat.Rejected++
		if h := s.opts.Hooks; h != nil && h.Rejected != nil {
			h.Rejected(&job, "no-feasible-chain")
		}
		return nil, ErrRejected
	}
	if err := s.Commit(job, pl); err != nil {
		return nil, err // internal inconsistency: plan no longer fits
	}
	return pl, nil
}

// SetCapacity resizes the scheduler's machine to procs processors.  Growth
// always succeeds; shrinking fails unless the new size still covers every
// committed reservation (reservations are never preempted — only
// uncommitted headroom may be given away).  The federated admission plane
// uses this to migrate whole processors between shards.
func (s *Scheduler) SetCapacity(procs int) error { return s.prof.SetCapacity(procs) }

// NoteRejected records an admission rejection decided outside Admit — e.g.
// by a federated router whose planning probes all failed — updating the
// rejection counter and firing the Rejected hook exactly as Admit's own
// rejection path does.  (Plan itself already counted the per-chain work and
// the plan failure.)
func (s *Scheduler) NoteRejected(job *Job, reason string) {
	s.stat.Rejected++
	if h := s.opts.Hooks; h != nil && h.Rejected != nil {
		h.Rejected(job, reason)
	}
}

// PlanKey carries the tie-break key of a planned placement in a form a
// federated router can compare across schedulers: finish time,
// utilization of the planning machine over [release, finish] including
// the plan's own area, and the cumulative resource prefix.  (Quality and
// area only order chains within one job and are already folded into the
// per-machine choice.)
type PlanKey struct {
	Finish float64
	Util   float64
	Prefix []float64
}

// Plan evaluates the job without committing anything, returning the chosen
// placement and whether the job is schedulable.  Plan+Commit allows the
// arbitrator to interpose policy (e.g. quality maximization across jobs)
// between feasibility analysis and reservation.
func (s *Scheduler) Plan(job Job) (*Placement, bool) {
	pl, _, ok := s.PlanKeyed(job)
	return pl, ok
}

// PlanKeyed is Plan, additionally exposing the winning chain's tie-break
// key (already computed during planning, so callers that need it — the
// federated router's cross-shard comparison — pay nothing extra).
func (s *Scheduler) PlanKeyed(job Job) (*Placement, PlanKey, bool) {
	h := s.opts.Hooks
	var best *Placement
	var bestKey chainKey
	bestChain := -1
	for ci, chain := range job.Chains {
		s.stat.ChainsTried++
		probesBefore := s.stat.HolesProbed
		tasks, ok := s.placeChain(chain, job.Release)
		if h != nil && h.HolesProbed != nil {
			h.HolesProbed(&job, ci, s.stat.HolesProbed-probesBefore)
		}
		if !ok {
			if h != nil && h.ChainTried != nil {
				h.ChainTried(&job, ci, false, 0)
			}
			continue
		}
		pl := &Placement{JobID: job.ID, Chain: ci, Tasks: tasks}
		if h != nil && h.ChainTried != nil {
			h.ChainTried(&job, ci, true, pl.Finish())
		}
		key := s.chainSortKey(pl, chain, job.Release)
		if best == nil || s.better(key, bestKey) {
			if best != nil && h != nil && h.TieBreak != nil {
				h.TieBreak(&job, ci, bestChain)
			}
			best, bestKey, bestChain = pl, key, ci
		}
		if s.opts.TieBreak == TieBreakFirstFit {
			break
		}
	}
	if best == nil {
		s.stat.PlanFailures++
		if h != nil && h.PlanFailure != nil {
			h.PlanFailure(&job)
		}
		if s.opts.Diagnosis != nil {
			s.opts.Diagnosis(s.Diagnose(job))
		}
		return nil, PlanKey{}, false
	}
	return best, PlanKey{Finish: bestKey.finish, Util: bestKey.util, Prefix: bestKey.prefix}, true
}

// Commit reserves the processor-time described by a placement previously
// returned by Plan for this job.
func (s *Scheduler) Commit(job Job, pl *Placement) error {
	for i, tp := range pl.Tasks {
		if err := s.prof.Reserve(tp.Procs, tp.Start, tp.Finish); err != nil {
			// Roll back what was reserved so far by rebuilding is not
			// possible with the additive profile; callers must only commit
			// placements planned against the current schedule.  Surface the
			// inconsistency loudly.
			return fmt.Errorf("core: commit task %d of job %d: %w", i, job.ID, err)
		}
	}
	s.stat.Admitted++
	s.stat.ReservedArea += pl.Area()
	s.stat.QualitySum += job.Chains[pl.Chain].Quality
	if job.Tunable() {
		for len(s.stat.TunableChosen) <= pl.Chain {
			s.stat.TunableChosen = append(s.stat.TunableChosen, 0)
		}
		s.stat.TunableChosen[pl.Chain]++
	}
	if h := s.opts.Hooks; h != nil && h.Committed != nil {
		h.Committed(&job, pl)
	}
	return nil
}

// PlaceChain places one chain's tasks with the first task released at
// `release`, without committing anything.  It is the building block the
// arbitrator uses to re-plan the remaining suffix of an in-flight job
// during renegotiation.
func (s *Scheduler) PlaceChain(chain Chain, release float64) ([]TaskPlacement, bool) {
	return s.placeChain(chain, release)
}

// ReserveSlot commits a raw processor-time rectangle (used when
// re-admitting the already-running task of a job after a capacity change:
// non-preemptive tasks keep their slot verbatim or die).
func (s *Scheduler) ReserveSlot(procs int, start, finish float64) error {
	return s.prof.Reserve(procs, start, finish)
}

// ReservePlacement commits every task of a placement without touching
// admission statistics (renegotiation bookkeeping).
func (s *Scheduler) ReservePlacement(pl *Placement) error {
	for i, tp := range pl.Tasks {
		if err := s.prof.Reserve(tp.Procs, tp.Start, tp.Finish); err != nil {
			return fmt.Errorf("core: reserve placement task %d: %w", i, err)
		}
	}
	return nil
}

// chainKey carries the paper's tie-breaking criteria for one schedulable
// chain: earliest finish, then utilization over [release, finish], then the
// cumulative resource prefix, then chain order (implicit in scan order).
type chainKey struct {
	finish  float64
	util    float64
	area    float64   // total reserved area (for TieBreakMinArea)
	quality float64   // chain output quality (for TieBreakMaxQuality)
	prefix  []float64 // cumulative processor-time after each task
}

func (s *Scheduler) chainSortKey(pl *Placement, chain Chain, release float64) chainKey {
	finish := pl.Finish()
	window := finish - release
	var util float64
	if window > Eps {
		// Existing reservations in the window plus this chain's own area.
		util = (s.prof.BusyOn(maxTime(release, s.prof.Origin()), finish) + pl.Area()) /
			(float64(s.prof.Capacity()) * window)
	}
	prefix := make([]float64, len(pl.Tasks))
	var cum float64
	for i, tp := range pl.Tasks {
		cum += float64(tp.Procs) * tp.Duration()
		prefix[i] = cum
	}
	return chainKey{finish: finish, util: util, area: pl.Area(), quality: chain.Quality, prefix: prefix}
}

// better reports whether candidate key a beats the incumbent key b under the
// configured tie-break policy.  Strict inequality is required everywhere so
// that, on full ties, the earlier-declared chain wins (deterministic).
func (s *Scheduler) better(a, b chainKey) bool {
	switch s.opts.TieBreak {
	case TieBreakMinArea:
		if !timeEq(a.area, b.area) {
			return a.area < b.area
		}
		return timeLess(a.finish, b.finish)
	case TieBreakUtilFirst:
		if !timeEq(a.util, b.util) {
			return a.util > b.util
		}
		if c := comparePrefix(a.prefix, b.prefix); c != 0 {
			return c < 0
		}
		return timeLess(a.finish, b.finish)
	case TieBreakMaxQuality:
		if !timeEq(a.quality, b.quality) {
			return a.quality > b.quality
		}
		if !timeEq(a.finish, b.finish) {
			return a.finish < b.finish
		}
		if !timeEq(a.util, b.util) {
			return a.util > b.util
		}
		return comparePrefix(a.prefix, b.prefix) < 0
	default: // TieBreakPaper (and TieBreakFirstFit, which never reaches here)
		if !timeEq(a.finish, b.finish) {
			return a.finish < b.finish
		}
		if !timeEq(a.util, b.util) {
			return a.util > b.util
		}
		return comparePrefix(a.prefix, b.prefix) < 0
	}
}

// comparePrefix orders chains by "fewer total resources for some prefix of
// their tasks": cumulative processor-time is compared task by task and the
// chain that has consumed less at the first point of difference wins (it
// frees resources for near-term arrivals).  Returns -1, 0 or +1.
func comparePrefix(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !timeEq(a[i], b[i]) {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// earliestFit dispatches to the configured placement engine.
func (s *Scheduler) earliestFit(procs int, duration, est, deadline float64) (float64, bool) {
	return s.earliestFitOn(s.prof, procs, duration, est, deadline)
}

// earliestFitOn is earliestFit against an explicit profile (used for
// tentative DAG planning on a scratch copy).  Every call is one placement
// probe of the processor-time plane, counted in Stats.HolesProbed.
func (s *Scheduler) earliestFitOn(p *Profile, procs int, duration, est, deadline float64) (float64, bool) {
	s.stat.HolesProbed++
	if s.opts.Engine == EngineHoles {
		return p.EarliestFitHoles(procs, duration, est, deadline)
	}
	return p.EarliestFit(procs, duration, est, deadline)
}

// placeChain attempts to place every task of the chain, with the first task
// released at `release`.  Within one chain, successive tasks occupy disjoint
// time intervals (task i+1 starts no earlier than task i finishes), so
// placements can be evaluated against the uncommitted profile.
func (s *Scheduler) placeChain(chain Chain, release float64) ([]TaskPlacement, bool) {
	if s.opts.ChainPlacer == PlaceBacktrack {
		return s.placeChainBacktrack(chain, release)
	}
	out := make([]TaskPlacement, 0, len(chain.Tasks))
	est := release
	for i, t := range chain.Tasks {
		tp, ok := s.placeTask(t, i, est)
		if !ok {
			return nil, false
		}
		out = append(out, tp)
		est = tp.Finish
	}
	return out, true
}

// placeTask finds the earliest placement of a single task with earliest
// start est; for malleable tasks it also chooses the processor count.
func (s *Scheduler) placeTask(t Task, index int, est float64) (TaskPlacement, bool) {
	return s.placeTaskOn(s.prof, t, index, est)
}

// placeTaskOn is placeTask against an explicit profile.
func (s *Scheduler) placeTaskOn(p *Profile, t Task, index int, est float64) (TaskPlacement, bool) {
	if !t.Malleable {
		start, ok := s.earliestFitOn(p, t.Procs, t.Duration, est, t.Deadline)
		if !ok {
			return TaskPlacement{}, false
		}
		return TaskPlacement{Task: index, Start: start, Finish: start + t.Duration, Procs: t.Procs}, true
	}
	return s.placeMalleableOn(p, t, index, est)
}
