package core

import (
	"testing"
)

// twoChainJob offers a wide-fast chain and a narrow-slow chain.
func twoChainJob(id int, release float64) Job {
	return Job{ID: id, Release: release, Chains: []Chain{
		{Name: "wide", Quality: 1, Tasks: []Task{
			{Name: "t", Procs: 4, Duration: 10, Deadline: release + 40},
		}},
		{Name: "narrow", Quality: 0.5, Tasks: []Task{
			{Name: "t", Procs: 1, Duration: 30, Deadline: release + 40},
		}},
	}}
}

func TestStatsProbeAndChainCounters(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	if _, err := s.Admit(twoChainJob(1, 0)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ChainsTried != 2 {
		t.Fatalf("ChainsTried = %d, want 2", st.ChainsTried)
	}
	if st.HolesProbed < 2 { // at least one probe per chain
		t.Fatalf("HolesProbed = %d, want >= 2", st.HolesProbed)
	}
	if st.PlanFailures != 0 {
		t.Fatalf("PlanFailures = %d, want 0", st.PlanFailures)
	}

	// Saturate, then fail a rigid urgent job: counters keep growing.
	if _, err := s.Admit(Job{ID: 2, Chains: []Chain{
		{Quality: 1, Tasks: []Task{{Procs: 4, Duration: 100, Deadline: 110}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(Job{ID: 3, Chains: []Chain{
		{Quality: 1, Tasks: []Task{{Procs: 4, Duration: 5, Deadline: 20}}},
	}}); err == nil {
		t.Fatal("infeasible job admitted")
	}
	st = s.Stats()
	if st.ChainsTried != 4 {
		t.Fatalf("ChainsTried = %d, want 4", st.ChainsTried)
	}
	if st.PlanFailures != 1 {
		t.Fatalf("PlanFailures = %d, want 1", st.PlanFailures)
	}
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}

func TestStatsCountersEngineParity(t *testing.T) {
	// Both placement engines count probes at the same choke point, so the
	// per-chain bookkeeping must agree on ChainsTried (probe totals differ
	// because the engines enumerate different candidate sets).
	for _, engine := range []PlacementEngine{EngineProfile, EngineHoles} {
		s := NewScheduler(8, 0, &Options{Engine: engine})
		for i := 0; i < 6; i++ {
			s.Admit(twoChainJob(i, float64(i)*2))
		}
		st := s.Stats()
		if st.ChainsTried != 12 {
			t.Fatalf("engine %v: ChainsTried = %d, want 12", engine, st.ChainsTried)
		}
		if st.HolesProbed < st.ChainsTried {
			t.Fatalf("engine %v: HolesProbed = %d < ChainsTried = %d", engine, st.HolesProbed, st.ChainsTried)
		}
	}
}

// recordedEvent is one hook callback captured by the recording hooks.
type recordedEvent struct {
	kind   string
	job    int
	chain  int
	ok     bool
	reason string
}

func recordingHooks(log *[]recordedEvent) *Hooks {
	return &Hooks{
		AdmitStart: func(job *Job) {
			*log = append(*log, recordedEvent{kind: "start", job: job.ID})
		},
		ChainTried: func(job *Job, chain int, ok bool, finish float64) {
			*log = append(*log, recordedEvent{kind: "chain", job: job.ID, chain: chain, ok: ok})
		},
		HolesProbed: func(job *Job, chain, probes int) {
			*log = append(*log, recordedEvent{kind: "probes", job: job.ID, chain: chain, ok: probes > 0})
		},
		TieBreak: func(job *Job, winner, over int) {
			*log = append(*log, recordedEvent{kind: "tiebreak", job: job.ID, chain: winner})
		},
		Committed: func(job *Job, pl *Placement) {
			*log = append(*log, recordedEvent{kind: "committed", job: job.ID, chain: pl.Chain})
		},
		Rejected: func(job *Job, reason string) {
			*log = append(*log, recordedEvent{kind: "rejected", job: job.ID, reason: reason})
		},
		PlanFailure: func(job *Job) {
			*log = append(*log, recordedEvent{kind: "planfail", job: job.ID})
		},
	}
}

func TestHooksFireInAdmissionOrder(t *testing.T) {
	var log []recordedEvent
	s := NewScheduler(4, 0, &Options{Hooks: recordingHooks(&log)})
	if _, err := s.Admit(twoChainJob(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Expected: start, then per-chain (probes, chain), then committed.
	if len(log) < 4 {
		t.Fatalf("log = %+v", log)
	}
	if log[0].kind != "start" || log[0].job != 1 {
		t.Fatalf("first event = %+v, want start", log[0])
	}
	last := log[len(log)-1]
	if last.kind != "committed" || last.job != 1 {
		t.Fatalf("last event = %+v, want committed", last)
	}
	var chainEvents, probeEvents int
	for _, ev := range log {
		switch ev.kind {
		case "chain":
			chainEvents++
		case "probes":
			probeEvents++
		}
	}
	if chainEvents != 2 || probeEvents != 2 {
		t.Fatalf("chain/probe events = %d/%d, want 2/2: %+v", chainEvents, probeEvents, log)
	}
}

func TestHooksTieBreakFires(t *testing.T) {
	var log []recordedEvent
	s := NewScheduler(4, 0, &Options{Hooks: recordingHooks(&log)})
	// Order the chains so the second one wins the tie-break: the narrow
	// chain first (finishes at 30), the wide chain second (finishes at 10
	// with equal quality, displacing the incumbent).
	job := Job{ID: 1, Chains: []Chain{
		{Name: "narrow", Quality: 1, Tasks: []Task{{Procs: 1, Duration: 30, Deadline: 40}}},
		{Name: "wide", Quality: 1, Tasks: []Task{{Procs: 4, Duration: 10, Deadline: 40}}},
	}}
	pl, err := s.Admit(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chain != 1 {
		t.Fatalf("chosen chain = %d, want 1 (wide)", pl.Chain)
	}
	var sawTieBreak bool
	for _, ev := range log {
		if ev.kind == "tiebreak" && ev.chain == 1 {
			sawTieBreak = true
		}
	}
	if !sawTieBreak {
		t.Fatalf("no tie-break recorded: %+v", log)
	}
}

func TestHooksRejectionPath(t *testing.T) {
	var log []recordedEvent
	s := NewScheduler(2, 0, &Options{Hooks: recordingHooks(&log)})
	if _, err := s.Admit(Job{ID: 9, Chains: []Chain{
		{Quality: 1, Tasks: []Task{{Procs: 2, Duration: 10, Deadline: 5}}}, // impossible deadline
	}}); err == nil {
		t.Fatal("impossible job admitted")
	}
	var sawFail, sawReject bool
	for _, ev := range log {
		switch ev.kind {
		case "planfail":
			sawFail = true
		case "rejected":
			sawReject = true
			if ev.reason == "" {
				t.Fatal("rejection without a reason")
			}
		}
	}
	if !sawFail || !sawReject {
		t.Fatalf("planfail/rejected = %v/%v: %+v", sawFail, sawReject, log)
	}
}

func TestNilHooksAreSafe(t *testing.T) {
	// Options with a Hooks struct whose fields are nil: every call site
	// must nil-check the individual funcs.
	s := NewScheduler(4, 0, &Options{Hooks: &Hooks{}})
	if _, err := s.Admit(twoChainJob(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(Job{ID: 2, Chains: []Chain{
		{Quality: 1, Tasks: []Task{{Procs: 4, Duration: 5, Deadline: 1}}},
	}}); err == nil {
		t.Fatal("impossible job admitted")
	}
}
