package core_test

import (
	"testing"

	"milan/internal/core/proftest"
)

// FuzzProfileOps feeds byte-decoded operation sequences (see
// proftest.DecodeOps: 7 bytes per op — kind+jitter flags, procs, start,
// duration, deadline) through the indexed/linear profile pair and fails on
// any divergence in query answers, mutation outcomes, segment structure, or
// invariants.  The first input byte selects the machine capacity so the
// fuzzer also explores degenerate machines (capacity 1) and wide ones.
//
// Run with: go test -fuzz=FuzzProfileOps ./internal/core
// Seed corpus: internal/core/testdata/fuzz/FuzzProfileOps.
func FuzzProfileOps(f *testing.F) {
	// A fit-then-reserve, a probe of each kind, a trim, and an epsilon-
	// jittered reserve, at two capacities.
	f.Add([]byte{2, 0})
	f.Add([]byte{
		7,                            // capacity 8
		1, 3, 0x10, 0x20, 40, 0, 10, // ReserveFit
		4, 1, 0x10, 0x28, 20, 0xff, 0xff, // EarliestFit, infinite deadline
		3, 2, 0x00, 0x00, 10, 0, 0, // MinAvail
		5, 1, 0x05, 0x00, 5, 0, 99, // Holes
		2, 1, 0x08, 0x00, 1, 0, 0, // Trim
		0x08, 2, 0x10, 0x20, 12, 0, 7, // Reserve with +eps jitter on start
	})
	f.Add([]byte{
		0, // capacity 1
		1, 1, 0x00, 0x01, 200, 0xff, 0xff,
		1, 1, 0x00, 0x01, 200, 0xff, 0xff,
		6, 1, 0x7f, 0xff, 50, 0, 0, // Busy
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 4096 {
			t.Skip() // bound the cost of one input
		}
		capacity := 1 + int(data[0])%16
		ops := proftest.DecodeOps(data[1:], capacity)
		if len(ops) == 0 {
			return
		}
		proftest.Check(t, capacity, ops)
	})
}
