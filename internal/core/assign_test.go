package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignProcessorsSimple(t *testing.T) {
	placements := []*Placement{
		{JobID: 1, Tasks: []TaskPlacement{{Task: 0, Start: 0, Finish: 10, Procs: 2}}},
		{JobID: 2, Tasks: []TaskPlacement{{Task: 0, Start: 0, Finish: 5, Procs: 2}}},
		{JobID: 3, Tasks: []TaskPlacement{{Task: 0, Start: 5, Finish: 12, Procs: 2}}},
	}
	asn, err := AssignProcessors(4, placements)
	if err != nil {
		t.Fatal(err)
	}
	if len(asn) != 3 {
		t.Fatalf("got %d assignments, want 3", len(asn))
	}
	checkAssignments(t, 4, asn)
	// Job 3 reuses job 2's processors (released at t=5, lowest-ID-first).
	var j2, j3 []int
	for _, a := range asn {
		switch a.JobID {
		case 2:
			j2 = a.Procs
		case 3:
			j3 = a.Procs
		}
	}
	if len(j2) != 2 || len(j3) != 2 {
		t.Fatalf("j2=%v j3=%v", j2, j3)
	}
	for i := range j2 {
		if j2[i] != j3[i] {
			t.Errorf("job 3 did not reuse job 2's processors: %v vs %v", j3, j2)
		}
	}
}

func TestAssignProcessorsBackToBackReuse(t *testing.T) {
	// Half-open intervals: a task finishing at t frees processors for a
	// task starting at t, even at full machine width.
	placements := []*Placement{
		{JobID: 1, Tasks: []TaskPlacement{{Task: 0, Start: 0, Finish: 10, Procs: 4}}},
		{JobID: 2, Tasks: []TaskPlacement{{Task: 0, Start: 10, Finish: 20, Procs: 4}}},
	}
	asn, err := AssignProcessors(4, placements)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignments(t, 4, asn)
}

func TestAssignProcessorsDetectsOvercommit(t *testing.T) {
	placements := []*Placement{
		{JobID: 1, Tasks: []TaskPlacement{{Task: 0, Start: 0, Finish: 10, Procs: 3}}},
		{JobID: 2, Tasks: []TaskPlacement{{Task: 0, Start: 5, Finish: 15, Procs: 3}}},
	}
	if _, err := AssignProcessors(4, placements); err == nil {
		t.Fatal("overcommitted placements assigned without error")
	}
}

func TestAssignProcessorsRejectsBadCapacity(t *testing.T) {
	if _, err := AssignProcessors(0, nil); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestAssignProcessorsEmpty(t *testing.T) {
	asn, err := AssignProcessors(4, nil)
	if err != nil || len(asn) != 0 {
		t.Fatalf("empty input: asn=%v err=%v", asn, err)
	}
}

// TestQuickAssignmentsAlwaysFeasibleForValidSchedules: whatever the greedy
// scheduler admits can always be bound to concrete processors with no
// double-booking — the interval-coloring argument in the doc comment.
func TestQuickAssignmentsAlwaysFeasibleForValidSchedules(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 3 + rng.Intn(10)
		s := NewScheduler(capacity, 0, nil)
		var placements []*Placement
		release := 0.0
		for i := 0; i < 10+int(nRaw%50); i++ {
			release += rng.Float64() * 8
			dur := 1 + rng.Float64()*12
			job := Job{ID: i, Release: release, Chains: []Chain{
				{Tasks: []Task{
					{Procs: 1 + rng.Intn(capacity), Duration: dur, Deadline: release + dur*4},
					{Procs: 1 + rng.Intn(capacity), Duration: dur / 2, Deadline: release + dur*8},
				}},
			}}
			if pl, err := s.Admit(job); err == nil {
				placements = append(placements, pl)
			}
		}
		asn, err := AssignProcessors(capacity, placements)
		if err != nil {
			return false
		}
		return assignmentsDisjoint(capacity, asn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// checkAssignments fails the test if any processor is double-booked or any
// assignment is malformed.
func checkAssignments(t *testing.T, capacity int, asn []Assignment) {
	t.Helper()
	if !assignmentsDisjoint(capacity, asn) {
		t.Fatalf("assignments overlap: %+v", asn)
	}
}

func assignmentsDisjoint(capacity int, asn []Assignment) bool {
	for i, a := range asn {
		for _, id := range a.Procs {
			if id < 0 || id >= capacity {
				return false
			}
		}
		seen := map[int]bool{}
		for _, id := range a.Procs {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		for j := i + 1; j < len(asn); j++ {
			b := asn[j]
			if timeLeq(a.Finish, b.Start) || timeLeq(b.Finish, a.Start) {
				continue // no time overlap
			}
			for _, x := range a.Procs {
				for _, y := range b.Procs {
					if x == y {
						return false
					}
				}
			}
		}
	}
	return true
}
