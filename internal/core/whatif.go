package core

// Counterfactual what-if probes.
//
// A rejected job raises the question a tunability-aware resource manager
// exists to answer: what would it have taken to admit it?  WhatIf replans
// a job against a fork of the live schedule under an operator-specified
// delta — extra processors, extra deadline, a narrower width, a single
// candidate chain — without mutating any scheduler state.  The fork is a
// deep copy of the capacity profile (re-indexed, so probes stay
// near-logarithmic), with hooks, diagnosis and statistics stripped; the
// live scheduler is bit-identical before and after any number of probes
// (enforced by the proftest op-stream differencing property test).

// WhatIfDelta describes a counterfactual relaxation of an admission
// decision.  The zero value is "replan the job exactly as submitted".
type WhatIfDelta struct {
	// ExtraProcs grows (or, if negative, shrinks) the machine by this many
	// processors for the probe.  A shrink below the committed peak usage
	// makes the probe fail outright (reservations are never preempted).
	ExtraProcs int `json:"extra_procs,omitempty"`
	// ExtraDeadline uniformly extends every task deadline of the job by
	// this much (absolute deadlines move later; relative structure is
	// preserved).  Negative values tighten deadlines.
	ExtraDeadline float64 `json:"extra_deadline,omitempty"`
	// WidthCap, when positive, caps task width at WidthCap processors:
	// a non-malleable task wider than the cap is stretched at constant
	// area (Procs*Duration preserved, the tunability story of Section 5.4);
	// a malleable task has its degree of concurrency clamped.
	WidthCap int `json:"width_cap,omitempty"`
	// OnlyChain, when positive, restricts planning to the single candidate
	// chain with index OnlyChain-1 (1-based so the zero value means "all
	// chains", keeping the zero delta a no-op).
	OnlyChain int `json:"only_chain,omitempty"`
}

// IsZero reports whether the delta changes nothing.
func (d WhatIfDelta) IsZero() bool {
	return d.ExtraProcs == 0 && d.ExtraDeadline == 0 && d.WidthCap == 0 && d.OnlyChain == 0
}

// ApplyTo returns a copy of the job with the delta's job-side relaxations
// applied (deadline extension, width cap, chain restriction).  The input
// job is never modified; ExtraProcs is machine-side and handled by WhatIf.
func (d WhatIfDelta) ApplyTo(job Job) Job {
	out := job
	chains := job.Chains
	if d.OnlyChain > 0 && d.OnlyChain <= len(job.Chains) {
		chains = job.Chains[d.OnlyChain-1 : d.OnlyChain]
	}
	out.Chains = make([]Chain, len(chains))
	for i, c := range chains {
		cc := Chain{Name: c.Name, Quality: c.Quality, Tasks: make([]Task, len(c.Tasks))}
		for j, t := range c.Tasks {
			if d.ExtraDeadline != 0 {
				t.Deadline += d.ExtraDeadline
			}
			if d.WidthCap > 0 {
				if t.Malleable {
					if t.MaxProcs > d.WidthCap {
						t.MaxProcs = d.WidthCap
					}
				} else if t.Procs > d.WidthCap {
					area := float64(t.Procs) * t.Duration
					t.Procs = d.WidthCap
					t.Duration = area / float64(d.WidthCap)
				}
			}
			cc.Tasks[j] = t
		}
		out.Chains[i] = cc
	}
	return out
}

// Fork returns an isolated scratch copy of the scheduler: the capacity
// profile is deep-copied (with a fresh segment-tree index when the
// original is indexed), hooks and diagnosis callbacks are stripped, and
// statistics start from zero.  Planning on the fork never observes or
// affects the live schedule.
func (s *Scheduler) Fork() *Scheduler {
	o := s.opts
	o.Hooks = nil
	o.Diagnosis = nil
	return &Scheduler{prof: s.prof.Clone(), opts: o}
}

// WhatIf replans the job on a fork of the live schedule under the given
// delta, returning the placement the relaxed job would have received and
// whether it is admissible.  The live scheduler is not mutated, emits no
// hooks or diagnoses, and accumulates no statistics; with the profile
// index enabled (the default) each probe costs the same near-logarithmic
// work as a real planning pass.
func (s *Scheduler) WhatIf(job Job, d WhatIfDelta) (*Placement, bool) {
	return WhatIfOn(s.Fork(), job, d)
}

// WhatIfOn replays the job under the delta on an already-forked scratch
// scheduler (see Fork).  It exists so callers who must hold a lock only
// for the fork itself — e.g. a federated shard probing a counterfactual —
// can run the replanning outside their critical section.  The fork is
// consumed: its capacity may be altered by ExtraProcs.
func WhatIfOn(f *Scheduler, job Job, d WhatIfDelta) (*Placement, bool) {
	if d.ExtraProcs != 0 {
		c := f.prof.Capacity() + d.ExtraProcs
		if c < 1 || f.prof.SetCapacity(c) != nil {
			return nil, false // cannot shrink below committed reservations
		}
	}
	pl, ok := f.Plan(d.ApplyTo(job))
	if ok && d.OnlyChain > 0 {
		// Report the chain index in the caller's (unrestricted) numbering.
		pl.Chain = d.OnlyChain - 1
	}
	return pl, ok
}
