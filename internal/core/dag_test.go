package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic fork-join DAG:
//
//	  0 (prep)
//	 / \
//	1   2   (two independent analyses)
//	 \ /
//	  3 (merge)
func diamond(procs1, procs2 int, deadline float64) DAG {
	return DAG{
		Name: "diamond",
		Tasks: []DAGTask{
			{Task: Task{Name: "prep", Procs: 2, Duration: 5, Deadline: deadline}},
			{Task: Task{Name: "left", Procs: procs1, Duration: 10, Deadline: deadline}, Preds: []int{0}},
			{Task: Task{Name: "right", Procs: procs2, Duration: 10, Deadline: deadline}, Preds: []int{0}},
			{Task: Task{Name: "merge", Procs: 2, Duration: 5, Deadline: deadline}, Preds: []int{1, 2}},
		},
	}
}

func TestDAGValidate(t *testing.T) {
	if err := diamond(2, 2, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	empty := DAG{Name: "e"}
	if empty.Validate() == nil {
		t.Error("empty DAG accepted")
	}
	self := DAG{Name: "s", Tasks: []DAGTask{
		{Task: Task{Procs: 1, Duration: 1, Deadline: 5}, Preds: []int{0}},
	}}
	if self.Validate() == nil {
		t.Error("self-dependency accepted")
	}
	cyc := DAG{Name: "c", Tasks: []DAGTask{
		{Task: Task{Procs: 1, Duration: 1, Deadline: 5}, Preds: []int{1}},
		{Task: Task{Procs: 1, Duration: 1, Deadline: 5}, Preds: []int{0}},
	}}
	if cyc.Validate() == nil {
		t.Error("cycle accepted")
	}
	oob := DAG{Name: "o", Tasks: []DAGTask{
		{Task: Task{Procs: 1, Duration: 1, Deadline: 5}, Preds: []int{7}},
	}}
	if oob.Validate() == nil {
		t.Error("out-of-range predecessor accepted")
	}
}

func TestChainToDAGEquivalence(t *testing.T) {
	chain := Chain{Name: "c", Tasks: []Task{
		rect("a", 4, 10, 50),
		rect("b", 2, 5, 60),
	}}
	d := chain.DAG()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scheduling the linear DAG matches scheduling the chain.
	s1 := NewScheduler(8, 0, nil)
	chPl, err := s1.Admit(Job{ID: 1, Chains: []Chain{chain}})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewScheduler(8, 0, nil)
	dagPl, err := s2.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{d}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range chPl.Tasks {
		if !timeEq(chPl.Tasks[i].Start, dagPl.Tasks[i].Start) ||
			!timeEq(chPl.Tasks[i].Finish, dagPl.Tasks[i].Finish) {
			t.Fatalf("task %d: chain %+v vs dag %+v", i, chPl.Tasks[i], dagPl.Tasks[i])
		}
	}
}

func TestDAGParallelBranchesOverlap(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	pl, err := s.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{diamond(4, 4, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	// prep [0,5); both branches [5,15) concurrently; merge [15,20).
	if !timeEq(pl.Tasks[1].Start, 5) || !timeEq(pl.Tasks[2].Start, 5) {
		t.Fatalf("branches = %+v, %+v: not concurrent", pl.Tasks[1], pl.Tasks[2])
	}
	if !timeEq(pl.Tasks[3].Start, 15) {
		t.Fatalf("merge start = %v, want 15", pl.Tasks[3].Start)
	}
	// Makespan 20 < serial 30: real parallelism.
	if !timeEq(pl.Tasks[3].Finish, 20) {
		t.Fatalf("makespan = %v, want 20", pl.Tasks[3].Finish)
	}
}

func TestDAGBranchesSerializeWhenMachineTooNarrow(t *testing.T) {
	// Branches need 4+4 but the machine has 6: they must serialize.
	s := NewScheduler(6, 0, nil)
	pl, err := s.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{diamond(4, 4, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := pl.Tasks[1], pl.Tasks[2]
	overlap := minTime(b1.Finish, b2.Finish) - maxTime(b1.Start, b2.Start)
	if overlap > Eps {
		t.Fatalf("branches overlap by %v on a 6-proc machine: %+v %+v", overlap, b1, b2)
	}
	if !timeEq(pl.Tasks[3].Finish, 30) {
		t.Fatalf("makespan = %v, want 30 (serialized)", pl.Tasks[3].Finish)
	}
}

func TestDAGRespectsCapacityAgainstExistingLoad(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	mustAdmit(t, s, Job{ID: 0, Chains: []Chain{
		{Name: "bg", Tasks: []Task{rect("bg", 6, 12, 100)}},
	}})
	pl, err := s.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{diamond(4, 4, 200)}})
	if err != nil {
		t.Fatal(err)
	}
	// Validate via processor assignment on everything committed.
	bg := &Placement{JobID: 0, Tasks: []TaskPlacement{{Task: 0, Start: 0, Finish: 12, Procs: 6}}}
	if _, err := AssignProcessors(8, []*Placement{bg, pl}); err != nil {
		t.Fatalf("DAG placement overcommits: %v", err)
	}
}

func TestDAGJobRejectedOnDeadline(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	// Diamond needs >= 20 serial time on 4 procs (branches serialize);
	// a deadline of 22 is feasible, 18 is not.
	if _, err := s.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{diamond(4, 4, 18)}}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if _, err := s.AdmitDAG(DAGJob{ID: 2, Alts: []DAG{diamond(4, 4, 35)}}); err != nil {
		t.Fatal(err)
	}
}

func TestTunableDAGJobPicksFeasibleAlternative(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	wide := diamond(4, 4, 25)   // infeasible on 4 procs (makespan 30)
	narrow := diamond(2, 2, 25) // branches 2+2 overlap: makespan 20
	pl, err := s.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{wide, narrow}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chain != 1 {
		t.Fatalf("chose alt %d, want 1", pl.Chain)
	}
	st := s.Stats()
	if st.Admitted != 1 || len(st.TunableChosen) < 2 || st.TunableChosen[1] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDAGJobValidate(t *testing.T) {
	if (DAGJob{ID: 1}).Validate() == nil {
		t.Error("alternative-less job accepted")
	}
	j := DAGJob{ID: 1, Release: 50, Alts: []DAG{diamond(2, 2, 20)}}
	if j.Validate() == nil {
		t.Error("deadline before release accepted")
	}
}

func TestDAGWithMalleableTasks(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	d := DAG{
		Name: "mall",
		Tasks: []DAGTask{
			{Task: Task{Name: "a", Malleable: true, Work: 16, MaxProcs: 8, Deadline: 100}},
			{Task: Task{Name: "b", Malleable: true, Work: 16, MaxProcs: 8, Deadline: 100}, Preds: []int{0}},
		},
	}
	pl, err := s.AdmitDAG(DAGJob{ID: 1, Alts: []DAG{d}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tasks[0].Procs != 8 || !timeEq(pl.Tasks[1].Start, pl.Tasks[0].Finish) {
		t.Fatalf("placements = %+v", pl.Tasks)
	}
}

// TestQuickDAGPlacementsRespectPrecedenceAndCapacity: random DAGs admit
// only with valid precedence, deadlines and capacity.
func TestQuickDAGPlacementsRespectPrecedenceAndCapacity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + rng.Intn(8)
		s := NewScheduler(capacity, 0, nil)
		var placements []*Placement
		release := 0.0
		for j := 0; j < 8; j++ {
			release += rng.Float64() * 20
			n := 2 + int(nRaw)%5
			dag := DAG{Name: "r"}
			dl := release
			for i := 0; i < n; i++ {
				dl += 5 + rng.Float64()*30
				dt := DAGTask{Task: Task{
					Procs:    1 + rng.Intn(capacity),
					Duration: 1 + rng.Float64()*8,
					Deadline: dl,
				}}
				// Random predecessors among earlier tasks.
				for p := 0; p < i; p++ {
					if rng.Intn(3) == 0 {
						dt.Preds = append(dt.Preds, p)
					}
				}
				dag.Tasks = append(dag.Tasks, dt)
			}
			pl, err := s.AdmitDAG(DAGJob{ID: j, Release: release, Alts: []DAG{dag}})
			if errors.Is(err, ErrRejected) {
				continue
			}
			if err != nil {
				return false
			}
			// Precedence.
			for i, dt := range dag.Tasks {
				if timeLess(pl.Tasks[i].Start, release) {
					return false
				}
				if !timeLeq(pl.Tasks[i].Finish, dt.Deadline) {
					return false
				}
				for _, p := range dt.Preds {
					if timeLess(pl.Tasks[i].Start, pl.Tasks[p].Finish) {
						return false
					}
				}
			}
			placements = append(placements, pl)
		}
		// Capacity: everything admitted binds to concrete processors.
		_, err := AssignProcessors(capacity, placements)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
