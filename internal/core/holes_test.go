package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaximalHolesEmptyProfile(t *testing.T) {
	p := NewProfile(4, 0)
	holes := p.MaximalHoles(0)
	if len(holes) != 1 {
		t.Fatalf("got %d holes, want 1: %+v", len(holes), holes)
	}
	h := holes[0]
	if !timeEq(h.Start, 0) || !math.IsInf(h.End, 1) || h.Procs != 4 {
		t.Fatalf("hole = %+v, want {0, +inf, 4}", h)
	}
}

func TestMaximalHolesStaircase(t *testing.T) {
	// Usage: [0,10)=3, [10,20)=1, [20,inf)=0 on capacity 4.
	p := NewProfile(4, 0)
	mustReserve(t, p, 1, 0, 20)
	mustReserve(t, p, 2, 0, 10)
	holes := p.MaximalHoles(0)
	want := []Hole{
		{Start: 0, End: Inf, Procs: 1},
		{Start: 10, End: Inf, Procs: 3},
		{Start: 20, End: Inf, Procs: 4},
	}
	if len(holes) != len(want) {
		t.Fatalf("got %d holes %+v, want %d", len(holes), holes, len(want))
	}
	for i, w := range want {
		h := holes[i]
		if !timeEq(h.Start, w.Start) || !timeEq(h.End, w.End) || h.Procs != w.Procs {
			t.Errorf("hole %d = %+v, want %+v", i, h, w)
		}
	}
	if err := p.validateHoles(holes, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalHolesValley(t *testing.T) {
	// Usage: [0,5)=0, [5,10)=4, [10,inf)=0 on capacity 4: two disjoint full
	// holes plus no hole spanning the busy middle.
	p := NewProfile(4, 0)
	mustReserve(t, p, 4, 5, 10)
	holes := p.MaximalHoles(0)
	if len(holes) != 2 {
		t.Fatalf("got %d holes %+v, want 2", len(holes), holes)
	}
	if !timeEq(holes[0].Start, 0) || !timeEq(holes[0].End, 5) || holes[0].Procs != 4 {
		t.Errorf("holes[0] = %+v, want {0,5,4}", holes[0])
	}
	if !timeEq(holes[1].Start, 10) || !math.IsInf(holes[1].End, 1) || holes[1].Procs != 4 {
		t.Errorf("holes[1] = %+v, want {10,+inf,4}", holes[1])
	}
}

func TestMaximalHolesPartialValley(t *testing.T) {
	// Usage: [0,5)=0, [5,10)=2, [10,inf)=0 on capacity 4: the height-2 hole
	// spans everything; two height-4 holes on the sides.
	p := NewProfile(4, 0)
	mustReserve(t, p, 2, 5, 10)
	holes := p.MaximalHoles(0)
	if err := p.validateHoles(holes, 0); err != nil {
		t.Fatal(err)
	}
	if len(holes) != 3 {
		t.Fatalf("got %d holes %+v, want 3", len(holes), holes)
	}
	var sawSpanning bool
	for _, h := range holes {
		if h.Procs == 2 && timeEq(h.Start, 0) && math.IsInf(h.End, 1) {
			sawSpanning = true
		}
	}
	if !sawSpanning {
		t.Fatalf("missing spanning height-2 hole in %+v", holes)
	}
}

func TestMaximalHolesFromClipsStart(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 2, 5, 10)
	holes := p.MaximalHoles(7)
	for _, h := range holes {
		if timeLess(h.Start, 7) {
			t.Errorf("hole %+v starts before from=7", h)
		}
	}
}

func TestMaximalHolesSkipsFullSegments(t *testing.T) {
	p := NewProfile(2, 0)
	mustReserve(t, p, 2, 0, 10)
	holes := p.MaximalHoles(0)
	for _, h := range holes {
		if h.Procs < 1 {
			t.Errorf("zero-height hole %+v", h)
		}
		if timeLess(h.Start, 10) {
			t.Errorf("hole %+v overlaps fully-busy prefix", h)
		}
	}
}

// TestQuickHoleEngineMatchesProfileEngine: for random profiles and queries,
// the hole-based earliest fit agrees exactly with the segment-scan.
func TestQuickHoleEngineMatchesProfileEngine(t *testing.T) {
	f := func(seed int64, capRaw, nRaw, pRaw uint8, durRaw, estRaw, dlRaw uint16) bool {
		capacity := 1 + int(capRaw%8)
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng, capacity, int(nRaw%32))
		procs := 1 + int(pRaw)%capacity
		dur := 0.25 + float64(durRaw%300)/10
		est := float64(estRaw % 800)
		deadline := est + float64(dlRaw%1200)/2
		s1, ok1 := p.EarliestFit(procs, dur, est, deadline)
		s2, ok2 := p.EarliestFitHoles(procs, dur, est, deadline)
		if ok1 != ok2 {
			t.Logf("profile=(%v,%v) holes=(%v,%v) query p=%d d=%v est=%v dl=%v\n%s",
				s1, ok1, s2, ok2, procs, dur, est, deadline, p)
			return false
		}
		if ok1 && !timeEq(s1, s2) {
			t.Logf("profile=%v holes=%v query p=%d d=%v est=%v dl=%v\n%s",
				s1, s2, procs, dur, est, deadline, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHolesAreValidAndMaximal: every enumerated hole is truly free and
// no hole is strictly contained in another.
func TestQuickHolesAreValidAndMaximal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng, 6, int(nRaw%40))
		holes := p.MaximalHoles(0)
		return p.validateHoles(holes, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEveryFreeSlotInSomeHole: any (start, duration, procs) slot that
// the profile reports as free is covered by at least one maximal hole.
func TestQuickEveryFreeSlotInSomeHole(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8, sRaw, dRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 6
		p := randomProfile(rng, capacity, int(nRaw%40))
		procs := 1 + int(pRaw)%capacity
		start := float64(sRaw % 500)
		dur := 0.5 + float64(dRaw%100)/4
		if p.MinAvailOn(start, start+dur) < procs {
			return true // not a free slot; nothing to check
		}
		for _, h := range p.MaximalHoles(0) {
			if h.Procs >= procs && timeLeq(h.Start, start) && timeLeq(start+dur, h.End) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
