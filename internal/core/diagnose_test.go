package core

import (
	"math/rand"
	"testing"
)

// rigid returns a one-task chain demanding procs×duration due by deadline.
func rigid(procs int, duration, deadline float64) Chain {
	return Chain{Tasks: []Task{{Procs: procs, Duration: duration, Deadline: deadline}}}
}

func TestDiagnoseWidthConstraint(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	job := Job{ID: 1, Chains: []Chain{rigid(8, 5, 100)}}
	if _, ok := s.Plan(job); ok {
		t.Fatalf("job wider than machine planned")
	}
	d := s.Diagnose(job)
	cd := d.Chains[0]
	if cd.Schedulable || cd.FailedTask != 0 {
		t.Fatalf("expected task 0 failure, got %+v", cd)
	}
	if cd.Constraint != ConstraintWidth {
		t.Fatalf("constraint = %q, want width", cd.Constraint)
	}
	if cd.Slack.ExtraDeadline != 0 {
		t.Fatalf("deadline slack %v for a width-bound job", cd.Slack.ExtraDeadline)
	}
	if cd.Slack.ExtraProcs != 4 {
		t.Fatalf("extra procs = %d, want 4 (8-wide task on a 4-wide machine)", cd.Slack.ExtraProcs)
	}
	if cd.Slack.ReducedWidth == 0 {
		t.Fatalf("narrowing an 8-wide task onto a 4-wide idle machine must help")
	}
	if d.Suggestion == nil {
		t.Fatalf("no suggestion for an admissible-after-relaxation job")
	}
}

func TestDiagnoseDeadlineConstraint(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	// Window [0, 3) is intrinsically too short for a 5-long task.
	job := Job{ID: 2, Chains: []Chain{rigid(2, 5, 3)}}
	d := s.Diagnose(job)
	cd := d.Chains[0]
	if cd.Constraint != ConstraintDeadline {
		t.Fatalf("constraint = %q, want deadline", cd.Constraint)
	}
	if got, want := cd.Slack.ExtraDeadline, 2.0; !timeEq(got, want) {
		t.Fatalf("extra deadline = %v, want %v", got, want)
	}
	if cd.Slack.ExtraProcs != 0 {
		t.Fatalf("proc slack %d for an intrinsically deadline-bound job", cd.Slack.ExtraProcs)
	}
}

func TestDiagnoseCapacityConstraint(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	// Fill 3 of 4 procs over [0, 10): a 2-wide task due by 8 cannot fit.
	if err := s.ReserveSlot(3, 0, 10); err != nil {
		t.Fatal(err)
	}
	job := Job{ID: 3, Chains: []Chain{rigid(2, 4, 8)}}
	if _, ok := s.Plan(job); ok {
		t.Fatalf("job planned despite the blockade")
	}
	d := s.Diagnose(job)
	cd := d.Chains[0]
	if cd.Constraint != ConstraintCapacity {
		t.Fatalf("constraint = %q, want capacity", cd.Constraint)
	}
	// Near-miss: the plane offers width 1 over [0, 8] for a 4-long window.
	if cd.AvailProcs != 1 {
		t.Fatalf("avail procs = %d, want 1 (one proc free under the blockade)", cd.AvailProcs)
	}
	if cd.WantProcs != 2 {
		t.Fatalf("want procs = %d, want 2", cd.WantProcs)
	}
	// One extra processor admits it (2 free ≥ 2 wide).
	if cd.Slack.ExtraProcs != 1 {
		t.Fatalf("extra procs = %d, want 1", cd.Slack.ExtraProcs)
	}
	// Deadline slack: unbounded replay starts at 10, finishes 14; 14-8=6.
	if got, want := cd.Slack.ExtraDeadline, 6.0; !timeEq(got, want) {
		t.Fatalf("extra deadline = %v, want %v", got, want)
	}
	// Width 1 for 8 time units fits in [0, 8) under the blockade.
	if cd.Slack.ReducedWidth != 1 {
		t.Fatalf("reduced width = %d, want 1", cd.Slack.ReducedWidth)
	}
}

func TestDiagnoseEmittedOnlyOnFailure(t *testing.T) {
	var got []*PlanDiagnosis
	opts := &Options{Diagnosis: func(d *PlanDiagnosis) { got = append(got, d) }}
	s := NewScheduler(4, 0, opts)
	if _, err := s.Admit(Job{ID: 1, Chains: []Chain{rigid(2, 5, 100)}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("diagnosis emitted for an admitted job")
	}
	if _, err := s.Admit(Job{ID: 2, Chains: []Chain{rigid(8, 5, 100)}}); err == nil {
		t.Fatalf("8-wide job admitted on a 4-wide machine")
	}
	if len(got) != 1 || got[0].JobID != 2 {
		t.Fatalf("expected one diagnosis for job 2, got %+v", got)
	}
}

// TestDiagnoseClosedLoop is the core half of the closed-loop acceptance
// criterion: for a storm of random rejected jobs, every diagnosis carries
// a suggestion, and replaying that suggestion via WhatIf flips the job to
// admitted.
func TestDiagnoseClosedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewScheduler(8, 0, nil)
	rejected, suggested := 0, 0
	for i := 0; i < 400; i++ {
		release := rng.Float64() * 200
		nTasks := 1 + rng.Intn(3)
		var tasks []Task
		deadline := release
		for k := 0; k < nTasks; k++ {
			dur := 0.5 + rng.Float64()*8
			deadline += dur * (0.3 + rng.Float64()) // often too tight
			tasks = append(tasks, Task{
				Procs:    1 + rng.Intn(12), // sometimes wider than the machine
				Duration: dur,
				Deadline: deadline,
			})
		}
		job := Job{ID: i, Release: release, Chains: []Chain{{Tasks: tasks}}}
		if job.Validate() != nil {
			continue
		}
		if pl, ok := s.Plan(job); ok {
			if err := s.Commit(job, pl); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rejected++
		d := s.Diagnose(job)
		if d.Suggestion == nil {
			t.Fatalf("job %d: rejected with no suggestion: %+v", i, d.Chains)
		}
		suggested++
		if _, ok := s.WhatIf(job, *d.Suggestion); !ok {
			t.Fatalf("job %d: suggestion %+v does not admit the job", i, *d.Suggestion)
		}
	}
	if rejected < 20 {
		t.Fatalf("storm produced only %d rejections; tighten the generator", rejected)
	}
	if suggested != rejected {
		t.Fatalf("%d rejections but %d suggestions", rejected, suggested)
	}
}

// TestDiagnoseTunableChains checks per-candidate-chain diagnoses on a
// tunable job whose chains fail for different reasons.
func TestDiagnoseTunableChains(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	if err := s.ReserveSlot(4, 0, 6); err != nil {
		t.Fatal(err)
	}
	job := Job{ID: 9, Chains: []Chain{
		rigid(8, 2, 100), // chain 0: wider than the machine
		rigid(2, 3, 5),   // chain 1: blocked by the full reservation until 6
	}}
	if _, ok := s.Plan(job); ok {
		t.Fatalf("job planned")
	}
	d := s.Diagnose(job)
	if len(d.Chains) != 2 {
		t.Fatalf("diagnosed %d chains, want 2", len(d.Chains))
	}
	if d.Chains[0].Constraint != ConstraintWidth {
		t.Fatalf("chain 0 constraint = %q, want width", d.Chains[0].Constraint)
	}
	if d.Chains[1].Constraint != ConstraintCapacity {
		t.Fatalf("chain 1 constraint = %q, want capacity", d.Chains[1].Constraint)
	}
	// Chain 1 needs the machine free at 6: +4 deadline admits it.
	if got, want := d.Chains[1].Slack.ExtraDeadline, 4.0; !timeEq(got, want) {
		t.Fatalf("chain 1 extra deadline = %v, want %v", got, want)
	}
	// The suggestion must prefer the cheap deadline extension on chain 1.
	if d.Suggestion == nil || d.Suggestion.ExtraDeadline == 0 || d.Suggestion.OnlyChain != 2 {
		t.Fatalf("suggestion = %+v, want deadline extension on chain 2 (1-based)", d.Suggestion)
	}
	if _, ok := s.WhatIf(job, *d.Suggestion); !ok {
		t.Fatalf("suggestion does not admit the job")
	}
}

func TestDiagnoseMalleable(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	if err := s.ReserveSlot(3, 0, 10); err != nil {
		t.Fatal(err)
	}
	// Malleable task: 12 units of work, up to 4 procs, due by 5.  Under the
	// blockade only 1 proc is free: needs 12 time units, has 5.
	job := Job{ID: 4, Chains: []Chain{{Tasks: []Task{
		{Malleable: true, Work: 12, MaxProcs: 4, Deadline: 5},
	}}}}
	if _, ok := s.Plan(job); ok {
		t.Fatalf("job planned despite the blockade")
	}
	d := s.Diagnose(job)
	cd := d.Chains[0]
	if cd.Constraint != ConstraintCapacity {
		t.Fatalf("constraint = %q, want capacity (idle machine would finish 12/4=3 <= 5)", cd.Constraint)
	}
	if cd.Slack.ReducedWidth != 0 {
		t.Fatalf("width slack %d on a malleable task", cd.Slack.ReducedWidth)
	}
	if cd.Slack.ExtraProcs == 0 {
		t.Fatalf("machine growth must admit an intrinsically feasible malleable task")
	}
	if d.Suggestion == nil {
		t.Fatalf("no suggestion")
	}
	if _, ok := s.WhatIf(job, *d.Suggestion); !ok {
		t.Fatalf("suggestion %+v does not admit", *d.Suggestion)
	}
}
