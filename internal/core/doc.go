// Package core implements the scheduling model of the MILAN QoS arbitrator:
// dynamic admission control and placement of parallel real-time jobs on a
// fixed set of homogeneous processors.
//
// A job is a chain of non-preemptible tasks; a tunable job carries several
// alternative chains (the enumerated paths of its OR task graph) and the
// scheduler is free to pick any one of them.  Each task either has a fixed
// rectangular resource requirement (Procs processors for Duration time) or is
// malleable (Work processor-time units on up to MaxProcs processors with
// linear speedup).  Task deadlines are absolute: a task and all of its
// predecessors must finish by the task's deadline.
//
// The scheduler is the greedy first-fit heuristic of Section 5.2 of the
// paper: it tracks the available maximal holes in the processor-time plane,
// places each task of a candidate chain at its earliest feasible start time,
// admits a job iff at least one of its chains fits entirely, and breaks ties
// between schedulable chains in favor of earliest finish time, then higher
// utilization over the job's [release, finish] window, then a
// lexicographically smaller cumulative resource prefix.
package core
