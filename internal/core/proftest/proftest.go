// Package proftest is the differential test harness for the processor-time
// profile: it drives identical randomized operation sequences through two
// core.Profile instances — one carrying the segment-tree index, one on the
// linear reference path — and asserts exact agreement on every query and
// every piece of observable state.  A scheduler that is fast but wrong is
// worthless; this harness is what lets the indexed path be the default.
//
// The harness has three layers:
//
//	Op / RandomOps / DecodeOps — an operation vocabulary (reserve, trim,
//	probe, migration-shaped capacity steps) with generators for seeded
//	random streams and for byte-decoded
//	fuzzing inputs, including sub-epsilon time jitter to stress the
//	Eps-tolerant boundary predicates.
//
//	Harness.Diff — replays a sequence against the indexed/linear pair and
//	returns the index of the first divergent operation.
//
//	Harness.Shrink — on failure, truncates to the smallest failing prefix
//	and then greedily drops earlier operations while the divergence
//	reproduces, yielding a minimal replayable counterexample.
package proftest

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"milan/internal/core"
)

// OpKind enumerates the operations the harness can replay.
type OpKind uint8

const (
	// OpReserve calls Reserve(Procs, A, A+B) on both profiles and
	// compares success/failure.
	OpReserve OpKind = iota
	// OpReserveFit finds EarliestFit(Procs, B, A, +inf), compares the
	// slots, and commits the reservation on both profiles.  This is the
	// scheduler's actual allocation pattern and keeps the profiles densely
	// populated.
	OpReserveFit
	// OpTrim calls TrimBefore(A) on both profiles.
	OpTrim
	// OpMinAvail compares MinAvailOn(A, A+B).
	OpMinAvail
	// OpEarliestFit compares EarliestFit(Procs, B, A, C).
	OpEarliestFit
	// OpHoles compares the full MaximalHoles(A) enumeration element-wise
	// and the derived EarliestFitHoles(Procs, B, A, C) answer.
	OpHoles
	// OpBusy compares BusyUpTo(A) and BusyOn(A, A+B).
	OpBusy
	// OpSetCapacity resizes both profiles to Procs + floor(B/5) processors
	// (shrink-or-grow, migration-shaped capacity steps as performed by the
	// federated admission plane's rebalancer) and compares success/failure.
	// Shrinking below committed peak usage must fail identically on both.
	OpSetCapacity

	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpReserve:
		return "Reserve"
	case OpReserveFit:
		return "ReserveFit"
	case OpTrim:
		return "Trim"
	case OpMinAvail:
		return "MinAvail"
	case OpEarliestFit:
		return "EarliestFit"
	case OpHoles:
		return "Holes"
	case OpBusy:
		return "Busy"
	case OpSetCapacity:
		return "SetCapacity"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one replayable operation.  The meaning of Procs/A/B/C depends on
// Kind (see the OpKind constants).
type Op struct {
	Kind  OpKind
	Procs int
	A     float64 // start / trim point / window start
	B     float64 // duration / window length
	C     float64 // deadline (EarliestFit, Holes)
}

func (o Op) String() string {
	return fmt.Sprintf("{%s procs=%d A=%.12g B=%.12g C=%.12g}", o.Kind, o.Procs, o.A, o.B, o.C)
}

// jitterEps is the sub-tolerance perturbation applied to generated times to
// stress the Eps boundary predicates (well below core's 1e-9 tolerance so
// jittered times still dedup against their base breakpoints).
const jitterEps = 4e-10

// RandomOps returns n operations drawn from rng for a machine of the given
// capacity.  Roughly half the stream mutates (fit-then-reserve, raw
// reserves, trims); the rest probes.  A tenth of all times carry sub-epsilon
// jitter.
func RandomOps(rng *rand.Rand, n, capacity int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		var op Op
		op.Procs = 1 + rng.Intn(capacity)
		op.A = rng.Float64() * 150
		op.B = 0.05 + rng.Float64()*25
		switch r := rng.Float64(); {
		case r < 0.30:
			op.Kind = OpReserveFit
		case r < 0.45:
			op.Kind = OpReserve
		case r < 0.55:
			op.Kind = OpTrim
		case r < 0.58:
			op.Kind = OpSetCapacity
		case r < 0.70:
			op.Kind = OpMinAvail
		case r < 0.85:
			op.Kind = OpEarliestFit
		case r < 0.95:
			op.Kind = OpHoles
		default:
			op.Kind = OpBusy
		}
		op.C = op.A + op.B + rng.Float64()*60
		if rng.Intn(4) == 0 {
			op.C = math.Inf(1)
		}
		if rng.Intn(10) == 0 {
			op.A += (rng.Float64()*2 - 1) * jitterEps
		}
		if rng.Intn(10) == 0 {
			op.B += rng.Float64() * jitterEps
		}
		ops = append(ops, op)
	}
	return ops
}

// opBytes is the encoded size of one operation in a fuzz input.
const opBytes = 7

// DecodeOps decodes a fuzzer-controlled byte stream into operations: 7
// bytes per op (kind+jitter flags, procs, 2-byte start, 1-byte duration,
// 2-byte deadline offset).  Trailing partial records are dropped.  The
// encoding is total — every byte string is a valid op sequence — so the
// fuzzer explores the full operation space without a rejection loop.
func DecodeOps(data []byte, capacity int) []Op {
	ops := make([]Op, 0, len(data)/opBytes)
	for len(data) >= opBytes {
		b := data[:opBytes]
		data = data[opBytes:]
		op := Op{
			Kind:  OpKind(b[0] & 0x07 % uint8(numOpKinds)),
			Procs: 1 + int(b[1])%capacity,
		}
		op.A = float64(uint16(b[2])<<8|uint16(b[3])) / 65535 * 150
		op.B = 0.05 + float64(b[4])/255*25
		dl := uint16(b[5])<<8 | uint16(b[6])
		if dl == 65535 {
			op.C = math.Inf(1)
		} else {
			op.C = op.A + op.B + float64(dl)/65535*60
		}
		if b[0]&0x08 != 0 {
			op.A += jitterEps
		}
		if b[0]&0x10 != 0 {
			op.A -= jitterEps
		}
		if b[0]&0x20 != 0 {
			op.B += jitterEps
		}
		ops = append(ops, op)
	}
	return ops
}

// Harness replays operation sequences against an indexed/linear profile
// pair.
type Harness struct {
	// Capacity is the machine size of both profiles.
	Capacity int
	// corrupt, when non-nil, mutates the pair after the numbered
	// operation.  Test-only fault injection so the shrinker itself can be
	// exercised against a reproducible divergence.
	corrupt func(i int, indexed, linear *core.Profile)
}

// Diff replays ops against a fresh indexed/linear pair and returns the
// index of the first operation whose outcome (query answer, mutation
// success, or resulting profile state) diverges, with a description.  It
// returns (-1, "") when the whole sequence agrees.
func (h Harness) Diff(ops []Op) (int, string) {
	pi := core.NewProfile(h.Capacity, 0)
	pi.EnableIndex()
	pl := core.NewProfile(h.Capacity, 0)
	for i, op := range ops {
		if desc := applyBoth(pi, pl, op); desc != "" {
			return i, desc
		}
		if h.corrupt != nil {
			h.corrupt(i, pi, pl)
		}
		if desc := compareState(pi, pl); desc != "" {
			return i, desc
		}
	}
	return -1, ""
}

// applyBoth executes one operation on both profiles and compares the
// directly observable outcome.  It returns a non-empty description on
// divergence.
func applyBoth(pi, pl *core.Profile, op Op) string {
	switch op.Kind {
	case OpReserve:
		ei := pi.Reserve(op.Procs, op.A, op.A+op.B)
		el := pl.Reserve(op.Procs, op.A, op.A+op.B)
		if (ei == nil) != (el == nil) {
			return fmt.Sprintf("Reserve: indexed err=%v, linear err=%v", ei, el)
		}
	case OpReserveFit:
		si, oki := pi.EarliestFit(op.Procs, op.B, op.A, math.Inf(1))
		sl, okl := pl.EarliestFit(op.Procs, op.B, op.A, math.Inf(1))
		if oki != okl || si != sl {
			return fmt.Sprintf("ReserveFit probe: indexed (%.17g,%v), linear (%.17g,%v)", si, oki, sl, okl)
		}
		if oki {
			ei := pi.Reserve(op.Procs, si, si+op.B)
			el := pl.Reserve(op.Procs, sl, sl+op.B)
			if (ei == nil) != (el == nil) {
				return fmt.Sprintf("ReserveFit commit: indexed err=%v, linear err=%v", ei, el)
			}
		}
	case OpTrim:
		pi.TrimBefore(op.A)
		pl.TrimBefore(op.A)
	case OpMinAvail:
		mi := pi.MinAvailOn(op.A, op.A+op.B)
		ml := pl.MinAvailOn(op.A, op.A+op.B)
		if mi != ml {
			return fmt.Sprintf("MinAvailOn(%.17g,%.17g): indexed %d, linear %d", op.A, op.A+op.B, mi, ml)
		}
	case OpEarliestFit:
		si, oki := pi.EarliestFit(op.Procs, op.B, op.A, op.C)
		sl, okl := pl.EarliestFit(op.Procs, op.B, op.A, op.C)
		if oki != okl || si != sl {
			return fmt.Sprintf("EarliestFit(%d,%.17g,%.17g,%.17g): indexed (%.17g,%v), linear (%.17g,%v)",
				op.Procs, op.B, op.A, op.C, si, oki, sl, okl)
		}
	case OpHoles:
		hi := pi.MaximalHoles(op.A)
		hl := pl.MaximalHoles(op.A)
		if desc := compareHoles(hi, hl); desc != "" {
			return fmt.Sprintf("MaximalHoles(%.17g): %s", op.A, desc)
		}
		si, oki := pi.EarliestFitHoles(op.Procs, op.B, op.A, op.C)
		sl, okl := pl.EarliestFitHoles(op.Procs, op.B, op.A, op.C)
		if oki != okl || si != sl {
			return fmt.Sprintf("EarliestFitHoles: indexed (%.17g,%v), linear (%.17g,%v)", si, oki, sl, okl)
		}
	case OpBusy:
		bi, bl := pi.BusyUpTo(op.A), pl.BusyUpTo(op.A)
		if bi != bl {
			return fmt.Sprintf("BusyUpTo(%.17g): indexed %.17g, linear %.17g", op.A, bi, bl)
		}
		oi, ol := pi.BusyOn(op.A, op.A+op.B), pl.BusyOn(op.A, op.A+op.B)
		if oi != ol {
			return fmt.Sprintf("BusyOn: indexed %.17g, linear %.17g", oi, ol)
		}
	case OpSetCapacity:
		newCap := op.Procs + int(op.B/5)
		ei := pi.SetCapacity(newCap)
		el := pl.SetCapacity(newCap)
		if (ei == nil) != (el == nil) {
			return fmt.Sprintf("SetCapacity(%d): indexed err=%v, linear err=%v", newCap, ei, el)
		}
	}
	return ""
}

// compareState checks both profiles' invariants and their full observable
// state (segment structure via String, segment count, last breakpoint).
func compareState(pi, pl *core.Profile) string {
	if err := pi.CheckInvariants(); err != nil {
		return fmt.Sprintf("indexed invariants: %v", err)
	}
	if err := pl.CheckInvariants(); err != nil {
		return fmt.Sprintf("linear invariants: %v", err)
	}
	if pi.Segments() != pl.Segments() {
		return fmt.Sprintf("segment count: indexed %d, linear %d", pi.Segments(), pl.Segments())
	}
	if pi.LastBreak() != pl.LastBreak() {
		return fmt.Sprintf("last break: indexed %.17g, linear %.17g", pi.LastBreak(), pl.LastBreak())
	}
	if si, sl := pi.String(), pl.String(); si != sl {
		return fmt.Sprintf("state: indexed %s, linear %s", si, sl)
	}
	return ""
}

// compareHoles compares two hole enumerations for exact equality.
func compareHoles(a, b []core.Hole) string {
	if len(a) != len(b) {
		return fmt.Sprintf("count: indexed %d, linear %d", len(a), len(b))
	}
	for i := range a {
		sameEnd := a[i].End == b[i].End || (math.IsInf(a[i].End, 1) && math.IsInf(b[i].End, 1))
		if a[i].Start != b[i].Start || !sameEnd || a[i].Procs != b[i].Procs {
			return fmt.Sprintf("hole %d: indexed %+v, linear %+v", i, a[i], b[i])
		}
	}
	return ""
}

// Shrink reduces a failing sequence to a minimal reproduction: first the
// smallest failing prefix (replay up to and including the first divergent
// operation), then repeated greedy passes dropping any earlier operation
// whose removal preserves the divergence.  It returns the reduced sequence
// and the divergence description, or nil when ops does not fail at all.
func (h Harness) Shrink(ops []Op) ([]Op, string) {
	k, desc := h.Diff(ops)
	if k < 0 {
		return nil, ""
	}
	ops = append([]Op(nil), ops[:k+1]...) // smallest failing prefix
	for {
		shrunk := false
		for i := 0; i < len(ops)-1; i++ {
			cand := make([]Op, 0, len(ops)-1)
			cand = append(cand, ops[:i]...)
			cand = append(cand, ops[i+1:]...)
			if j, d := h.Diff(cand); j >= 0 {
				ops = cand[:j+1]
				desc = d
				shrunk = true
				break
			}
		}
		if !shrunk {
			return ops, desc
		}
	}
}

// Check replays ops and fails tb with a shrunken, replayable
// counterexample on any divergence.
func Check(tb testing.TB, capacity int, ops []Op) {
	tb.Helper()
	h := Harness{Capacity: capacity}
	if k, desc := h.Diff(ops); k >= 0 {
		small, sdesc := h.Shrink(ops)
		var b strings.Builder
		fmt.Fprintf(&b, "indexed/linear profile divergence at op %d (capacity %d): %s\n", k, capacity, desc)
		fmt.Fprintf(&b, "shrunk to %d ops: %s\nreplay:\n", len(small), sdesc)
		for _, op := range small {
			fmt.Fprintf(&b, "  %s\n", op)
		}
		tb.Fatal(b.String())
	}
}
