package proftest

import (
	"fmt"

	"milan/internal/core"
)

// CompareProfiles is the harness's state oracle as an exported predicate:
// both profiles must satisfy their structural invariants and agree exactly
// on every piece of observable state (segment count, final breakpoint and
// the full rendered segment list — float64s compared by their printed
// bits).  The durable admission plane's crash-recovery differential uses it
// to assert a recovered profile is indistinguishable from the never-crashed
// reference.
func CompareProfiles(got, want *core.Profile) error {
	if desc := compareState(got, want); desc != "" {
		return fmt.Errorf("proftest: profiles diverge: %s", desc)
	}
	return nil
}
