package proftest

import (
	"math"
	"math/rand"
	"testing"

	"milan/internal/core"
)

// TestRandomOpsCoverKinds: the generator emits every operation kind and
// both mutating and probing ops.
func TestRandomOpsCoverKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := RandomOps(rng, 2000, 8)
	var seen [numOpKinds]int
	for _, op := range ops {
		seen[op.Kind]++
		if op.Procs < 1 || op.Procs > 8 {
			t.Fatalf("op procs %d out of range", op.Procs)
		}
	}
	for k, n := range seen {
		if n == 0 {
			t.Errorf("kind %v never generated", OpKind(k))
		}
	}
}

// TestDecodeOpsTotal: every byte string decodes without panicking, records
// are 7 bytes, and the decoded values stay in the harness's domain.
func TestDecodeOpsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		for _, op := range DecodeOps(buf, 6) {
			if op.Kind >= numOpKinds {
				t.Fatalf("decoded kind %d out of range", op.Kind)
			}
			if op.Procs < 1 || op.Procs > 6 {
				t.Fatalf("decoded procs %d out of range", op.Procs)
			}
			if op.A < -1 || op.A > 200 || op.B <= 0 {
				t.Fatalf("decoded times out of domain: %v", op)
			}
			if !math.IsInf(op.C, 1) && op.C < op.A+op.B-1e-9 {
				t.Fatalf("decoded deadline before window end: %v", op)
			}
		}
	}
	if got := len(DecodeOps(make([]byte, 13), 4)); got != 1 {
		t.Fatalf("13 bytes decoded to %d ops, want 1 (trailing partial dropped)", got)
	}
}

// TestDiffAgreesOnRandomStreams: sanity that the harness itself reports
// agreement for healthy implementations across a spread of capacities.
func TestDiffAgreesOnRandomStreams(t *testing.T) {
	for _, capacity := range []int{1, 3, 16} {
		h := Harness{Capacity: capacity}
		rng := rand.New(rand.NewSource(int64(capacity)))
		if k, desc := h.Diff(RandomOps(rng, 500, capacity)); k >= 0 {
			t.Fatalf("capacity %d: unexpected divergence at %d: %s", capacity, k, desc)
		}
	}
}

// TestShrinkFindsMinimalRepro: inject a fault (an extra reservation applied
// to the indexed profile only, after the 40th op) and check that the
// shrinker reduces the 300-op failing stream to a handful of ops while
// still reproducing a divergence.
func TestShrinkFindsMinimalRepro(t *testing.T) {
	h := Harness{
		Capacity: 8,
		corrupt: func(i int, indexed, linear *core.Profile) {
			if i == 40 {
				if s, ok := indexed.EarliestFit(1, 5, 0, math.Inf(1)); ok {
					_ = indexed.Reserve(1, s, s+5)
				}
			}
		},
	}
	rng := rand.New(rand.NewSource(3))
	ops := RandomOps(rng, 300, 8)
	k, _ := h.Diff(ops)
	if k < 0 {
		t.Fatal("fault injection produced no divergence")
	}
	small, desc := h.Shrink(ops)
	if len(small) == 0 || desc == "" {
		t.Fatal("shrinker returned no counterexample for a failing stream")
	}
	if len(small) > k+1 {
		t.Fatalf("shrunk sequence (%d ops) longer than failing prefix (%d ops)", len(small), k+1)
	}
	// The shrunk sequence must still fail.
	if j, _ := h.Diff(small); j < 0 {
		t.Fatal("shrunk sequence no longer reproduces the divergence")
	}
}

// TestShrinkOnHealthyStreamReturnsNil: Shrink is a no-op without a failure.
func TestShrinkOnHealthyStreamReturnsNil(t *testing.T) {
	h := Harness{Capacity: 4}
	rng := rand.New(rand.NewSource(5))
	if small, desc := h.Shrink(RandomOps(rng, 200, 4)); small != nil || desc != "" {
		t.Fatalf("Shrink on healthy stream = (%v, %q), want (nil, \"\")", small, desc)
	}
}
