package core

import (
	"fmt"
	"math"
	"sort"
)

// Hole is a maximal free rectangle in the processor-time plane: Procs
// processors are free throughout [Start, End), and the rectangle cannot be
// enlarged in either time direction without losing availability (Section 5.2
// of the paper represents the schedule as the set of such triples).
// End is +inf for holes that extend past the last reservation.
type Hole struct {
	Start float64
	End   float64
	Procs int
}

// Contains reports whether h fully contains g (g is redundant given h).
func (h Hole) Contains(g Hole) bool {
	return timeLeq(h.Start, g.Start) && timeLeq(g.End, h.End) && g.Procs <= h.Procs
}

// MaximalHoles enumerates the maximal holes of the profile at or after time
// from, ordered by start time.  A hole's Procs is the minimum availability
// over its span, and extending the span in either direction would reduce
// that minimum (or run past `from` on the left).
//
// The enumeration is the histogram-of-availability "all maximal rectangles"
// computation: for every segment, the rectangle of that segment's
// availability extended left and right while availability stays at least as
// large, deduplicated.  With a segment-tree index attached the extensions
// are tree descents (O(n log n) total); the linear path below is the
// reference oracle.
func (p *Profile) MaximalHoles(from float64) []Hole {
	if p.idx != nil {
		return p.maximalHolesIndexed(from)
	}
	return p.maximalHolesLinear(from)
}

// maximalHolesLinear is the reference O(n^2) enumeration.
func (p *Profile) maximalHolesLinear(from float64) []Hole {
	from = maxTime(from, p.times[0])
	lo := p.seg(from)
	n := len(p.times)

	type span struct{ l, r int } // segment index range [l, r]
	seen := make(map[span]bool)
	var holes []Hole

	for i := lo; i < n; i++ {
		avail := p.capacity - p.used[i]
		if avail <= 0 {
			continue
		}
		l := i
		for l > lo && p.capacity-p.used[l-1] >= avail {
			l--
		}
		r := i
		for r < n-1 && p.capacity-p.used[r+1] >= avail {
			r++
		}
		// The true height of the maximal rectangle spanning [l, r] is the
		// minimum availability over it, which by construction is avail only
		// if segment i is (one of) the minima; recompute to deduplicate
		// different i yielding the same span.
		min := avail
		for k := l; k <= r; k++ {
			if a := p.capacity - p.used[k]; a < min {
				min = a
			}
		}
		sp := span{l, r}
		if seen[sp] {
			continue
		}
		seen[sp] = true
		start := p.times[l]
		if l == lo {
			start = maxTime(p.times[l], from)
		}
		end := Inf
		if r < n-1 {
			end = p.times[r+1]
		}
		holes = append(holes, Hole{Start: start, End: end, Procs: min})
	}
	sort.Slice(holes, func(a, b int) bool {
		if !timeEq(holes[a].Start, holes[b].Start) {
			return holes[a].Start < holes[b].Start
		}
		return holes[a].Procs > holes[b].Procs
	})
	return holes
}

// EarliestFitHoles answers the same question as Profile.EarliestFit but by
// scanning the maximal-hole set: the earliest s >= est with procs processors
// free over [s, s+duration) and s+duration <= deadline.  It exists both as
// the paper-literal formulation and as a cross-check oracle for the
// segment-scanning implementation.
func (p *Profile) EarliestFitHoles(procs int, duration, est, deadline float64) (float64, bool) {
	if procs > p.capacity || duration <= 0 {
		return 0, false
	}
	holes := p.MaximalHoles(est)
	best := math.Inf(1)
	found := false
	for _, h := range holes {
		if h.Procs < procs {
			continue
		}
		s := maxTime(h.Start, est)
		if !timeLeq(s+duration, h.End) {
			continue
		}
		if !timeLeq(s+duration, deadline) {
			continue
		}
		if s < best {
			best = s
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// validateHoles panics if the hole set is inconsistent with the profile;
// used by tests and the race-enabled integration suite.
func (p *Profile) validateHoles(holes []Hole, from float64) error {
	for _, h := range holes {
		if h.Procs < 1 {
			return fmt.Errorf("hole %+v: non-positive height", h)
		}
		end := h.End
		if math.IsInf(end, 1) {
			end = p.LastBreak() + 1
		}
		if got := p.MinAvailOn(maxTime(h.Start, from), end); got < h.Procs {
			return fmt.Errorf("hole %+v: profile has only %d free", h, got)
		}
	}
	for i, h := range holes {
		for j, g := range holes {
			if i != j && h.Contains(g) && !(g.Contains(h)) {
				return fmt.Errorf("hole %+v contained in %+v: not maximal", g, h)
			}
		}
	}
	return nil
}
