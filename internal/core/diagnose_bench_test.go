package core

import (
	"math/rand"
	"testing"
)

// benchStorm builds a loaded scheduler plus a job mix with a substantial
// rejection rate, so the Plan benchmarks exercise both outcomes.
func benchStorm(opts *Options) (*Scheduler, []Job) {
	rng := rand.New(rand.NewSource(1))
	s := NewScheduler(16, 0, opts)
	for i := 0; i < 400; i++ {
		start := rng.Float64() * 800
		dur := 1 + rng.Float64()*10
		procs := 1 + rng.Intn(8)
		if slot, ok := s.Profile().EarliestFit(procs, dur, start, Inf); ok {
			if err := s.ReserveSlot(procs, slot, slot+dur); err != nil {
				panic(err)
			}
		}
	}
	jobs := make([]Job, 0, 256)
	for i := 0; i < 256; i++ {
		release := rng.Float64() * 800
		dur := 1 + rng.Float64()*8
		jobs = append(jobs, Job{ID: i, Release: release, Chains: []Chain{{Tasks: []Task{{
			Procs:    1 + rng.Intn(16),
			Duration: dur,
			Deadline: release + dur*(1+rng.Float64()), // often tight
		}}}}})
	}
	return s, jobs
}

// BenchmarkPlanNilDiag is the zero-cost half of the forensics benchmark
// pair: the plan path with no diagnosis sink installed must match the
// pre-forensics planner (one nil check on the failure branch, zero
// allocations beyond the plan itself).
func BenchmarkPlanNilDiag(b *testing.B) {
	s, jobs := benchStorm(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(jobs[i%len(jobs)])
	}
}

// BenchmarkPlanDiagnosed measures the opt-in cost of rejection
// explanation: every failed plan runs the per-chain failure analysis,
// near-miss probe and verified slack search.
func BenchmarkPlanDiagnosed(b *testing.B) {
	var sink *PlanDiagnosis
	s, jobs := benchStorm(&Options{Diagnosis: func(d *PlanDiagnosis) { sink = d }})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(jobs[i%len(jobs)])
	}
	_ = sink
}
