package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewProfileEmpty(t *testing.T) {
	p := NewProfile(4, 0)
	if got := p.Capacity(); got != 4 {
		t.Fatalf("Capacity() = %d, want 4", got)
	}
	if got := p.UsedAt(0); got != 0 {
		t.Fatalf("UsedAt(0) = %d, want 0", got)
	}
	if got := p.AvailAt(1e9); got != 4 {
		t.Fatalf("AvailAt(1e9) = %d, want 4", got)
	}
	p.checkInvariants()
}

func TestNewProfilePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewProfile(0, 0) did not panic")
		}
	}()
	NewProfile(0, 0)
}

func TestReserveBasic(t *testing.T) {
	p := NewProfile(4, 0)
	if err := p.Reserve(2, 1, 3); err != nil {
		t.Fatal(err)
	}
	p.checkInvariants()
	cases := []struct {
		at   float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 2}, {2, 2}, {2.999, 2}, {3, 0}, {10, 0},
	}
	for _, c := range cases {
		if got := p.UsedAt(c.at); got != c.want {
			t.Errorf("UsedAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestReserveStacksAndRejectsOverCapacity(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 2, 0, 10)
	mustReserve(t, p, 2, 5, 15)
	if err := p.Reserve(1, 6, 7); err == nil {
		t.Fatal("Reserve over full interval succeeded, want error")
	}
	p.checkInvariants()
	if got := p.UsedAt(6); got != 4 {
		t.Fatalf("UsedAt(6) = %d, want 4 (failed reserve must not mutate)", got)
	}
	mustReserve(t, p, 4, 15, 16)
	p.checkInvariants()
}

func TestReserveRejectsDegenerateIntervals(t *testing.T) {
	p := NewProfile(2, 0)
	if err := p.Reserve(1, 5, 5); err == nil {
		t.Error("empty interval accepted")
	}
	if err := p.Reserve(1, 5, 4); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := p.Reserve(0, 1, 2); err == nil {
		t.Error("zero procs accepted")
	}
	if err := p.Reserve(1, -3, 2); err == nil {
		t.Error("pre-origin start accepted")
	}
	if err := p.Reserve(1, 0, math.Inf(1)); err == nil {
		t.Error("infinite reservation accepted")
	}
}

func TestMinAvailOn(t *testing.T) {
	p := NewProfile(8, 0)
	mustReserve(t, p, 3, 2, 6)
	mustReserve(t, p, 4, 4, 5)
	cases := []struct {
		a, b float64
		want int
	}{
		{0, 2, 8},
		{0, 3, 5},
		{2, 4, 5},
		{4, 5, 1},
		{0, 100, 1},
		{5, 6, 5},
		{6, 100, 8},
	}
	for _, c := range cases {
		if got := p.MinAvailOn(c.a, c.b); got != c.want {
			t.Errorf("MinAvailOn(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEarliestFitOnEmptyProfile(t *testing.T) {
	p := NewProfile(4, 0)
	s, ok := p.EarliestFit(4, 10, 0, Inf)
	if !ok || !timeEq(s, 0) {
		t.Fatalf("EarliestFit = (%v, %v), want (0, true)", s, ok)
	}
	s, ok = p.EarliestFit(4, 10, 7.5, Inf)
	if !ok || !timeEq(s, 7.5) {
		t.Fatalf("EarliestFit est=7.5 = (%v, %v), want (7.5, true)", s, ok)
	}
}

func TestEarliestFitSkipsBusyStretch(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 3, 0, 10)
	// Two procs only free from t=10.
	s, ok := p.EarliestFit(2, 5, 0, Inf)
	if !ok || !timeEq(s, 10) {
		t.Fatalf("EarliestFit(2,5) = (%v, %v), want (10, true)", s, ok)
	}
	// One proc fits immediately.
	s, ok = p.EarliestFit(1, 5, 0, Inf)
	if !ok || !timeEq(s, 0) {
		t.Fatalf("EarliestFit(1,5) = (%v, %v), want (0, true)", s, ok)
	}
}

func TestEarliestFitRespectsDeadline(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 3, 0, 10)
	if _, ok := p.EarliestFit(2, 5, 0, 14); ok {
		t.Fatal("EarliestFit met impossible deadline")
	}
	s, ok := p.EarliestFit(2, 5, 0, 15)
	if !ok || !timeEq(s, 10) {
		t.Fatalf("EarliestFit deadline=15 = (%v, %v), want (10, true)", s, ok)
	}
}

func TestEarliestFitNeedsGapWideEnough(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 4, 5, 10)
	mustReserve(t, p, 4, 12, 20)
	// Gap [10,12) is too short for duration 3; next fit is 20.
	s, ok := p.EarliestFit(1, 3, 0, Inf)
	if !ok || !timeEq(s, 0) {
		t.Fatalf("EarliestFit = (%v,%v), want (0,true): leading gap [0,5) fits", s, ok)
	}
	s, ok = p.EarliestFit(1, 3, 4, Inf)
	if !ok || !timeEq(s, 20) {
		t.Fatalf("EarliestFit est=4 = (%v,%v), want (20,true)", s, ok)
	}
	s, ok = p.EarliestFit(1, 2, 4, Inf)
	if !ok || !timeEq(s, 10) {
		t.Fatalf("EarliestFit dur=2 est=4 = (%v,%v), want (10,true)", s, ok)
	}
}

func TestEarliestFitImpossibleRequests(t *testing.T) {
	p := NewProfile(4, 0)
	if _, ok := p.EarliestFit(5, 1, 0, Inf); ok {
		t.Error("fit with procs > capacity")
	}
	if _, ok := p.EarliestFit(1, 0, 0, Inf); ok {
		t.Error("fit with zero duration")
	}
	if _, ok := p.EarliestFit(1, 2, 5, 6); ok {
		t.Error("fit with est+duration > deadline")
	}
}

func TestEarliestFitStartsMidSegment(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 2, 0, 100)
	s, ok := p.EarliestFit(2, 5, 33.25, Inf)
	if !ok || !timeEq(s, 33.25) {
		t.Fatalf("EarliestFit = (%v,%v), want (33.25,true)", s, ok)
	}
}

func TestTrimBeforePreservesQueriesAfterTrimPoint(t *testing.T) {
	p := NewProfile(8, 0)
	mustReserve(t, p, 3, 2, 6)
	mustReserve(t, p, 4, 4, 12)
	mustReserve(t, p, 2, 20, 30)
	q := p.Clone()
	q.TrimBefore(5)
	q.checkInvariants()
	for _, at := range []float64{5, 6, 11, 12, 20, 25, 30, 31} {
		if p.UsedAt(at) != q.UsedAt(at) {
			t.Errorf("UsedAt(%v): trimmed %d != original %d", at, q.UsedAt(at), p.UsedAt(at))
		}
	}
	if got, want := q.BusyUpTo(100), p.BusyUpTo(100); !timeEq(got, want) {
		t.Errorf("BusyUpTo(100) after trim = %v, want %v", got, want)
	}
	sOrig, okOrig := p.EarliestFit(8, 3, 5, Inf)
	sTrim, okTrim := q.EarliestFit(8, 3, 5, Inf)
	if okOrig != okTrim || !timeEq(sOrig, sTrim) {
		t.Errorf("EarliestFit after trim = (%v,%v), want (%v,%v)", sTrim, okTrim, sOrig, okOrig)
	}
}

func TestTrimBeforeNoopForPast(t *testing.T) {
	p := NewProfile(4, 10)
	mustReserve(t, p, 1, 11, 12)
	segs := p.Segments()
	p.TrimBefore(5)
	if p.Segments() != segs || !timeEq(p.Origin(), 10) {
		t.Fatal("TrimBefore earlier than origin mutated profile")
	}
}

func TestBusyUpToAndBusyOn(t *testing.T) {
	p := NewProfile(4, 0)
	mustReserve(t, p, 2, 1, 3) // area 4
	mustReserve(t, p, 4, 5, 6) // area 4
	if got := p.BusyUpTo(10); !timeEq(got, 8) {
		t.Errorf("BusyUpTo(10) = %v, want 8", got)
	}
	if got := p.BusyUpTo(2); !timeEq(got, 2) {
		t.Errorf("BusyUpTo(2) = %v, want 2", got)
	}
	if got := p.BusyOn(0, 10); !timeEq(got, 8) {
		t.Errorf("BusyOn(0,10) = %v, want 8", got)
	}
	if got := p.BusyOn(2, 5.5); !timeEq(got, 4) {
		t.Errorf("BusyOn(2,5.5) = %v, want 4", got)
	}
	if got := p.BusyOn(7, 7); got != 0 {
		t.Errorf("BusyOn empty window = %v, want 0", got)
	}
}

func TestProfileString(t *testing.T) {
	p := NewProfile(2, 0)
	mustReserve(t, p, 1, 0, 5)
	want := "cap=2 [0,5)=1 [5,+inf)=0"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// randomProfile builds a profile from n random valid reservations.
func randomProfile(rng *rand.Rand, capacity, n int) *Profile {
	p := NewProfile(capacity, 0)
	for i := 0; i < n; i++ {
		procs := 1 + rng.Intn(capacity)
		dur := 1 + rng.Float64()*20
		est := rng.Float64() * 100
		if s, ok := p.EarliestFit(procs, dur, est, Inf); ok {
			if err := p.Reserve(procs, s, s+dur); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// TestQuickReserveNeverExceedsCapacity: after arbitrary reservation
// sequences placed via EarliestFit, usage never exceeds capacity and the
// profile invariants hold.
func TestQuickReserveNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := 1 + int(capRaw%16)
		n := int(nRaw % 64)
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng, capacity, n)
		p.checkInvariants()
		for at := 0.0; at < 200; at += 3.7 {
			if p.UsedAt(at) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEarliestFitIsEarliest: the returned slot fits, and no earlier
// slot (sampled on a fine grid) fits.
func TestQuickEarliestFitIsEarliest(t *testing.T) {
	f := func(seed int64, capRaw, nRaw, pRaw uint8, durRaw uint16) bool {
		capacity := 1 + int(capRaw%8)
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng, capacity, int(nRaw%32))
		procs := 1 + int(pRaw)%capacity
		dur := 0.5 + float64(durRaw%200)/10
		est := rng.Float64() * 50
		s, ok := p.EarliestFit(procs, dur, est, Inf)
		if !ok {
			return false // with infinite deadline a fit always exists
		}
		if timeLess(s, est) {
			return false
		}
		if p.MinAvailOn(s, s+dur) < procs {
			return false
		}
		// No earlier grid point fits.
		for cand := est; timeLess(cand, s); cand += dur / 16 {
			if p.MinAvailOn(cand, cand+dur) >= procs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrimPreservesSemantics: trimming at a random point preserves all
// queries at or after the trim point and the total busy integral.
func TestQuickTrimPreservesSemantics(t *testing.T) {
	f := func(seed int64, nRaw uint8, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng, 8, int(nRaw%48))
		q := p.Clone()
		at := float64(cut) / 2
		q.TrimBefore(at)
		q.checkInvariants()
		if !timeEq(q.BusyUpTo(1e6), p.BusyUpTo(1e6)) {
			return false
		}
		for probe := at; probe < at+100; probe += 1.3 {
			if p.UsedAt(probe) != q.UsedAt(probe) {
				return false
			}
		}
		s1, ok1 := p.EarliestFit(3, 4, at, Inf)
		s2, ok2 := q.EarliestFit(3, 4, at, Inf)
		return ok1 == ok2 && timeEq(s1, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mustReserve(t *testing.T, p *Profile, procs int, start, finish float64) {
	t.Helper()
	if err := p.Reserve(procs, start, finish); err != nil {
		t.Fatalf("Reserve(%d, %v, %v): %v", procs, start, finish, err)
	}
}
