package core

import (
	"fmt"
	"sort"
)

// DAGTask is one node of a precedence DAG: the task plus the indices of
// its predecessors within the DAG.
type DAGTask struct {
	Task
	Preds []int
}

// DAG generalizes a chain to the paper's fuller model — "the application
// is viewed as an execution path (a chain, or more generally, a dag)"
// (Section 3.1).  A task may start once all of its predecessors have
// finished; independent tasks may run concurrently, competing for
// capacity.
type DAG struct {
	Name    string
	Tasks   []DAGTask
	Quality float64
}

// Validate checks indices, task fields and acyclicity.
func (d DAG) Validate() error {
	if len(d.Tasks) == 0 {
		return fmt.Errorf("dag %q: no tasks", d.Name)
	}
	for i, t := range d.Tasks {
		if err := t.Task.Validate(); err != nil {
			return fmt.Errorf("dag %q task %d: %w", d.Name, i, err)
		}
		for _, p := range t.Preds {
			if p < 0 || p >= len(d.Tasks) {
				return fmt.Errorf("dag %q task %d: predecessor %d out of range", d.Name, i, p)
			}
			if p == i {
				return fmt.Errorf("dag %q task %d: self-dependency", d.Name, i)
			}
		}
	}
	if _, err := d.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns a deterministic topological order: among ready tasks,
// the earliest deadline first (list scheduling with an EDF priority),
// breaking ties by index.
func (d DAG) topoOrder() ([]int, error) {
	n := len(d.Tasks)
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, t := range d.Tasks {
		indeg[i] = len(t.Preds)
		for _, p := range t.Preds {
			succs[p] = append(succs[p], i)
		}
	}
	ready := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			ta, tb := d.Tasks[ready[a]], d.Tasks[ready[b]]
			if !timeEq(ta.Deadline, tb.Deadline) {
				return ta.Deadline < tb.Deadline
			}
			return ready[a] < ready[b]
		})
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag %q: dependency cycle", d.Name)
	}
	return order, nil
}

// Area returns the DAG's total resource requirement.
func (d DAG) Area() float64 {
	var a float64
	for _, t := range d.Tasks {
		a += t.Area()
	}
	return a
}

// Chain converts a chain into the equivalent linear DAG.
func (c Chain) DAG() DAG {
	d := DAG{Name: c.Name, Quality: c.Quality, Tasks: make([]DAGTask, len(c.Tasks))}
	for i, t := range c.Tasks {
		dt := DAGTask{Task: t}
		if i > 0 {
			dt.Preds = []int{i - 1}
		}
		d.Tasks[i] = dt
	}
	return d
}

// DAGJob is a tunable job over alternative DAGs (the OR graph's enumerated
// paths when paths are graphs rather than chains).
type DAGJob struct {
	ID      int
	Name    string
	Release float64
	Alts    []DAG
}

// Validate checks every alternative.
func (j DAGJob) Validate() error {
	if len(j.Alts) == 0 {
		return fmt.Errorf("dag job %d: no alternatives", j.ID)
	}
	for i, d := range j.Alts {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("dag job %d alt %d: %w", j.ID, i, err)
		}
		for ti, t := range d.Tasks {
			if timeLess(t.Deadline, j.Release) {
				return fmt.Errorf("dag job %d alt %d task %d: deadline %v before release %v",
					j.ID, i, ti, t.Deadline, j.Release)
			}
		}
	}
	return nil
}

// PlanDAG tentatively places one DAG released at `release`.  Unlike chain
// placement, independent tasks may overlap in time, so planning runs
// against a scratch copy of the profile: each task (in deadline-priority
// topological order) is placed at its earliest feasible start after its
// predecessors and immediately reserved on the scratch.
//
// Placement.Tasks is indexed by DAG task index (Tasks[i].Task == i).
func (s *Scheduler) PlanDAG(dag DAG, release float64) (*Placement, bool) {
	order, err := dag.topoOrder()
	if err != nil {
		return nil, false
	}
	scratch := s.prof.Clone()
	placements := make([]TaskPlacement, len(dag.Tasks))
	finish := make([]float64, len(dag.Tasks))
	for _, i := range order {
		est := release
		for _, p := range dag.Tasks[i].Preds {
			est = maxTime(est, finish[p])
		}
		tp, ok := s.placeTaskOn(scratch, dag.Tasks[i].Task, i, est)
		if !ok {
			return nil, false
		}
		if err := scratch.Reserve(tp.Procs, tp.Start, tp.Finish); err != nil {
			return nil, false
		}
		placements[i] = tp
		finish[i] = tp.Finish
	}
	return &Placement{Tasks: placements}, true
}

// AdmitDAG runs admission control for a tunable DAG job: every alternative
// is planned, the best schedulable one (under the configured tie-break) is
// committed.  The chosen alternative's index is recorded in
// Placement.Chain.
func (s *Scheduler) AdmitDAG(job DAGJob) (*Placement, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("core: admit dag: %w", err)
	}
	var best *Placement
	var bestKey chainKey
	for ai, alt := range job.Alts {
		s.stat.ChainsTried++
		pl, ok := s.PlanDAG(alt, job.Release)
		if !ok {
			continue
		}
		pl.JobID = job.ID
		pl.Chain = ai
		key := s.dagSortKey(pl, alt, job.Release)
		if best == nil || s.better(key, bestKey) {
			best, bestKey = pl, key
		}
		if s.opts.TieBreak == TieBreakFirstFit {
			break
		}
	}
	if best == nil {
		s.stat.Rejected++
		s.stat.PlanFailures++
		return nil, ErrRejected
	}
	if err := s.ReservePlacement(best); err != nil {
		return nil, err
	}
	s.stat.Admitted++
	s.stat.ReservedArea += best.Area()
	s.stat.QualitySum += job.Alts[best.Chain].Quality
	if len(job.Alts) > 1 {
		for len(s.stat.TunableChosen) <= best.Chain {
			s.stat.TunableChosen = append(s.stat.TunableChosen, 0)
		}
		s.stat.TunableChosen[best.Chain]++
	}
	return best, nil
}

// dagSortKey builds the tie-break key for a DAG placement: finish is the
// makespan (latest task finish), the prefix is cumulative area in start
// order.
func (s *Scheduler) dagSortKey(pl *Placement, dag DAG, release float64) chainKey {
	finish := 0.0
	for _, tp := range pl.Tasks {
		if tp.Finish > finish {
			finish = tp.Finish
		}
	}
	window := finish - release
	var util float64
	if window > Eps {
		util = (s.prof.BusyOn(maxTime(release, s.prof.Origin()), finish) + pl.Area()) /
			(float64(s.prof.Capacity()) * window)
	}
	byStart := append([]TaskPlacement(nil), pl.Tasks...)
	sort.Slice(byStart, func(a, b int) bool {
		if !timeEq(byStart[a].Start, byStart[b].Start) {
			return byStart[a].Start < byStart[b].Start
		}
		return byStart[a].Task < byStart[b].Task
	})
	prefix := make([]float64, len(byStart))
	var cum float64
	for i, tp := range byStart {
		cum += float64(tp.Procs) * tp.Duration()
		prefix[i] = cum
	}
	return chainKey{finish: finish, util: util, area: pl.Area(), quality: dag.Quality, prefix: prefix}
}
