package core

import (
	"math"
	"testing"
)

// benchProfile builds a profile carrying n committed unit reservations whose
// staggered windows leave ~2n breakpoints live, with a shallow standing load
// so wide queries must march deep into the timeline before fitting.
func benchProfile(n int, indexed bool) *Profile {
	p := NewProfile(64, 0)
	if indexed {
		p.EnableIndex() // NewProfile leaves the index off otherwise
	}
	for i := 0; i < n; i++ {
		start := float64(i) * 0.5
		if err := p.Reserve(1, start, start+3); err != nil {
			panic(err)
		}
	}
	// Warm: force the (lazy) rebuild out of the measured region.
	p.MinAvailOn(0, 1)
	return p
}

// BenchmarkProfileEarliestFitIndexed measures the headline query — "first
// time a 60-wide, 5-long window fits" — against 10k committed reservations.
// The standing load keeps 58 of 64 processors free, so the query cannot fit
// until after the last reservation drains: the linear path scans every
// segment, the indexed path descends the tree.
func BenchmarkProfileEarliestFitIndexed(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile(10000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.earliestFitIndexed(60, 5, 0, math.Inf(1)); !ok {
			b.Fatal("no fit")
		}
	}
}

// BenchmarkProfileEarliestFitLinear is the reference-path twin of the
// benchmark above (same profile contents, same query).
func BenchmarkProfileEarliestFitLinear(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile(10000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.earliestFitLinear(60, 5, 0, math.Inf(1)); !ok {
			b.Fatal("no fit")
		}
	}
}

// BenchmarkProfileMinAvailIndexed / Linear: the other hot probe, over a
// window spanning most of the committed timeline.
func BenchmarkProfileMinAvailIndexed(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile(10000, true)
	hi := p.LastBreak()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.minAvailOnIndexed(1, hi-1)
	}
}

func BenchmarkProfileMinAvailLinear(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile(10000, false)
	hi := p.LastBreak()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.minAvailOnLinear(1, hi-1)
	}
}

// benchScheduler commits n staggered single-proc reservations through the
// scheduler so its profile reaches the same 10k-reservation regime.
func benchScheduler(n int, mode ProfileIndexMode) *Scheduler {
	s := NewScheduler(64, 0, &Options{ProfileIndex: mode})
	for i := 0; i < n; i++ {
		start := float64(i) * 0.5
		if err := s.ReserveSlot(1, start, start+3); err != nil {
			panic(err)
		}
	}
	s.Profile().MinAvailOn(0, 1) // warm the lazy rebuild
	return s
}

// benchJob is a three-chain tunable job released mid-timeline, shaped so
// planning probes both wide (fails until the tail) and narrow chains.
func benchJob(id int, release float64) Job {
	return Job{ID: id, Release: release, Chains: []Chain{
		{Quality: 1.0, Tasks: []Task{{Procs: 60, Duration: 4, Deadline: release + 6000}}},
		{Quality: 0.7, Tasks: []Task{{Procs: 8, Duration: 10, Deadline: release + 6000}}},
		{Quality: 0.4, Tasks: []Task{{Procs: 2, Duration: 20, Deadline: release + 6000}}},
	}}
}

// BenchmarkSchedulerPlan10kIndexed measures a full admission plan (all
// chains, greedy tie-break) against 10k committed reservations with the
// index on; Plan is read-only, so every iteration sees the same profile.
func BenchmarkSchedulerPlan10kIndexed(b *testing.B) {
	b.ReportAllocs()
	s := benchScheduler(10000, ProfileIndexOn)
	job := benchJob(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Plan(job); !ok {
			b.Fatal("plan failed")
		}
	}
}

// BenchmarkSchedulerPlan10kLinear is the reference-path twin.
func BenchmarkSchedulerPlan10kLinear(b *testing.B) {
	b.ReportAllocs()
	s := benchScheduler(10000, ProfileIndexOff)
	job := benchJob(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Plan(job); !ok {
			b.Fatal("plan failed")
		}
	}
}
