package core

import (
	"strings"
	"testing"
)

func rect(name string, procs int, dur, deadline float64) Task {
	return Task{Name: name, Procs: procs, Duration: dur, Deadline: deadline}
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		want string // substring of error, "" for ok
	}{
		{"ok rect", rect("a", 2, 3, 10), ""},
		{"zero procs", rect("a", 0, 3, 10), "procs"},
		{"negative duration", rect("a", 2, -1, 10), "duration"},
		{"zero duration", rect("a", 2, 0, 10), "duration"},
		{"ok malleable", Task{Name: "m", Malleable: true, Work: 8, MaxProcs: 4}, ""},
		{"malleable no work", Task{Name: "m", Malleable: true, Work: 0, MaxProcs: 4}, "work"},
		{"malleable no procs", Task{Name: "m", Malleable: true, Work: 8, MaxProcs: 0}, "max procs"},
	}
	for _, c := range cases {
		err := c.task.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestTaskArea(t *testing.T) {
	if got := rect("a", 4, 2.5, 0).Area(); !timeEq(got, 10) {
		t.Errorf("rect area = %v, want 10", got)
	}
	m := Task{Malleable: true, Work: 7, MaxProcs: 3}
	if got := m.Area(); !timeEq(got, 7) {
		t.Errorf("malleable area = %v, want 7", got)
	}
}

func TestMakeMalleablePreservesArea(t *testing.T) {
	orig := rect("a", 4, 25, 100)
	m := orig.MakeMalleable()
	if !m.Malleable {
		t.Fatal("not malleable")
	}
	if m.MaxProcs != 4 {
		t.Errorf("MaxProcs = %d, want 4 (degree of concurrency)", m.MaxProcs)
	}
	if !timeEq(m.Area(), orig.Area()) {
		t.Errorf("area changed: %v -> %v", orig.Area(), m.Area())
	}
	// Idempotent on already-malleable tasks.
	if mm := m.MakeMalleable(); mm != m {
		t.Error("MakeMalleable not idempotent")
	}
}

func TestChainValidate(t *testing.T) {
	good := Chain{Name: "c", Tasks: []Task{rect("a", 1, 1, 5), rect("b", 1, 1, 9)}}
	if err := good.Validate(); err != nil {
		t.Errorf("good chain: %v", err)
	}
	empty := Chain{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty chain accepted")
	}
	backward := Chain{Name: "b", Tasks: []Task{rect("a", 1, 1, 9), rect("b", 1, 1, 5)}}
	if err := backward.Validate(); err == nil {
		t.Error("decreasing deadlines accepted")
	}
}

func TestJobValidate(t *testing.T) {
	j := Job{ID: 1, Release: 10, Chains: []Chain{
		{Name: "only", Tasks: []Task{rect("a", 1, 1, 15)}},
	}}
	if err := j.Validate(); err != nil {
		t.Errorf("good job: %v", err)
	}
	if (Job{ID: 2}).Validate() == nil {
		t.Error("chainless job accepted")
	}
	early := Job{ID: 3, Release: 10, Chains: []Chain{
		{Name: "c", Tasks: []Task{rect("a", 1, 1, 5)}},
	}}
	if early.Validate() == nil {
		t.Error("deadline before release accepted")
	}
}

func TestJobTunableAndArea(t *testing.T) {
	c1 := Chain{Name: "1", Tasks: []Task{rect("a", 2, 5, 100)}}  // area 10
	c2 := Chain{Name: "2", Tasks: []Task{rect("b", 4, 10, 100)}} // area 40
	j := Job{Chains: []Chain{c1, c2}}
	if !j.Tunable() {
		t.Error("two-chain job not tunable")
	}
	if got := j.Area(); !timeEq(got, 10) {
		t.Errorf("Area = %v, want cheapest chain 10", got)
	}
	if (Job{Chains: []Chain{c1}}).Tunable() {
		t.Error("single-chain job tunable")
	}
	if got := (Job{}).Area(); got != 0 {
		t.Errorf("empty job area = %v, want 0", got)
	}
}

func TestJobMakeMalleable(t *testing.T) {
	j := Job{Chains: []Chain{
		{Tasks: []Task{rect("a", 4, 25, 100), rect("b", 8, 5, 200)}},
		{Tasks: []Task{rect("c", 2, 50, 300)}},
	}}
	m := j.MakeMalleable()
	for ci, c := range m.Chains {
		for ti, task := range c.Tasks {
			if !task.Malleable {
				t.Errorf("chain %d task %d not malleable", ci, ti)
			}
			if !timeEq(task.Area(), j.Chains[ci].Tasks[ti].Area()) {
				t.Errorf("chain %d task %d area changed", ci, ti)
			}
		}
	}
	// Original untouched.
	if j.Chains[0].Tasks[0].Malleable {
		t.Error("MakeMalleable mutated the receiver")
	}
}

func TestPlacementAccessors(t *testing.T) {
	pl := Placement{JobID: 7, Chain: 1, Tasks: []TaskPlacement{
		{Task: 0, Start: 2, Finish: 6, Procs: 4},
		{Task: 1, Start: 6, Finish: 11, Procs: 2},
	}}
	if got := pl.Start(); !timeEq(got, 2) {
		t.Errorf("Start = %v, want 2", got)
	}
	if got := pl.Finish(); !timeEq(got, 11) {
		t.Errorf("Finish = %v, want 11", got)
	}
	if got := pl.Area(); !timeEq(got, 4*4+2*5) {
		t.Errorf("Area = %v, want 26", got)
	}
	var empty Placement
	if empty.Start() != 0 || empty.Finish() != 0 {
		t.Error("empty placement accessors not zero")
	}
}
