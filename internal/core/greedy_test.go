package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain2 builds a two-task chain with absolute deadlines d1, d2.
func chain2(name string, p1 int, t1, d1 float64, p2 int, t2, d2 float64) Chain {
	return Chain{Name: name, Tasks: []Task{
		{Name: name + ".1", Procs: p1, Duration: t1, Deadline: d1},
		{Name: name + ".2", Procs: p2, Duration: t2, Deadline: d2},
	}}
}

func TestAdmitSingleJobEmptyMachine(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	job := Job{ID: 1, Release: 0, Chains: []Chain{
		chain2("c", 4, 10, 20, 2, 5, 30),
	}}
	pl, err := s.Admit(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chain != 0 || len(pl.Tasks) != 2 {
		t.Fatalf("placement = %+v", pl)
	}
	if !timeEq(pl.Tasks[0].Start, 0) || !timeEq(pl.Tasks[0].Finish, 10) {
		t.Errorf("task 0 at [%v,%v), want [0,10)", pl.Tasks[0].Start, pl.Tasks[0].Finish)
	}
	if !timeEq(pl.Tasks[1].Start, 10) || !timeEq(pl.Tasks[1].Finish, 15) {
		t.Errorf("task 1 at [%v,%v), want [10,15)", pl.Tasks[1].Start, pl.Tasks[1].Finish)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Rejected != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !timeEq(st.ReservedArea, 4*10+2*5) {
		t.Errorf("reserved area = %v, want 50", st.ReservedArea)
	}
}

func TestAdmitRejectsInfeasibleDeadline(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	// Machine is 4 wide; first job takes it fully for [0,10).
	if _, err := s.Admit(Job{ID: 1, Chains: []Chain{
		{Name: "hog", Tasks: []Task{rect("h", 4, 10, 10)}},
	}}); err != nil {
		t.Fatal(err)
	}
	// Second job needs 4 procs for 5 by deadline 12: impossible.
	_, err := s.Admit(Job{ID: 2, Chains: []Chain{
		{Name: "late", Tasks: []Task{rect("l", 4, 5, 12)}},
	}})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	st := s.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	// A rejected job must leave the schedule untouched: deadline 15 works.
	pl, err := s.Admit(Job{ID: 3, Chains: []Chain{
		{Name: "ok", Tasks: []Task{rect("o", 4, 5, 15)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !timeEq(pl.Tasks[0].Start, 10) {
		t.Errorf("start = %v, want 10", pl.Tasks[0].Start)
	}
}

func TestAdmitValidatesJob(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	if _, err := s.Admit(Job{ID: 1}); err == nil {
		t.Fatal("chainless job admitted")
	}
}

func TestTunableJobPicksFeasibleChain(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	// Block all 4 procs on [0, 20).
	mustAdmit(t, s, Job{ID: 0, Chains: []Chain{
		{Name: "hog", Tasks: []Task{rect("h", 4, 20, 20)}},
	}})
	// Chain A needs 4x10 by 25 (impossible: earliest finish 30).
	// Chain B needs 2x20 by 45 (impossible: no 2 procs before 20... finish 40 ok? deadline 45 ok).
	job := Job{ID: 1, Chains: []Chain{
		{Name: "A", Tasks: []Task{rect("a", 4, 10, 25)}},
		{Name: "B", Tasks: []Task{rect("b", 2, 20, 45)}},
	}}
	pl := mustAdmit(t, s, job)
	if pl.Chain != 1 {
		t.Fatalf("chose chain %d, want 1 (only feasible)", pl.Chain)
	}
	st := s.Stats()
	if len(st.TunableChosen) < 2 || st.TunableChosen[1] != 1 {
		t.Errorf("TunableChosen = %v", st.TunableChosen)
	}
}

func TestTunableJobPrefersEarliestFinish(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	// Both chains feasible; chain B finishes earlier.
	job := Job{ID: 1, Chains: []Chain{
		{Name: "A", Tasks: []Task{rect("a", 2, 30, 100)}},
		{Name: "B", Tasks: []Task{rect("b", 6, 10, 100)}},
	}}
	pl := mustAdmit(t, s, job)
	if pl.Chain != 1 {
		t.Fatalf("chose chain %d, want 1 (earliest finish)", pl.Chain)
	}
}

func TestTieBreakPrefixPrefersDeferredResources(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	// Same finish time, same utilization/area; chain B consumes less in its
	// first task (its prefix is smaller), so the paper's rule picks B.
	job := Job{ID: 1, Chains: []Chain{
		{Name: "A", Tasks: []Task{rect("a1", 6, 10, 100), rect("a2", 2, 10, 100)}},
		{Name: "B", Tasks: []Task{rect("b1", 2, 10, 100), rect("b2", 6, 10, 100)}},
	}}
	pl := mustAdmit(t, s, job)
	if pl.Chain != 1 {
		t.Fatalf("chose chain %d, want 1 (smaller resource prefix)", pl.Chain)
	}
}

func TestTieBreakDeterministicOnFullTie(t *testing.T) {
	s := NewScheduler(8, 0, nil)
	c := chain2("same", 2, 5, 50, 2, 5, 50)
	job := Job{ID: 1, Chains: []Chain{c, c}}
	pl := mustAdmit(t, s, job)
	if pl.Chain != 0 {
		t.Fatalf("chose chain %d, want 0 (declaration order on full tie)", pl.Chain)
	}
}

func TestTieBreakFirstFitStopsAtFirstFeasible(t *testing.T) {
	s := NewScheduler(8, 0, &Options{TieBreak: TieBreakFirstFit})
	job := Job{ID: 1, Chains: []Chain{
		{Name: "slow", Tasks: []Task{rect("a", 2, 30, 100)}},
		{Name: "fast", Tasks: []Task{rect("b", 6, 10, 100)}},
	}}
	pl := mustAdmit(t, s, job)
	if pl.Chain != 0 {
		t.Fatalf("chose chain %d, want 0 (first feasible)", pl.Chain)
	}
}

func TestTieBreakMinAreaPicksCheapestChain(t *testing.T) {
	s := NewScheduler(8, 0, &Options{TieBreak: TieBreakMinArea})
	job := Job{ID: 1, Chains: []Chain{
		{Name: "big", Tasks: []Task{rect("a", 6, 10, 100)}},   // area 60, finish 10
		{Name: "small", Tasks: []Task{rect("b", 2, 20, 100)}}, // area 40, finish 20
	}}
	pl := mustAdmit(t, s, job)
	if pl.Chain != 1 {
		t.Fatalf("chose chain %d, want 1 (min area)", pl.Chain)
	}
}

func TestChainTasksQueueBehindEachOther(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	// Second task fits immediately in principle, but must wait for task 1.
	job := Job{ID: 1, Chains: []Chain{
		chain2("c", 4, 10, 20, 1, 2, 30),
	}}
	pl := mustAdmit(t, s, job)
	if timeLess(pl.Tasks[1].Start, pl.Tasks[0].Finish) {
		t.Fatalf("task 1 starts %v before predecessor finish %v", pl.Tasks[1].Start, pl.Tasks[0].Finish)
	}
}

func TestPlanDoesNotCommit(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	job := Job{ID: 1, Chains: []Chain{{Name: "c", Tasks: []Task{rect("a", 4, 10, 100)}}}}
	if _, ok := s.Plan(job); !ok {
		t.Fatal("plan failed")
	}
	if got := s.prof.UsedAt(5); got != 0 {
		t.Fatalf("Plan reserved capacity: UsedAt(5) = %d", got)
	}
	// Planning twice yields the same slot.
	p1, _ := s.Plan(job)
	p2, _ := s.Plan(job)
	if !timeEq(p1.Tasks[0].Start, p2.Tasks[0].Start) {
		t.Fatal("Plan is not idempotent")
	}
}

func TestCommitThenScheduleReflectsReservation(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	job := Job{ID: 1, Chains: []Chain{{Name: "c", Tasks: []Task{rect("a", 3, 10, 100)}}}}
	pl, ok := s.Plan(job)
	if !ok {
		t.Fatal("plan failed")
	}
	if err := s.Commit(job, pl); err != nil {
		t.Fatal(err)
	}
	if got := s.prof.UsedAt(5); got != 3 {
		t.Fatalf("UsedAt(5) = %d, want 3", got)
	}
}

func TestAdmitRespectsReleaseTime(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	job := Job{ID: 1, Release: 42, Chains: []Chain{
		{Name: "c", Tasks: []Task{rect("a", 1, 5, 100)}},
	}}
	pl := mustAdmit(t, s, job)
	if timeLess(pl.Tasks[0].Start, 42) {
		t.Fatalf("task starts %v before release 42", pl.Tasks[0].Start)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	mustAdmit(t, s, Job{ID: 1, Chains: []Chain{
		{Name: "c", Tasks: []Task{rect("a", 2, 10, 100)}},
	}})
	// 20 proc-time over capacity 4 x horizon 10 = 0.5.
	if got := s.Utilization(0, 10); !timeEq(got, 0.5) {
		t.Errorf("Utilization(0,10) = %v, want 0.5", got)
	}
	if got := s.Utilization(0, 0); got != 0 {
		t.Errorf("Utilization over empty window = %v, want 0", got)
	}
	// Observe/trim must not change accounting.
	s.Observe(50)
	if got := s.Utilization(0, 10); !timeEq(got, 0.5) {
		t.Errorf("after Observe: Utilization = %v, want 0.5", got)
	}
}

func TestHoleEngineSchedulerMatchesDefault(t *testing.T) {
	mk := func(opts *Options) []int {
		s := NewScheduler(6, 0, opts)
		rng := rand.New(rand.NewSource(7))
		var chosen []int
		release := 0.0
		for i := 0; i < 200; i++ {
			release += rng.Float64() * 10
			laxity := 0.3 + rng.Float64()*0.5
			t1 := 5 + rng.Float64()*10
			t2 := 5 + rng.Float64()*10
			j := Job{ID: i, Release: release, Chains: []Chain{
				{Name: "A", Tasks: []Task{
					{Name: "a1", Procs: 4, Duration: t1, Deadline: release + t1/(1-laxity)},
					{Name: "a2", Procs: 2, Duration: t2, Deadline: release + (t1+t2)/(1-laxity)},
				}},
				{Name: "B", Tasks: []Task{
					{Name: "b1", Procs: 2, Duration: t2, Deadline: release + t2/(1-laxity)},
					{Name: "b2", Procs: 4, Duration: t1, Deadline: release + (t1+t2)/(1-laxity)},
				}},
			}}
			pl, err := s.Admit(j)
			if err != nil {
				chosen = append(chosen, -1)
			} else {
				chosen = append(chosen, pl.Chain)
			}
		}
		return chosen
	}
	def := mk(nil)
	holes := mk(&Options{Engine: EngineHoles})
	for i := range def {
		if def[i] != holes[i] {
			t.Fatalf("job %d: default engine chose %d, hole engine chose %d", i, def[i], holes[i])
		}
	}
}

// TestQuickAdmittedJobsMeetDeadlines: every placement returned by Admit
// respects release time, precedence, deadlines and capacity.
func TestQuickAdmittedJobsMeetDeadlines(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + rng.Intn(12)
		s := NewScheduler(capacity, 0, nil)
		release := 0.0
		n := 20 + int(nRaw%60)
		for i := 0; i < n; i++ {
			release += rng.Float64() * 15
			nTasks := 1 + rng.Intn(3)
			mk := func() Chain {
				var tasks []Task
				dl := release
				for k := 0; k < nTasks; k++ {
					dur := 1 + rng.Float64()*10
					dl += dur * (1 + rng.Float64()*2)
					tasks = append(tasks, Task{
						Procs:    1 + rng.Intn(capacity),
						Duration: dur,
						Deadline: dl,
					})
				}
				return Chain{Tasks: tasks}
			}
			job := Job{ID: i, Release: release, Chains: []Chain{mk(), mk()}}
			pl, err := s.Admit(job)
			if errors.Is(err, ErrRejected) {
				continue
			}
			if err != nil {
				return false
			}
			chain := job.Chains[pl.Chain]
			prev := release
			for k, tp := range pl.Tasks {
				if timeLess(tp.Start, prev) {
					return false // precedence or release violated
				}
				if !timeLeq(tp.Finish, chain.Tasks[k].Deadline) {
					return false // deadline violated
				}
				if tp.Procs != chain.Tasks[k].Procs {
					return false // non-malleable count changed
				}
				prev = tp.Finish
			}
		}
		s.prof.checkInvariants() // capacity never exceeded
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTunableDominatesNonTunable: on identical arrival sequences, the
// tunable system admits at least as many jobs as each single-chain system.
// This is the paper's central claim; it holds for the greedy heuristic
// because every chain feasible for a non-tunable job is also a candidate
// for the tunable job.  (Dominance per-decision, not globally optimal:
// greedy choices could in principle hurt later arrivals, so we check the
// aggregate on many random instances rather than assert a theorem; failures
// here would still flag implementation regressions.)
func TestQuickTunableBeatsOrMatchesNonTunableOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var tunWins, nonTunWins int
	for trial := 0; trial < 30; trial++ {
		seed := rng.Int63()
		admitted := func(which int) int { // 0=tunable, 1=chainA only, 2=chainB only
			r := rand.New(rand.NewSource(seed))
			s := NewScheduler(16, 0, nil)
			release := 0.0
			count := 0
			for i := 0; i < 300; i++ {
				release += r.ExpFloat64() * 20
				t1, t2 := 10.0, 25.0
				laxity := 0.5
				a := []Task{
					{Procs: 16, Duration: t1, Deadline: release + t1/(1-laxity)},
					{Procs: 4, Duration: t2, Deadline: release + (t1+t2)/(1-laxity)},
				}
				b := []Task{
					{Procs: 4, Duration: t2, Deadline: release + t2/(1-laxity)},
					{Procs: 16, Duration: t1, Deadline: release + (t1+t2)/(1-laxity)},
				}
				var chains []Chain
				switch which {
				case 0:
					chains = []Chain{{Tasks: a}, {Tasks: b}}
				case 1:
					chains = []Chain{{Tasks: a}}
				default:
					chains = []Chain{{Tasks: b}}
				}
				if _, err := s.Admit(Job{ID: i, Release: release, Chains: chains}); err == nil {
					count++
				}
			}
			return count
		}
		tun := admitted(0)
		best := admitted(1)
		if b := admitted(2); b > best {
			best = b
		}
		if tun >= best {
			tunWins++
		} else {
			nonTunWins++
		}
	}
	if tunWins < nonTunWins {
		t.Fatalf("tunable admitted fewer jobs than the best non-tunable system in %d/%d trials",
			nonTunWins, tunWins+nonTunWins)
	}
}

func mustAdmit(t *testing.T, s *Scheduler, job Job) *Placement {
	t.Helper()
	pl, err := s.Admit(job)
	if err != nil {
		t.Fatalf("Admit(job %d): %v", job.ID, err)
	}
	return pl
}

// TestQuickPlanCommitEqualsAdmit: Plan followed by Commit reproduces
// Admit's placement and schedule state exactly, on random job streams.
func TestQuickPlanCommitEqualsAdmit(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + rng.Intn(8)
		a := NewScheduler(capacity, 0, nil)
		b := NewScheduler(capacity, 0, nil)
		release := 0.0
		for i := 0; i < 10+int(nRaw%40); i++ {
			release += rng.Float64() * 12
			dur := 1 + rng.Float64()*10
			job := Job{ID: i, Release: release, Chains: []Chain{
				{Tasks: []Task{{Procs: 1 + rng.Intn(capacity), Duration: dur, Deadline: release + dur*3}}},
				{Tasks: []Task{{Procs: 1 + rng.Intn(capacity), Duration: dur / 2, Deadline: release + dur*3}}},
			}}
			plA, errA := a.Admit(job)
			plB, okB := b.Plan(job)
			if (errA == nil) != okB {
				return false
			}
			if errA != nil {
				continue
			}
			if err := b.Commit(job, plB); err != nil {
				return false
			}
			if plA.Chain != plB.Chain || len(plA.Tasks) != len(plB.Tasks) {
				return false
			}
			for k := range plA.Tasks {
				if !timeEq(plA.Tasks[k].Start, plB.Tasks[k].Start) ||
					!timeEq(plA.Tasks[k].Finish, plB.Tasks[k].Finish) ||
					plA.Tasks[k].Procs != plB.Tasks[k].Procs {
					return false
				}
			}
		}
		// Identical final schedules.
		for probe := 0.0; probe < release+50; probe += 3.1 {
			if a.prof.UsedAt(probe) != b.prof.UsedAt(probe) {
				return false
			}
		}
		sa, sb := a.Stats(), b.Stats()
		return sa.Admitted == sb.Admitted && timeEq(sa.ReservedArea, sb.ReservedArea)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
