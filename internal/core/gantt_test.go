package core

import (
	"strings"
	"testing"
)

func TestRenderGantt(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	var placements []*Placement
	for i, job := range []Job{
		{ID: 1, Chains: []Chain{{Tasks: []Task{rect("a", 2, 10, 100)}}}},
		{ID: 2, Chains: []Chain{{Tasks: []Task{rect("b", 2, 10, 100)}}}},
		{ID: 3, Chains: []Chain{{Tasks: []Task{rect("c", 4, 5, 100)}}}},
	} {
		job.ID = i + 1
		pl := mustAdmit(t, s, job)
		placements = append(placements, pl)
	}
	asn, err := AssignProcessors(4, placements)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderGantt(&sb, 4, asn, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cpu0 ", "cpu3 ", "1", "2", "3", "t=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// 4 cpu rows + header.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("lines = %d, want 5:\n%s", got, out)
	}
}

func TestRenderGanttEdgeCases(t *testing.T) {
	var sb strings.Builder
	if err := RenderGantt(&sb, 2, nil, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty schedule") {
		t.Error("empty schedule not reported")
	}
	if err := RenderGantt(&sb, 0, nil, 20); err == nil {
		t.Error("capacity 0 accepted")
	}
	bad := []Assignment{{JobID: 1, Start: 0, Finish: 5, Procs: []int{7}}}
	if err := RenderGantt(&sb, 2, bad, 20); err == nil {
		t.Error("out-of-range processor accepted")
	}
	// Degenerate time span must not divide by zero.
	point := []Assignment{{JobID: 1, Start: 3, Finish: 3, Procs: []int{0}}}
	if err := RenderGantt(&sb, 1, point, 20); err != nil {
		t.Fatal(err)
	}
}
