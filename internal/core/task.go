package core

import (
	"errors"
	"fmt"
)

// Task is one stage of a job's chain.  Exactly one of the two resource
// models applies:
//
//   - Non-malleable (Malleable == false): the task needs Procs processors
//     simultaneously for Duration time units, a fixed rectangle in the
//     processor-time plane.  This models message-passing (PVM/MPI style)
//     programs whose processor count cannot change once started.
//   - Malleable (Malleable == true): the task performs Work processor-time
//     units of computation and can run on any p in [1, MaxProcs] processors
//     with linear speedup, i.e. for Work/p time.  This models Calypso
//     programs, where logical concurrency is mapped to processors at runtime.
//
// Deadline is absolute: the task and all of its predecessors in the chain
// must have finished by Deadline.  Quality is the task's contribution to the
// output quality of its chain; the scheduler itself treats it as opaque.
type Task struct {
	Name     string
	Procs    int     // processors required (non-malleable model)
	Duration float64 // time required (non-malleable model)
	Deadline float64 // absolute completion deadline for this task and its predecessors

	Malleable bool
	Work      float64 // total processor-time units (malleable model)
	MaxProcs  int     // degree of concurrency (malleable model)

	Quality float64
}

// Area returns the task's total resource requirement in processor-time units.
func (t Task) Area() float64 {
	if t.Malleable {
		return t.Work
	}
	return float64(t.Procs) * t.Duration
}

// Validate checks the internal consistency of the task.
func (t Task) Validate() error {
	if t.Malleable {
		if t.Work <= 0 {
			return fmt.Errorf("task %q: malleable work %v must be positive", t.Name, t.Work)
		}
		if t.MaxProcs < 1 {
			return fmt.Errorf("task %q: malleable max procs %d must be >= 1", t.Name, t.MaxProcs)
		}
		return nil
	}
	if t.Procs < 1 {
		return fmt.Errorf("task %q: procs %d must be >= 1", t.Name, t.Procs)
	}
	if t.Duration <= 0 {
		return fmt.Errorf("task %q: duration %v must be positive", t.Name, t.Duration)
	}
	return nil
}

// MakeMalleable returns a malleable version of a non-malleable task: the
// rectangle Procs x Duration becomes Work = Procs*Duration spreadable over up
// to Procs processors (the task's degree of concurrency).  A task that is
// already malleable is returned unchanged.
func (t Task) MakeMalleable() Task {
	if t.Malleable {
		return t
	}
	m := t
	m.Malleable = true
	m.Work = float64(t.Procs) * t.Duration
	m.MaxProcs = t.Procs
	return m
}

// Chain is one execution path of a job: an ordered sequence of tasks, each of
// which may begin as soon as its predecessor completes.  Quality is the
// composed output quality of the path.
type Chain struct {
	Name    string
	Tasks   []Task
	Quality float64
}

// Area returns the chain's total resource requirement in processor-time units.
func (c Chain) Area() float64 {
	var a float64
	for _, t := range c.Tasks {
		a += t.Area()
	}
	return a
}

// Validate checks every task and requires task deadlines to be
// non-decreasing along the chain (a successor cannot be due before its
// predecessor, since deadlines are cumulative).
func (c Chain) Validate() error {
	if len(c.Tasks) == 0 {
		return fmt.Errorf("chain %q: no tasks", c.Name)
	}
	prev := 0.0
	for i, t := range c.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("chain %q task %d: %w", c.Name, i, err)
		}
		if i > 0 && timeLess(t.Deadline, prev) {
			return fmt.Errorf("chain %q task %d: deadline %v before predecessor deadline %v",
				c.Name, i, t.Deadline, prev)
		}
		prev = t.Deadline
	}
	return nil
}

// MakeMalleable returns a copy of the chain with every task made malleable.
func (c Chain) MakeMalleable() Chain {
	out := Chain{Name: c.Name, Quality: c.Quality, Tasks: make([]Task, len(c.Tasks))}
	for i, t := range c.Tasks {
		out.Tasks[i] = t.MakeMalleable()
	}
	return out
}

// Job is a unit of admission: it is released (arrives) at Release and may
// execute along any one of Chains.  A job with a single chain is non-tunable;
// multiple chains are the enumerated paths of the application's OR task
// graph.
type Job struct {
	ID      int
	Name    string
	Release float64
	Chains  []Chain

	// Trace and Span carry request-tracing identity (obs.TraceID /
	// obs.SpanID of the request's root span) through the admission
	// pipeline as plain integers, so core needs no observability
	// dependency.  Zero means "untraced"; the scheduler never reads
	// them beyond passing the job to its hooks.
	Trace uint64
	Span  uint64

	// Tenant and Class carry accounting identity (which principal the
	// job bills to, and at which priority class) through the admission
	// pipeline as plain values — the same no-dependency trick as
	// Trace/Span, so core stays below the observability layer.  The
	// scheduler itself never reads them; the utilization ledger
	// (internal/obs/ledger) attributes reserved and realized capacity
	// by (Tenant, Class).  Empty tenant means "unattributed".
	Tenant string
	Class  int
}

// Tunable reports whether the job offers the scheduler a choice of paths.
func (j Job) Tunable() bool { return len(j.Chains) > 1 }

// Area returns the resource requirement of the job's cheapest chain.
func (j Job) Area() float64 {
	if len(j.Chains) == 0 {
		return 0
	}
	a := j.Chains[0].Area()
	for _, c := range j.Chains[1:] {
		a = minTime(a, c.Area())
	}
	return a
}

// Validate checks the job and all its chains.  Task deadlines must not
// precede the job's release time.
func (j Job) Validate() error {
	if len(j.Chains) == 0 {
		return errors.New("job has no chains")
	}
	for ci, c := range j.Chains {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("job %d: %w", j.ID, err)
		}
		for ti, t := range c.Tasks {
			if timeLess(t.Deadline, j.Release) {
				return fmt.Errorf("job %d chain %d task %d: deadline %v before release %v",
					j.ID, ci, ti, t.Deadline, j.Release)
			}
		}
	}
	return nil
}

// MakeMalleable returns a copy of the job with every chain made malleable.
func (j Job) MakeMalleable() Job {
	out := j
	out.Chains = make([]Chain, len(j.Chains))
	for i, c := range j.Chains {
		out.Chains[i] = c.MakeMalleable()
	}
	return out
}

// TaskPlacement records where one task of an admitted job was scheduled.
type TaskPlacement struct {
	Task   int // index within the chain
	Start  float64
	Finish float64
	Procs  int // actual processor count (differs from Task.Procs only for malleable tasks)
}

// Duration returns the scheduled duration of the placed task.
func (p TaskPlacement) Duration() float64 { return p.Finish - p.Start }

// Placement is the reservation granted to an admitted job: the chosen chain
// and the start/finish times and processor counts of each of its tasks.
type Placement struct {
	JobID int
	Chain int // index of the chosen chain within the job
	Tasks []TaskPlacement
}

// Finish returns the completion time of the placement's last task.
func (p Placement) Finish() float64 {
	if len(p.Tasks) == 0 {
		return 0
	}
	return p.Tasks[len(p.Tasks)-1].Finish
}

// Start returns the start time of the placement's first task.
func (p Placement) Start() float64 {
	if len(p.Tasks) == 0 {
		return 0
	}
	return p.Tasks[0].Start
}

// Area returns the total processor-time actually reserved by the placement.
func (p Placement) Area() float64 {
	var a float64
	for _, tp := range p.Tasks {
		a += float64(tp.Procs) * tp.Duration()
	}
	return a
}
