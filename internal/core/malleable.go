package core

// placeMalleableOn chooses a processor count and slot for a malleable task
// against an explicit profile.  With linear speedup, p processors run the
// task for Work/p time.  Processor counts are capped by the task's degree
// of concurrency and the machine size.
func (s *Scheduler) placeMalleableOn(prof *Profile, t Task, index int, est float64) (TaskPlacement, bool) {
	maxP := t.MaxProcs
	if m := prof.Capacity(); maxP > m {
		maxP = m
	}
	switch s.opts.Malleable {
	case MalleableEarliestFinish:
		var best TaskPlacement
		found := false
		for p := maxP; p >= 1; p-- {
			dur := t.Work / float64(p)
			start, ok := s.earliestFitOn(prof, p, dur, est, t.Deadline)
			if !ok {
				continue
			}
			finish := start + dur
			// Ties go to the higher processor count, i.e. the first winner
			// found while scanning downward is kept on equality.
			if !found || timeLess(finish, best.Finish) {
				best = TaskPlacement{Task: index, Start: start, Finish: finish, Procs: p}
				found = true
			}
		}
		return best, found
	default: // MalleableDescending: the paper's rule
		for p := maxP; p >= 1; p-- {
			dur := t.Work / float64(p)
			start, ok := s.earliestFitOn(prof, p, dur, est, t.Deadline)
			if !ok {
				continue
			}
			return TaskPlacement{Task: index, Start: start, Finish: start + dur, Procs: p}, true
		}
		return TaskPlacement{}, false
	}
}

// placeChainBacktrack places a chain with bounded backtracking: when task i
// cannot be placed, task i-1 is retried at the next feasible slot after its
// previous one.  The total number of placement attempts across the chain is
// bounded by Options.BacktrackBudget.  This is an extension beyond the
// paper's greedy rule, used to quantify how much the greedy heuristic loses
// to deeper search (ablation).
func (s *Scheduler) placeChainBacktrack(chain Chain, release float64) ([]TaskPlacement, bool) {
	budget := s.opts.backtrackBudget()
	n := len(chain.Tasks)
	out := make([]TaskPlacement, n)
	// minStart[i] is the earliest start we may consider for task i on the
	// current search branch; bumping it past a previous placement forces
	// the next-later slot.
	minStart := make([]float64, n)
	minStart[0] = release

	i := 0
	for i < n {
		if budget <= 0 {
			return nil, false
		}
		budget--
		t := chain.Tasks[i]
		est := minStart[i]
		if i > 0 {
			est = maxTime(est, out[i-1].Finish)
		}
		tp, ok := s.placeTask(t, i, est)
		if ok {
			out[i] = tp
			if i+1 < n {
				minStart[i+1] = 0
			}
			i++
			continue
		}
		// Dead end: retry the previous task starting at the next profile
		// breakpoint after its current slot (earlier retries would re-find
		// the same placement).
		for {
			if i == 0 {
				return nil, false
			}
			i--
			next, ok := s.prof.NextBreakAfter(out[i].Start)
			if ok {
				minStart[i] = next
				break
			}
			// Task i already sits in the final idle stretch; moving it
			// later cannot help, so back up further.
		}
	}
	return out, true
}
