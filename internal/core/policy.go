package core

// PlacementEngine selects how the scheduler searches the processor-time
// plane for a task's slot.  Both engines return identical answers (tested);
// they differ only in mechanics and cost, and exist as an ablation of the
// paper's maximal-hole bookkeeping.
type PlacementEngine int

const (
	// EngineProfile scans the piecewise-constant availability profile
	// directly (the default; fastest).
	EngineProfile PlacementEngine = iota
	// EngineHoles enumerates maximal holes per query, the literal
	// formulation in Section 5.2 of the paper.
	EngineHoles
)

// TieBreak selects how the scheduler chooses among the schedulable chains of
// a tunable job.
type TieBreak int

const (
	// TieBreakPaper is the full rule from Section 5.2: earliest finish
	// time, then higher utilization over the job's [release, finish]
	// window, then lexicographically smaller cumulative resource prefix,
	// then lower chain index.
	TieBreakPaper TieBreak = iota
	// TieBreakFirstFit takes the first chain (in declaration order) that is
	// schedulable, ignoring finish times.
	TieBreakFirstFit
	// TieBreakMinArea prefers the schedulable chain that reserves the least
	// total processor-time, breaking ties by earliest finish.
	TieBreakMinArea
	// TieBreakUtilFirst applies Section 5.2's wording literally: maximize
	// utilization over the job's [release, finish] window first, then the
	// smaller resource prefix, then earlier finish.  With the synthetic
	// task system's equal-area chains this usually coincides with
	// TieBreakPaper (the paper notes its rule "finds the job configuration
	// which achieves the earliest finish time").
	TieBreakUtilFirst
	// TieBreakMaxQuality maximizes the chosen chain's output quality
	// first, then falls back to the paper rule.  Section 5.1 notes that in
	// practice the chains of a tunable application have different
	// qualities and "the issue then is of maximizing the achieved job
	// quality"; this policy implements that objective.
	TieBreakMaxQuality
)

// MalleablePolicy selects how processor counts are chosen for malleable
// tasks.
type MalleablePolicy int

const (
	// MalleableDescending tries processor counts from the task's degree of
	// concurrency downward and takes the first count whose placement meets
	// the deadline (Section 5.4: "starting from the highest number of
	// processors the task can use").
	MalleableDescending MalleablePolicy = iota
	// MalleableEarliestFinish evaluates every processor count and picks the
	// one whose placement finishes earliest (ties to the higher count).
	MalleableEarliestFinish
)

// ProfileIndexMode selects whether the scheduler's capacity profile carries
// the segment-tree index (see index.go).  Both modes return identical
// answers to every probe (enforced by the differential oracle harness);
// they differ only in cost.
type ProfileIndexMode int

const (
	// ProfileIndexOn (the default) attaches the segment-tree index:
	// MinAvailOn is one range-min query, EarliestFit skips blocked
	// stretches by tree descent, MaximalHoles extends rectangles by
	// descent.  Admission cost stays near-logarithmic in the number of
	// committed reservations.
	ProfileIndexOn ProfileIndexMode = iota
	// ProfileIndexOff keeps the linear reference path: every probe scans
	// the segment list.  Retained as the oracle for differential tests
	// and as an ablation baseline.
	ProfileIndexOff
)

// ChainPlacer selects how the tasks of one chain are placed.
type ChainPlacer int

const (
	// PlaceGreedy places each task at its earliest feasible start and never
	// revisits the decision (the paper's heuristic).
	PlaceGreedy ChainPlacer = iota
	// PlaceBacktrack retries earlier tasks at later slots when a successor
	// cannot be placed, within a bounded number of attempts.  An extension:
	// the paper notes the underlying problem is NP-hard and stops at the
	// greedy rule.
	PlaceBacktrack
)

// Options configures a Scheduler.  The zero value is the configuration used
// throughout the paper's evaluation.
type Options struct {
	Engine      PlacementEngine
	TieBreak    TieBreak
	Malleable   MalleablePolicy
	ChainPlacer ChainPlacer
	// ProfileIndex selects whether the capacity profile keeps a
	// segment-tree index over availability (default: on).  The index
	// never changes scheduling decisions, only their cost.
	ProfileIndex ProfileIndexMode
	// BacktrackBudget bounds the total number of per-task placement
	// attempts when ChainPlacer is PlaceBacktrack.  Zero means 64.
	BacktrackBudget int
	// Hooks, if non-nil, observes the admission pipeline (see Hooks).
	// Because Hooks travels inside Options it survives scheduler rebuilds
	// (e.g. the dynamic arbitrator's capacity renegotiations).
	Hooks *Hooks
	// Diagnosis, if non-nil, receives a rejection explanation for every
	// failed planning pass (see PlanDiagnosis).  Like Hooks it travels
	// inside Options; unlike Hooks it sits entirely off the admission hot
	// path — a successful plan never touches it, and a failed plan pays
	// one nil check when it is absent.  The diagnosis replays run on
	// forks of the profile, so installing a sink never changes admission
	// decisions or scheduler statistics.
	Diagnosis func(*PlanDiagnosis)
}

func (o Options) backtrackBudget() int {
	if o.BacktrackBudget <= 0 {
		return 64
	}
	return o.BacktrackBudget
}
