package core_test

// The differential oracle harness: the segment-tree-indexed profile must
// agree *exactly* — same ints, bitwise-same floats, same hole enumerations,
// same mutation outcomes, same segment structure — with the linear
// reference implementation on every operation of randomized
// reserve/trim/probe streams.  Sequences that diverge are shrunk to a
// minimal replayable counterexample by the harness (see
// internal/core/proftest).

import (
	"math"
	"math/rand"
	"testing"

	"milan/internal/core"
	"milan/internal/core/proftest"
)

// TestOracleRandomOpStreams replays >10k randomized operations per
// capacity class through the indexed/linear pair.  Covers MinAvailOn,
// EarliestFit (direct and fit-then-reserve), MaximalHoles,
// EarliestFitHoles, BusyUpTo/BusyOn, TrimBefore, and after every single
// operation the Segments invariants (sorted breakpoints more than Eps
// apart, usage within capacity, idle final segment) plus exact
// segment-structure equality.
func TestOracleRandomOpStreams(t *testing.T) {
	const opsPerStream = 700
	capacities := []int{1, 2, 3, 5, 8, 17, 32}
	seedsPer := 3
	total := 0
	for _, capacity := range capacities {
		for s := 0; s < seedsPer; s++ {
			rng := rand.New(rand.NewSource(int64(1000*capacity + s)))
			ops := proftest.RandomOps(rng, opsPerStream, capacity)
			proftest.Check(t, capacity, ops)
			total += len(ops)
		}
	}
	if total < 10000 {
		t.Fatalf("only %d ops replayed, want >= 10000", total)
	}
}

// TestOracleEpsilonJitterStorm hammers the Eps-tolerant boundary
// predicates: every generated time sits within a couple of tolerance units
// of a shared integer grid, so nearly every reserve boundary and probe
// endpoint lands in the dedup band of an existing breakpoint.
func TestOracleEpsilonJitterStorm(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]proftest.Op, 0, 800)
		for i := 0; i < 800; i++ {
			base := float64(rng.Intn(40))
			jit := (rng.Float64()*2 - 1) * 2.4e-9 // up to ±2.4 Eps
			op := proftest.Op{
				Procs: 1 + rng.Intn(6),
				A:     base + jit,
				B:     float64(1+rng.Intn(8)) + (rng.Float64()*2-1)*1.2e-9,
				C:     math.Inf(1),
			}
			switch rng.Intn(5) {
			case 0:
				op.Kind = proftest.OpReserve
			case 1:
				op.Kind = proftest.OpReserveFit
			case 2:
				op.Kind = proftest.OpMinAvail
			case 3:
				op.Kind = proftest.OpEarliestFit
			default:
				op.Kind = proftest.OpHoles
			}
			ops = append(ops, op)
		}
		proftest.Check(t, 6, ops)
	}
}

// TestOracleTrimHeavyChurn mimics the arbitrator's steady state: arrivals
// reserve at their earliest fit while the clock advances and TrimBefore
// folds history, so the index is structurally invalidated and rebuilt over
// and over.  The fold-aware trim must never desynchronize the pair.
func TestOracleTrimHeavyChurn(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		clock := 0.0
		ops := make([]proftest.Op, 0, 1500)
		for i := 0; i < 1500; i++ {
			clock += rng.Float64() * 2
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, proftest.Op{Kind: proftest.OpTrim, Procs: 1, A: clock, B: 1})
			case 1:
				ops = append(ops, proftest.Op{Kind: proftest.OpHoles, Procs: 1 + rng.Intn(8),
					A: clock, B: 1 + rng.Float64()*10, C: math.Inf(1)})
			default:
				ops = append(ops, proftest.Op{Kind: proftest.OpReserveFit, Procs: 1 + rng.Intn(8),
					A: clock, B: 0.5 + rng.Float64()*12, C: math.Inf(1)})
			}
		}
		proftest.Check(t, 8, ops)
	}
}

// TestOracleSchedulerStatsIdentical drives the full greedy scheduler —
// tunable jobs, malleable tasks, both tie-break families — with the index
// on and off, and requires bit-identical Stats: the index must never change
// a scheduling decision, an admission count, or an achieved quality.
func TestOracleSchedulerStatsIdentical(t *testing.T) {
	mkJob := func(rng *rand.Rand, id int, release float64) core.Job {
		nchains := 1 + rng.Intn(3)
		job := core.Job{ID: id, Release: release}
		for c := 0; c < nchains; c++ {
			ntasks := 1 + rng.Intn(3)
			ch := core.Chain{Quality: 0.4 + 0.2*float64(c)}
			est := release
			for k := 0; k < ntasks; k++ {
				work := 2 + rng.Float64()*10
				procs := 1 + rng.Intn(6)
				dur := work / float64(procs)
				deadline := est + dur*(1.4+rng.Float64())
				task := core.Task{Procs: procs, Duration: dur, Deadline: deadline}
				if rng.Intn(3) == 0 {
					task = core.Task{Malleable: true, Work: work, MaxProcs: procs + rng.Intn(4),
						Deadline: deadline}
				}
				ch.Tasks = append(ch.Tasks, task)
				est = deadline
			}
			job.Chains = append(job.Chains, ch)
		}
		return job
	}
	for _, tb := range []core.TieBreak{core.TieBreakPaper, core.TieBreakMaxQuality} {
		rngA := rand.New(rand.NewSource(42))
		rngB := rand.New(rand.NewSource(42))
		on := core.NewScheduler(16, 0, &core.Options{TieBreak: tb, ProfileIndex: core.ProfileIndexOn})
		off := core.NewScheduler(16, 0, &core.Options{TieBreak: tb, ProfileIndex: core.ProfileIndexOff})
		if !on.Profile().IndexEnabled() || off.Profile().IndexEnabled() {
			t.Fatal("ProfileIndex option not threaded through NewScheduler")
		}
		clock := 0.0
		for id := 0; id < 400; id++ {
			clock += rngA.Float64() * 3
			rngB.Float64()
			jobA := mkJob(rngA, id, clock)
			jobB := mkJob(rngB, id, clock)
			plA, errA := on.Admit(jobA)
			plB, errB := off.Admit(jobB)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("tiebreak %v job %d: indexed err=%v, linear err=%v", tb, id, errA, errB)
			}
			if errA == nil {
				if plA.Chain != plB.Chain || plA.Finish() != plB.Finish() || plA.Area() != plB.Area() {
					t.Fatalf("tiebreak %v job %d: placements diverge: %+v vs %+v", tb, id, plA, plB)
				}
			}
			if id%37 == 0 {
				on.Observe(clock)
				off.Observe(clock)
			}
		}
		sa, sb := on.Stats(), off.Stats()
		if sa.Admitted != sb.Admitted || sa.Rejected != sb.Rejected ||
			sa.QualitySum != sb.QualitySum || sa.MeanQuality() != sb.MeanQuality() ||
			sa.ReservedArea != sb.ReservedArea ||
			sa.ChainsTried != sb.ChainsTried || sa.PlanFailures != sb.PlanFailures {
			t.Fatalf("tiebreak %v: stats diverge:\nindexed: %+v\nlinear:  %+v", tb, sa, sb)
		}
		if st := on.IndexStats(); !st.Enabled || st.Rebuilds == 0 || st.Descents == 0 {
			t.Fatalf("indexed scheduler did no index work: %+v", st)
		}
		if st := off.IndexStats(); st.Enabled {
			t.Fatalf("linear scheduler unexpectedly indexed: %+v", st)
		}
	}
}

// TestOracleHolesEngineIdentical repeats the comparison under EngineHoles,
// where every placement probe routes through MaximalHoles: the indexed
// enumeration feeds the same hole-scan, so decisions must be identical.
func TestOracleHolesEngineIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	on := core.NewScheduler(8, 0, &core.Options{Engine: core.EngineHoles})
	off := core.NewScheduler(8, 0, &core.Options{Engine: core.EngineHoles, ProfileIndex: core.ProfileIndexOff})
	clock := 0.0
	for id := 0; id < 200; id++ {
		clock += rng.Float64() * 4
		procs := 1 + rng.Intn(4)
		dur := 1 + rng.Float64()*6
		job := core.Job{ID: id, Release: clock, Chains: []core.Chain{{
			Quality: 1,
			Tasks:   []core.Task{{Procs: procs, Duration: dur, Deadline: clock + dur*(1.5+rng.Float64()*2)}},
		}}}
		_, errA := on.Admit(job)
		_, errB := off.Admit(job)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("job %d: indexed err=%v, linear err=%v", id, errA, errB)
		}
	}
	sa, sb := on.Stats(), off.Stats()
	if sa.Admitted != sb.Admitted || sa.Rejected != sb.Rejected {
		t.Fatalf("holes-engine stats diverge: %+v vs %+v", sa, sb)
	}
}
