package core

import (
	"fmt"
	"sort"
)

// This file implements the indexed processor-time profile: a lazily rebuilt
// segment tree over the piecewise-constant availability function of a
// Profile.  The tree stores, per node, the minimum and maximum availability
// over its span of profile segments, which turns the scheduler's three probe
// primitives into tree walks:
//
//	MinAvailOn    — one range-min query, O(log n)
//	EarliestFit   — "first segment >= i with avail >= k" (max-descent) and
//	                "first segment >= i with avail < k" (min-descent),
//	                O(log n) per blocked stretch skipped instead of O(1) per
//	                segment scanned
//	MaximalHoles  — left/right extension of each candidate rectangle by
//	                backward/forward descents, O(n log n) total instead of
//	                O(n^2)
//
// Invalidation is incremental where possible: a Reserve that introduces no
// new breakpoints updates only the affected leaves; any structural change
// (breakpoint insertion via ensureBreak, or a TrimBefore fold) marks the
// index dirty and the next query rebuilds it in O(n).  This matches the
// scheduler's access pattern — Plan issues many probes per arrival, Commit
// issues a handful of reservations — so the rebuild cost amortizes across
// the probe burst.
//
// Every indexed query is written to be *exactly* equivalent to the linear
// reference implementation, including the Eps-tolerant boundary predicates
// (the same timeLeq/seg expressions are used on both paths), so that the
// differential oracle harness can assert bitwise-equal answers.

// IndexStats reports the work done by a profile's segment-tree index.
// Counters are cumulative since EnableIndex (clones start fresh).
type IndexStats struct {
	// Enabled reports whether the profile carries an index at all.
	Enabled bool
	// Rebuilds counts full O(n) tree rebuilds (after structural changes).
	Rebuilds int64
	// LeafUpdates counts incremental leaf refreshes (reservations that
	// introduced no new breakpoints).
	LeafUpdates int64
	// Descents counts tree walks (first-below / first-at-least /
	// last-below searches).
	Descents int64
	// DescentSteps counts nodes visited across all descents; divided by
	// Descents it is the mean probe depth.
	DescentSteps int64
	// RangeQueries counts range-min queries.
	RangeQueries int64
}

// profIndex is the segment tree.  Nodes are stored 1-based in flat arrays of
// length 2*size, with leaves at [size, size+n); padding leaves beyond n hold
// full availability (the final profile segment is always idle, so a padded
// leaf can never win a search that a real leaf would not).
type profIndex struct {
	size  int // leaf capacity, a power of two >= n
	n     int // live leaves (= number of profile segments at build time)
	minA  []int
	maxA  []int
	dirty bool
	stats IndexStats
}

// EnableIndex attaches a segment-tree index to the profile.  All probe
// queries (MinAvailOn, EarliestFit, MaximalHoles and the hole-based oracle
// built on them) are answered through the index from then on; results are
// identical to the linear path.  Enabling twice is a no-op.
func (p *Profile) EnableIndex() {
	if p.idx == nil {
		p.idx = &profIndex{dirty: true}
		p.idx.stats.Enabled = true
	}
}

// IndexEnabled reports whether the profile carries a segment-tree index.
func (p *Profile) IndexEnabled() bool { return p.idx != nil }

// IndexStats returns the index's work counters (zero value when no index is
// attached).
func (p *Profile) IndexStats() IndexStats {
	if p.idx == nil {
		return IndexStats{}
	}
	return p.idx.stats
}

// markStructDirty records a structural change (breakpoint insertion or trim
// fold); the next indexed query rebuilds the tree.
func (p *Profile) markStructDirty() {
	if p.idx != nil {
		p.idx.dirty = true
	}
}

// idxEnsure rebuilds the index if it is stale and returns it.
func (p *Profile) idxEnsure() *profIndex {
	x := p.idx
	if x.dirty || x.n != len(p.used) {
		x.rebuild(p)
	}
	return x
}

// rebuild reconstructs the tree from the profile in O(n).  The node arrays
// are reused across rebuilds once grown.
func (x *profIndex) rebuild(p *Profile) {
	n := len(p.used)
	size := 1
	for size < n {
		size <<= 1
	}
	if len(x.minA) < 2*size {
		x.minA = make([]int, 2*size)
		x.maxA = make([]int, 2*size)
	}
	x.size = size
	x.n = n
	for i := 0; i < n; i++ {
		v := p.capacity - p.used[i]
		x.minA[size+i] = v
		x.maxA[size+i] = v
	}
	for i := n; i < size; i++ {
		x.minA[size+i] = p.capacity
		x.maxA[size+i] = p.capacity
	}
	for i := size - 1; i >= 1; i-- {
		l, r := 2*i, 2*i+1
		if x.minA[l] < x.minA[r] {
			x.minA[i] = x.minA[l]
		} else {
			x.minA[i] = x.minA[r]
		}
		if x.maxA[l] > x.maxA[r] {
			x.maxA[i] = x.maxA[l]
		} else {
			x.maxA[i] = x.maxA[r]
		}
	}
	x.dirty = false
	x.stats.Rebuilds++
}

// leafSet refreshes leaf i to availability v and pulls the change up.
func (x *profIndex) leafSet(i, v int) {
	pos := x.size + i
	x.minA[pos] = v
	x.maxA[pos] = v
	for pos >>= 1; pos >= 1; pos >>= 1 {
		l, r := 2*pos, 2*pos+1
		mn, mx := x.minA[l], x.maxA[l]
		if x.minA[r] < mn {
			mn = x.minA[r]
		}
		if x.maxA[r] > mx {
			mx = x.maxA[r]
		}
		if x.minA[pos] == mn && x.maxA[pos] == mx {
			break
		}
		x.minA[pos] = mn
		x.maxA[pos] = mx
	}
	x.stats.LeafUpdates++
}

// rangeMin returns the minimum availability over leaves [l, r] (inclusive).
func (x *profIndex) rangeMin(l, r int) int {
	x.stats.RangeQueries++
	res := int(^uint(0) >> 1) // max int
	a, b := x.size+l, x.size+r+1
	for a < b {
		if a&1 == 1 {
			if x.minA[a] < res {
				res = x.minA[a]
			}
			a++
		}
		if b&1 == 1 {
			b--
			if x.minA[b] < res {
				res = x.minA[b]
			}
		}
		a >>= 1
		b >>= 1
	}
	return res
}

// firstBelow returns the smallest leaf index >= from whose availability is
// strictly below k, or n if none exists among the live leaves.  Padding
// leaves hold full capacity and therefore never match for k <= capacity.
func (x *profIndex) firstBelow(from, k int) int {
	return x.firstMatch(from, func(node int) bool { return x.minA[node] < k }, true)
}

// firstAtLeast returns the smallest leaf index >= from whose availability is
// at least k, or n if none exists.  For k <= capacity the final live leaf
// (the profile's idle tail segment) always matches.
func (x *profIndex) firstAtLeast(from, k int) int {
	return x.firstMatch(from, func(node int) bool { return x.maxA[node] >= k }, false)
}

// firstMatch walks rightward from leaf `from`, merging into parents on
// alignment, until a subtree satisfying pred is found, then descends to its
// leftmost satisfying leaf.  useMin selects which array the leaf descent
// reads (pred must be the corresponding subtree test).
func (x *profIndex) firstMatch(from int, pred func(node int) bool, useMin bool) int {
	x.stats.Descents++
	if from < 0 {
		from = 0
	}
	if from >= x.n {
		return x.n
	}
	pos := x.size + from
	for {
		x.stats.DescentSteps++
		if pred(pos) {
			for pos < x.size {
				x.stats.DescentSteps++
				if pred(2 * pos) {
					pos = 2 * pos
				} else {
					pos = 2*pos + 1
				}
			}
			idx := pos - x.size
			if idx >= x.n {
				return x.n
			}
			return idx
		}
		pos++
		if pos&(pos-1) == 0 {
			return x.n // walked off the right edge of the tree
		}
		for pos&1 == 0 {
			pos >>= 1
		}
	}
}

// lastBelow returns the largest leaf index <= upTo whose availability is
// strictly below k, or -1 if none exists.
func (x *profIndex) lastBelow(upTo, k int) int {
	x.stats.Descents++
	if upTo >= x.n {
		upTo = x.n - 1
	}
	if upTo < 0 {
		return -1
	}
	pos := x.size + upTo
	for {
		x.stats.DescentSteps++
		if x.minA[pos] < k {
			for pos < x.size {
				x.stats.DescentSteps++
				if x.minA[2*pos+1] < k {
					pos = 2*pos + 1
				} else {
					pos = 2 * pos
				}
			}
			return pos - x.size
		}
		if pos&(pos-1) == 0 {
			return -1 // subtree started at leaf 0: nothing to the left
		}
		pos--
		for pos&1 == 1 {
			pos >>= 1
		}
	}
}

// checkIndex verifies that a clean index agrees with the profile's segment
// data (used by CheckInvariants and the differential harness).
func (p *Profile) checkIndex() error {
	x := p.idx
	if x == nil || x.dirty || x.n != len(p.used) {
		return nil // stale index carries no claims
	}
	for i, u := range p.used {
		v := p.capacity - u
		if x.minA[x.size+i] != v || x.maxA[x.size+i] != v {
			return fmt.Errorf("core: index leaf %d = (%d,%d), profile avail %d",
				i, x.minA[x.size+i], x.maxA[x.size+i], v)
		}
	}
	for i := x.size - 1; i >= 1; i-- {
		l, r := 2*i, 2*i+1
		mn, mx := x.minA[l], x.maxA[l]
		if x.minA[r] < mn {
			mn = x.minA[r]
		}
		if x.maxA[r] > mx {
			mx = x.maxA[r]
		}
		if x.minA[i] != mn || x.maxA[i] != mx {
			return fmt.Errorf("core: index node %d = (%d,%d), want (%d,%d)",
				i, x.minA[i], x.maxA[i], mn, mx)
		}
	}
	return nil
}

// minAvailOnIndexed answers MinAvailOn through the index.  The segment range
// is derived with the same Eps-tolerant predicates as the linear scan, so
// the answer is identical.
func (p *Profile) minAvailOnIndexed(a, b float64) int {
	if !timeLess(a, b) {
		return p.capacity - p.UsedAt(a)
	}
	x := p.idxEnsure()
	lo := p.seg(a)
	n := len(p.times)
	// First segment index > lo whose start already reaches b (the linear
	// loop's break condition), capped at n.
	hi := lo + 1 + sort.Search(n-lo-1, func(k int) bool { return timeLeq(b, p.times[lo+1+k]) })
	if hi > n {
		hi = n
	}
	return x.rangeMin(lo, hi-1)
}

// earliestFitIndexed answers EarliestFit through the index.  The search
// alternates max-descents (skip to the next segment with enough
// availability) with range checks, visiting O(log n) nodes per blocked
// stretch instead of scanning every segment.  Candidate start times and all
// boundary comparisons are the same expressions as the linear scan, so the
// returned start is bitwise identical.
func (p *Profile) earliestFitIndexed(procs int, duration, est, deadline float64) (float64, bool) {
	if procs > p.capacity || duration <= 0 {
		return 0, false
	}
	x := p.idxEnsure()
	n := len(p.times)
	s := maxTime(est, p.times[0])
	if !timeLeq(s+duration, deadline) {
		return 0, false
	}
	i := p.seg(s)
	for {
		if p.capacity-p.used[i] < procs {
			// The linear scan blocks immediately at i and then marches
			// segment by segment; jump straight to the next segment with
			// enough availability (the idle tail guarantees one exists).
			m := x.firstAtLeast(i+1, procs)
			if m >= n {
				return 0, false
			}
			s = p.times[m]
			i = m
			if !timeLeq(s+duration, deadline) {
				return 0, false
			}
		}
		// avail(i) >= procs and times[i] <= s here.  The window [s, s+d)
		// is covered by segments [i, jEnd].
		jEnd := i + sort.Search(n-1-i, func(k int) bool { return timeLeq(s+duration, p.times[i+1+k]) })
		jb := x.firstBelow(i, procs)
		if jb > jEnd {
			return s, true
		}
		// Segment jb blocks the window; restart after it at the next
		// sufficiently available segment.  jb < n-1 always: the final
		// segment is idle and procs <= capacity.
		m := x.firstAtLeast(jb+1, procs)
		if m >= n {
			return 0, false
		}
		s = p.times[m]
		i = m
		if !timeLeq(s+duration, deadline) {
			return 0, false
		}
	}
}

// maximalHolesIndexed answers MaximalHoles through the index: each
// candidate rectangle's left/right extension is a single backward/forward
// descent and its height a range-min query, O(n log n) total.  Spans,
// deduplication, hole boundaries and ordering are computed with the same
// expressions as the linear enumeration, so the slice is identical.
func (p *Profile) maximalHolesIndexed(from float64) []Hole {
	x := p.idxEnsure()
	from = maxTime(from, p.times[0])
	lo := p.seg(from)
	n := len(p.times)

	type span struct{ l, r int }
	seen := make(map[span]bool)
	var holes []Hole

	for i := lo; i < n; i++ {
		avail := p.capacity - p.used[i]
		if avail <= 0 {
			continue
		}
		l := lo
		if j := x.lastBelow(i-1, avail); j+1 > lo {
			l = j + 1
		}
		r := n - 1
		if j := x.firstBelow(i+1, avail); j < n {
			r = j - 1
		}
		min := x.rangeMin(l, r)
		sp := span{l, r}
		if seen[sp] {
			continue
		}
		seen[sp] = true
		start := p.times[l]
		if l == lo {
			start = maxTime(p.times[l], from)
		}
		end := Inf
		if r < n-1 {
			end = p.times[r+1]
		}
		holes = append(holes, Hole{Start: start, End: end, Procs: min})
	}
	sort.Slice(holes, func(a, b int) bool {
		if !timeEq(holes[a].Start, holes[b].Start) {
			return holes[a].Start < holes[b].Start
		}
		return holes[a].Procs > holes[b].Procs
	})
	return holes
}
