package core

import (
	"math/rand"
	"testing"
)

func TestWhatIfDeltaApplyToPure(t *testing.T) {
	job := Job{ID: 1, Release: 2, Chains: []Chain{
		{Tasks: []Task{{Procs: 4, Duration: 3, Deadline: 10}, {Procs: 2, Duration: 1, Deadline: 12}}},
		{Tasks: []Task{{Malleable: true, Work: 8, MaxProcs: 4, Deadline: 9}}},
	}}
	orig := Job{ID: 1, Release: 2, Chains: []Chain{
		{Tasks: []Task{{Procs: 4, Duration: 3, Deadline: 10}, {Procs: 2, Duration: 1, Deadline: 12}}},
		{Tasks: []Task{{Malleable: true, Work: 8, MaxProcs: 4, Deadline: 9}}},
	}}
	d := WhatIfDelta{ExtraDeadline: 5, WidthCap: 2, OnlyChain: 1}
	out := d.ApplyTo(job)
	if len(out.Chains) != 1 {
		t.Fatalf("OnlyChain=1 kept %d chains", len(out.Chains))
	}
	t0 := out.Chains[0].Tasks[0]
	if t0.Procs != 2 || !timeEq(t0.Duration, 6) || !timeEq(t0.Deadline, 15) {
		t.Fatalf("task 0 after delta = %+v, want procs=2 dur=6 deadline=15", t0)
	}
	// Constant area under the width cap.
	if !timeEq(t0.Area(), orig.Chains[0].Tasks[0].Area()) {
		t.Fatalf("width cap changed the task area: %v != %v", t0.Area(), orig.Chains[0].Tasks[0].Area())
	}
	// The input job must be untouched.
	for ci := range orig.Chains {
		for ti := range orig.Chains[ci].Tasks {
			if job.Chains[ci].Tasks[ti] != orig.Chains[ci].Tasks[ti] {
				t.Fatalf("ApplyTo mutated the input job at chain %d task %d", ci, ti)
			}
		}
	}
	// Malleable clamp.
	d2 := WhatIfDelta{WidthCap: 2, OnlyChain: 2}
	m := d2.ApplyTo(job).Chains[0].Tasks[0]
	if m.MaxProcs != 2 || m.Work != 8 {
		t.Fatalf("malleable after cap = %+v, want MaxProcs=2 Work=8", m)
	}
}

func TestWhatIfShrinkBelowPeakFails(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	if err := s.ReserveSlot(3, 0, 10); err != nil {
		t.Fatal(err)
	}
	job := Job{ID: 1, Chains: []Chain{rigid(1, 1, 100)}}
	if _, ok := s.WhatIf(job, WhatIfDelta{ExtraProcs: -2}); ok {
		t.Fatalf("shrink below committed peak admitted a probe")
	}
	if _, ok := s.WhatIf(job, WhatIfDelta{ExtraProcs: -1}); !ok {
		t.Fatalf("shrink to exactly the committed peak must still plan a 1-wide task")
	}
}

// TestWhatIfIsolation is the probe-isolation property test: a live
// schedule driven by a proftest-style mutation stream stays bit-identical
// to a control schedule driven by the same stream, no matter how many
// WhatIf probes and Diagnose replays are interleaved.  The comparison is
// the same state differencing the differential oracle harness uses
// (profile rendering + invariants), plus the index work counters — probes
// must not even show up as query work on the live profile.
func TestWhatIfIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const capacity = 8
	s := NewScheduler(capacity, 0, nil)
	control := NewProfile(capacity, 0)
	control.EnableIndex()

	probe := func(now float64) {
		job := Job{
			ID:      rng.Int(),
			Release: now + rng.Float64()*10,
			Chains: []Chain{{Tasks: []Task{{
				Procs:    1 + rng.Intn(2*capacity),
				Duration: 0.5 + rng.Float64()*10,
				Deadline: now + 5 + rng.Float64()*20,
			}}}},
		}
		if job.Validate() != nil {
			return
		}
		d := WhatIfDelta{
			ExtraProcs:    rng.Intn(7) - 2,
			ExtraDeadline: rng.Float64() * 30,
			WidthCap:      rng.Intn(capacity + 1),
		}
		s.WhatIf(job, d)
		if _, ok := s.WhatIf(job, WhatIfDelta{}); !ok {
			s.Diagnose(job)
		}
	}

	now := 0.0
	for i := 0; i < 300; i++ {
		baseline := s.IndexStats()
		probe(now)
		if got := s.IndexStats(); got != baseline {
			t.Fatalf("op %d: probes changed live index counters: %+v -> %+v", i, baseline, got)
		}

		// One mutation on both the live schedule and the control.
		start := now + rng.Float64()*20
		dur := 0.2 + rng.Float64()*8
		procs := 1 + rng.Intn(capacity)
		switch rng.Intn(3) {
		case 0: // reserve via the scheduler's own allocation pattern
			if slot, ok := s.Profile().EarliestFit(procs, dur, start, Inf); ok {
				if err := s.ReserveSlot(procs, slot, slot+dur); err != nil {
					t.Fatalf("op %d: live reserve: %v", i, err)
				}
				if err := control.Reserve(procs, slot, slot+dur); err != nil {
					t.Fatalf("op %d: control reserve: %v", i, err)
				}
			}
		case 1: // trim history
			now += rng.Float64() * 2
			s.Observe(now)
			control.TrimBefore(now)
		case 2: // admit a real job
			job := Job{ID: i, Release: start, Chains: []Chain{{Tasks: []Task{{
				Procs: procs, Duration: dur, Deadline: start + dur*(1+rng.Float64()*3),
			}}}}}
			if pl, ok := s.Plan(job); ok {
				if err := s.Commit(job, pl); err != nil {
					t.Fatalf("op %d: commit: %v", i, err)
				}
				for _, tp := range pl.Tasks {
					if err := control.Reserve(tp.Procs, tp.Start, tp.Finish); err != nil {
						t.Fatalf("op %d: control mirror: %v", i, err)
					}
				}
			}
		}

		probe(now)

		if got, want := s.Profile().String(), control.String(); got != want {
			t.Fatalf("op %d: live profile diverged from control:\n live:    %s\n control: %s", i, got, want)
		}
		if err := s.Profile().CheckInvariants(); err != nil {
			t.Fatalf("op %d: live invariants: %v", i, err)
		}
	}
}

func TestHeadroomOf(t *testing.T) {
	p := NewProfile(4, 0)
	// Idle machine: the whole window is one 4-wide hole.
	hr := HeadroomOf(p, 0, 10)
	if hr.MaxProcs != 4 || !timeEq(hr.MaxDuration, 10) || !timeEq(hr.MaxArea, 40) {
		t.Fatalf("idle headroom = %+v, want 4 procs x 10 = 40", hr)
	}
	// Block 3 procs over [2, 6): window [0, 10) now offers
	// [0,2)x4 (area 8), [2,6)x1 (area 4), [6,10)x4 (area 16),
	// and the full-window 1-wide hole [0,10)x1 (area 10).
	if err := p.Reserve(3, 2, 6); err != nil {
		t.Fatal(err)
	}
	hr = HeadroomOf(p, 0, 10)
	if hr.MaxProcs != 4 {
		t.Fatalf("max procs = %d, want 4", hr.MaxProcs)
	}
	if !timeEq(hr.MaxDuration, 10) {
		t.Fatalf("max duration = %v, want 10 (1-wide hole spans the window)", hr.MaxDuration)
	}
	if !timeEq(hr.MaxArea, 16) || hr.BestHole.Procs != 4 || !timeEq(hr.BestHole.Start, 6) {
		t.Fatalf("best rectangle = %+v (area %v), want [6,10)x4", hr.BestHole, hr.MaxArea)
	}
	if !hr.Fits(4, 4) || !hr.Fits(2, 3) || hr.Fits(4, 5) {
		t.Fatalf("Fits frontier wrong: %+v", hr)
	}

	// Merge: a second machine with a wider short hole.
	q := NewProfile(6, 0)
	if err := q.Reserve(6, 1, 10); err != nil {
		t.Fatal(err)
	}
	hq := HeadroomOf(q, 0, 10)
	if hq.MaxProcs != 6 || !timeEq(hq.MaxArea, 6) {
		t.Fatalf("second machine headroom = %+v", hq)
	}
	m := hr.Merge(hq)
	if m.MaxProcs != 6 || !timeEq(m.MaxArea, 16) || !timeEq(m.MaxDuration, 10) {
		t.Fatalf("merged frontier = %+v, want procs=6 area=16 duration=10", m)
	}
}

func TestSchedulerHeadroomFollowsLoad(t *testing.T) {
	s := NewScheduler(4, 0, nil)
	before := s.Headroom(0, 20)
	if before.MaxProcs != 4 {
		t.Fatalf("idle scheduler headroom %+v", before)
	}
	job := Job{ID: 1, Chains: []Chain{rigid(4, 5, 100)}}
	if _, err := s.Admit(job); err != nil {
		t.Fatal(err)
	}
	after := s.Headroom(0, 20)
	if !(after.MaxArea < before.MaxArea) {
		t.Fatalf("headroom did not shrink after admission: %v -> %v", before.MaxArea, after.MaxArea)
	}
}
