package core

import "math"

// Eps is the tolerance used for all time comparisons.  Simulation times are
// float64 values in abstract units; arithmetic on Poisson interarrival gaps
// and laxity-scaled deadlines produces values that are equal in intent but
// not bit-for-bit, so every ordering decision goes through these helpers.
const Eps = 1e-9

// Inf is the positive-infinity time used for the open end of the capacity
// profile's final segment.
var Inf = math.Inf(1)

// timeLess reports a < b beyond tolerance.
func timeLess(a, b float64) bool { return a < b-Eps }

// timeLeq reports a <= b within tolerance.
func timeLeq(a, b float64) bool { return a <= b+Eps }

// timeEq reports a == b within tolerance.
func timeEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= Eps
}

// dedupBreak reports whether a prospective profile breakpoint at t should
// be deduplicated against an existing breakpoint at b: the two are closer
// than the Eps tolerance (closed at Eps, matching timeEq), so inserting t
// would create a sub-tolerance segment sliver.  Centralized so the
// breakpoint-dedup policy is explicit and independently testable.
func dedupBreak(b, t float64) bool { return timeEq(b, t) }

// maxTime returns the larger of a and b.
func maxTime(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// minTime returns the smaller of a and b.
func minTime(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
