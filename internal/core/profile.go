package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Profile is the scheduler's view of committed capacity over time: a
// piecewise-constant "used processors" function on [origin, +inf).  Segment i
// covers [times[i], times[i+1]) (the last segment extends to +inf) and uses
// used[i] processors.  Because every reservation is finite, the final segment
// always has zero usage.
//
// The profile only ever grows at reservation boundaries; history strictly
// before the simulation clock can be folded away with TrimBefore, which
// preserves the integral of usage (for utilization accounting) while keeping
// the segment list short in long runs.
type Profile struct {
	capacity int
	times    []float64
	used     []int

	trimmedBusy float64 // processor-time integral folded away by TrimBefore

	// idx, when non-nil, is the segment-tree index over availability (see
	// index.go).  Queries dispatch through it; mutations invalidate it
	// incrementally (leaf refresh) or structurally (lazy rebuild).
	idx *profIndex
}

// NewProfile returns an empty profile for capacity processors starting at
// time origin.
func NewProfile(capacity int, origin float64) *Profile {
	if capacity < 1 {
		panic(fmt.Sprintf("core: profile capacity %d must be >= 1", capacity))
	}
	return &Profile{
		capacity: capacity,
		times:    []float64{origin},
		used:     []int{0},
	}
}

// Capacity returns the total number of processors.
func (p *Profile) Capacity() int { return p.capacity }

// Origin returns the earliest time the profile still represents explicitly.
func (p *Profile) Origin() float64 { return p.times[0] }

// Segments returns the number of explicit segments (for tests and stats).
func (p *Profile) Segments() int { return len(p.times) }

// Clone returns a deep copy of the profile.  A clone of an indexed profile
// is itself indexed (with a fresh, lazily built tree and zeroed counters).
func (p *Profile) Clone() *Profile {
	q := &Profile{
		capacity:    p.capacity,
		times:       append([]float64(nil), p.times...),
		used:        append([]int(nil), p.used...),
		trimmedBusy: p.trimmedBusy,
	}
	if p.idx != nil {
		q.EnableIndex()
	}
	return q
}

// seg returns the index of the segment containing time t, clamping to the
// first segment for t before the origin.
func (p *Profile) seg(t float64) int {
	// Largest i with times[i] <= t (within tolerance).
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t+Eps })
	if i == 0 {
		return 0
	}
	return i - 1
}

// UsedAt returns the number of processors in use at time t.
func (p *Profile) UsedAt(t float64) int { return p.used[p.seg(t)] }

// AvailAt returns the number of free processors at time t.
func (p *Profile) AvailAt(t float64) int { return p.capacity - p.UsedAt(t) }

// MinAvailOn returns the minimum number of free processors over [a, b).
func (p *Profile) MinAvailOn(a, b float64) int {
	if p.idx != nil {
		return p.minAvailOnIndexed(a, b)
	}
	return p.minAvailOnLinear(a, b)
}

// minAvailOnLinear is the reference O(n) implementation of MinAvailOn: a
// straight scan over the segments intersecting [a, b).  It is retained as
// the oracle for the indexed path (see oracle_test.go).
func (p *Profile) minAvailOnLinear(a, b float64) int {
	if !timeLess(a, b) {
		return p.capacity - p.UsedAt(a)
	}
	lo := p.seg(a)
	min := p.capacity
	for i := lo; i < len(p.times); i++ {
		if timeLeq(b, p.times[i]) && i > lo {
			break
		}
		if avail := p.capacity - p.used[i]; avail < min {
			min = avail
		}
		if i == len(p.times)-1 {
			break
		}
	}
	return min
}

// ensureBreak inserts a breakpoint at time t (if one is not already present
// within tolerance) and returns the index of the segment starting at t.
// Times before the origin are clamped to the origin.
//
// Epsilon dedup: a new break is never inserted within Eps (1e-9) of an
// existing one — the reservation boundary snaps to the existing break
// instead (dedupBreak).  Without this, long churn runs whose reservation
// boundaries are recomputed through drifting float arithmetic would
// accumulate near-duplicate breakpoints, inflating segment counts (and
// hence every probe's cost) without changing the profile's shape beyond
// tolerance.  The dedup also upholds the structural invariant that
// consecutive breakpoints are separated by more than Eps, which seg() and
// the segment-tree index both rely on.
func (p *Profile) ensureBreak(t float64) int {
	if timeLeq(t, p.times[0]) {
		return 0
	}
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t+Eps })
	// i is the first index with times[i] > t+Eps, so times[i-1] is the
	// nearest break at or left of t's tolerance band; times[i] is more
	// than Eps away by construction.  Snap to times[i-1] when it is within
	// the dedup threshold.
	if dedupBreak(p.times[i-1], t) {
		return i - 1
	}
	p.markStructDirty()
	p.times = append(p.times, 0)
	p.used = append(p.used, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.used[i+1:], p.used[i:])
	p.times[i] = t
	p.used[i] = p.used[i-1]
	return i
}

// Reserve commits procs processors over [start, finish).  It returns an
// error (leaving the profile unchanged) if the reservation would exceed
// capacity anywhere in the interval, or if the interval is empty or not
// entirely at or after the profile origin.
func (p *Profile) Reserve(procs int, start, finish float64) error {
	if procs < 1 {
		return fmt.Errorf("core: reserve %d procs (must be >= 1)", procs)
	}
	if !timeLess(start, finish) {
		return fmt.Errorf("core: reserve over empty interval [%v, %v)", start, finish)
	}
	if math.IsInf(finish, 1) {
		return fmt.Errorf("core: reserve with infinite finish")
	}
	if timeLess(start, p.times[0]) {
		return fmt.Errorf("core: reserve starting at %v before profile origin %v", start, p.times[0])
	}
	if p.MinAvailOn(start, finish) < procs {
		return fmt.Errorf("core: reserve %d procs over [%v, %v): insufficient capacity", procs, start, finish)
	}
	lo := p.ensureBreak(start)
	hi := p.ensureBreak(finish)
	for i := lo; i < hi; i++ {
		p.used[i] += procs
	}
	// Incremental index maintenance: if both boundaries hit existing
	// breakpoints the tree structure is unchanged and only the touched
	// leaves need refreshing; otherwise ensureBreak already marked the
	// index dirty and the next query rebuilds it.
	if p.idx != nil && !p.idx.dirty && p.idx.n == len(p.used) {
		for i := lo; i < hi; i++ {
			p.idx.leafSet(i, p.capacity-p.used[i])
		}
	}
	return nil
}

// EarliestFit returns the earliest start time s >= est such that procs
// processors are free throughout [s, s+duration) and s+duration <= deadline.
// The second result is false if no such start exists.
func (p *Profile) EarliestFit(procs int, duration, est, deadline float64) (float64, bool) {
	if p.idx != nil {
		return p.earliestFitIndexed(procs, duration, est, deadline)
	}
	return p.earliestFitLinear(procs, duration, est, deadline)
}

// earliestFitLinear is the reference O(n) implementation of EarliestFit: a
// forward scan that restarts after every blocking segment.  It is retained
// as the oracle for the indexed path.
func (p *Profile) earliestFitLinear(procs int, duration, est, deadline float64) (float64, bool) {
	if procs > p.capacity || duration <= 0 {
		return 0, false
	}
	s := maxTime(est, p.times[0])
	if !timeLeq(s+duration, deadline) {
		return 0, false
	}
	i := p.seg(s)
	for {
		// Advance i to the first segment at or containing s.
		for i < len(p.times)-1 && timeLeq(p.times[i+1], s) {
			i++
		}
		// Scan forward from s checking availability until duration covered.
		j := i
		ok := true
		for {
			if p.capacity-p.used[j] < procs {
				ok = false
				break
			}
			if j == len(p.times)-1 || timeLeq(s+duration, p.times[j+1]) {
				break // interval fully covered by available segments
			}
			j++
		}
		if ok {
			return s, true
		}
		// Segment j blocks: restart just after it.
		if j == len(p.times)-1 {
			return 0, false // final (infinite) segment blocks; cannot happen in practice
		}
		s = p.times[j+1]
		i = j + 1
		if !timeLeq(s+duration, deadline) {
			return 0, false
		}
	}
}

// TrimBefore discards all profile structure strictly before time t, folding
// the discarded usage integral into the trimmed-busy accumulator.  The
// profile origin becomes t.  Trimming never changes the result of any query
// at or after t.
func (p *Profile) TrimBefore(t float64) {
	if timeLeq(t, p.times[0]) {
		return
	}
	i := p.seg(t)
	// Fold fully-covered segments [0, i).
	for k := 0; k < i; k++ {
		p.trimmedBusy += float64(p.used[k]) * (p.times[k+1] - p.times[k])
	}
	// Fold the covered prefix of segment i.
	p.trimmedBusy += float64(p.used[i]) * (t - p.times[i])
	p.times = append(p.times[:0], p.times[i:]...)
	p.used = append(p.used[:0], p.used[i:]...)
	p.times[0] = t
	p.markStructDirty()
}

// BusyUpTo returns the usage integral (processor-time units reserved) from
// the beginning of the profile's history up to time t, including any history
// folded away by TrimBefore.
func (p *Profile) BusyUpTo(t float64) float64 {
	busy := p.trimmedBusy
	for i := 0; i < len(p.times); i++ {
		if timeLeq(t, p.times[i]) {
			break
		}
		end := t
		if i < len(p.times)-1 {
			end = minTime(end, p.times[i+1])
		}
		busy += float64(p.used[i]) * (end - p.times[i])
	}
	return busy
}

// BusyOn returns the usage integral over the window [a, b), using only the
// explicitly represented portion of the profile (a must be at or after the
// origin for an exact answer).
func (p *Profile) BusyOn(a, b float64) float64 {
	if !timeLess(a, b) {
		return 0
	}
	var busy float64
	for i := 0; i < len(p.times); i++ {
		segStart := p.times[i]
		segEnd := Inf
		if i < len(p.times)-1 {
			segEnd = p.times[i+1]
		}
		lo := maxTime(a, segStart)
		hi := minTime(b, segEnd)
		if timeLess(lo, hi) {
			busy += float64(p.used[i]) * (hi - lo)
		}
		if timeLeq(b, segEnd) {
			break
		}
	}
	return busy
}

// PeakUsed returns the maximum number of processors committed at any time
// still explicitly represented by the profile (i.e. at or after the origin).
// It is the floor below which the machine cannot shrink without preempting
// reservations.
func (p *Profile) PeakUsed() int {
	peak := 0
	for _, u := range p.used {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// SetCapacity resizes the machine to c processors.  Growth always succeeds;
// shrinking succeeds only when the new capacity still covers every committed
// reservation (PeakUsed) — reservations are never preempted, so a shard or
// arbitrator may only give away uncommitted headroom.  The usage integral
// and all committed reservations are unchanged; availability queries answer
// against the new capacity from now on.
func (p *Profile) SetCapacity(c int) error {
	if c < 1 {
		return fmt.Errorf("core: set capacity %d (must be >= 1)", c)
	}
	if c == p.capacity {
		return nil
	}
	if peak := p.PeakUsed(); c < peak {
		return fmt.Errorf("core: set capacity %d below committed peak usage %d", c, peak)
	}
	p.capacity = c
	// Every index leaf stores availability (capacity - used), so a capacity
	// change invalidates the whole tree; rebuild lazily on the next query.
	p.markStructDirty()
	return nil
}

// LastBreak returns the time of the profile's final breakpoint: the earliest
// time after which the machine is entirely idle forever.
func (p *Profile) LastBreak() float64 { return p.times[len(p.times)-1] }

// NextBreakAfter returns the first breakpoint strictly after time t, and
// false if t is at or past the final breakpoint.
func (p *Profile) NextBreakAfter(t float64) (float64, bool) {
	i := p.seg(t)
	if i+1 < len(p.times) {
		return p.times[i+1], true
	}
	return 0, false
}

// String renders the profile for debugging: "cap=4 [0,5)=2 [5,+inf)=0".
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cap=%d", p.capacity)
	for i := range p.times {
		end := "+inf"
		if i < len(p.times)-1 {
			end = fmt.Sprintf("%g", p.times[i+1])
		}
		fmt.Fprintf(&b, " [%g,%s)=%d", p.times[i], end, p.used[i])
	}
	return b.String()
}

// CheckInvariants verifies the profile's structural invariants: matching
// slice lengths, strictly increasing breakpoints separated by more than Eps
// (the epsilon-dedup guarantee), usage within [0, capacity], an idle final
// segment, and — when a segment-tree index is attached and clean — exact
// agreement between the tree's leaves/nodes and the segment data.  It is
// exported for the differential test harness (internal/core/proftest).
func (p *Profile) CheckInvariants() error {
	if len(p.times) != len(p.used) {
		return fmt.Errorf("core: profile times/used length mismatch")
	}
	if len(p.times) == 0 {
		return fmt.Errorf("core: empty profile")
	}
	for i := 1; i < len(p.times); i++ {
		if !timeLess(p.times[i-1], p.times[i]) {
			return fmt.Errorf("core: profile breakpoints not increasing (or within Eps): %v", p.times)
		}
	}
	for i, u := range p.used {
		if u < 0 || u > p.capacity {
			return fmt.Errorf("core: profile usage %d out of [0,%d] at segment %d", u, p.capacity, i)
		}
	}
	if p.used[len(p.used)-1] != 0 {
		return fmt.Errorf("core: profile final segment must be idle")
	}
	return p.checkIndex()
}

// checkInvariants panics if internal invariants are violated; used by tests.
func (p *Profile) checkInvariants() {
	if err := p.CheckInvariants(); err != nil {
		panic(err.Error())
	}
}
