package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderGantt draws a processor-time Gantt chart of concrete assignments:
// one row per processor, time flowing right, each task labeled by its job
// ID (mod 10 past one digit).  It is the visual complement of the
// maximal-holes view — holes appear as runs of dots.
func RenderGantt(w io.Writer, capacity int, asn []Assignment, width int) error {
	if capacity < 1 {
		return fmt.Errorf("core: gantt capacity %d", capacity)
	}
	if width <= 0 {
		width = 72
	}
	if len(asn) == 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return nil
	}
	t0, t1 := asn[0].Start, asn[0].Finish
	for _, a := range asn {
		if a.Start < t0 {
			t0 = a.Start
		}
		if a.Finish > t1 {
			t1 = a.Finish
		}
	}
	if t1-t0 < 1e-9 {
		t1 = t0 + 1
	}
	col := func(t float64) int {
		c := int((t - t0) / (t1 - t0) * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	rows := make([][]byte, capacity)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	sorted := append([]Assignment(nil), asn...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Start < sorted[b].Start })
	for _, a := range sorted {
		mark := byte('0' + a.JobID%10)
		lo, hi := col(a.Start), col(a.Finish)
		if hi == lo {
			hi = lo + 1
		}
		for _, proc := range a.Procs {
			if proc < 0 || proc >= capacity {
				return fmt.Errorf("core: gantt: processor %d out of range", proc)
			}
			for c := lo; c < hi && c < width; c++ {
				rows[proc][c] = mark
			}
		}
	}
	fmt.Fprintf(w, "t=%-10.4g%*s\n", t0, width-1, fmt.Sprintf("t=%.4g", t1))
	for p := capacity - 1; p >= 0; p-- {
		fmt.Fprintf(w, "cpu%-2d |%s|\n", p, rows[p])
	}
	return nil
}
