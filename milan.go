// Package milan is a Go reproduction of "Exploiting Application Tunability
// for Efficient, Predictable Parallel Resource Management" (Chang,
// Karamcheti, Kedem — IPPS/SPDP 1999): predictable parallel resource
// management that exploits application tunability, the ability of an
// application to trade resource requirements over time while maintaining
// output quality.
//
// The package is a facade over the implementation packages:
//
//   - Scheduling core (tasks, chains, tunable jobs, the greedy
//     maximal-holes heuristic): internal/core, re-exported here.
//   - QoS agents and the QoS arbitrator (Section 3's architecture),
//     including a TCP negotiation protocol: internal/qos.
//   - OR task graphs and the tunability language (Section 4):
//     internal/taskgraph, internal/tunelang.
//   - The Calypso-like parallel runtime (Section 2): internal/calypso.
//   - The synthetic task system and figure harness (Section 5):
//     internal/workload, internal/experiments.
//   - The tunable junction-detection application (Sections 3.2/4.3):
//     internal/junction.
//
// Quick start:
//
//	arb, _ := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 16})
//	job := milan.Job{ID: 1, Chains: []milan.Chain{ ... }}
//	grant, err := milan.NewAgent(job).NegotiateWith(arb)
package milan

import (
	"io"

	"milan/internal/core"
	"milan/internal/durable"
	"milan/internal/durable/vfs"
	"milan/internal/fed"
	"milan/internal/obs"
	"milan/internal/obs/forensics"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
	"milan/internal/qos"
	"milan/internal/taskgraph"
	"milan/internal/tunelang"
)

// Core scheduling model (Section 5 of the paper).
type (
	// Task is one stage of a job's chain; see core.Task.
	Task = core.Task
	// Chain is one execution path of a job.
	Chain = core.Chain
	// Job is a unit of admission; multiple chains make it tunable.
	Job = core.Job
	// Placement is the reservation granted to an admitted job.
	Placement = core.Placement
	// TaskPlacement is one task's slot within a placement.
	TaskPlacement = core.TaskPlacement
	// Options selects scheduler policies (placement engine, tie-breaking,
	// malleable allocation).
	Options = core.Options
	// Scheduler is the greedy admission-control scheduler.
	Scheduler = core.Scheduler
	// Stats carries scheduler counters.
	Stats = core.Stats
	// Hole is a maximal free rectangle in the processor-time plane.
	Hole = core.Hole
	// Profile is the committed-capacity-over-time view of the machine.
	Profile = core.Profile
	// Assignment binds a placed task to concrete processor IDs.
	Assignment = core.Assignment
)

// QoS architecture (Section 3).
type (
	// Agent is the application-side QoS agent.
	Agent = qos.Agent
	// Arbitrator is the system-wide QoS arbitrator.
	Arbitrator = qos.Arbitrator
	// ArbitratorConfig configures NewArbitrator.
	ArbitratorConfig = qos.ArbitratorConfig
	// Grant is a successful negotiation's result.
	Grant = qos.Grant
	// Negotiator is anything an agent can negotiate with.
	Negotiator = qos.Negotiator
	// Decision records one admission decision.
	Decision = qos.Decision
)

// Task graphs and the tunability language (Section 4).
type (
	// Graph is an application's OR task graph.
	Graph = taskgraph.Graph
	// TaskNode, Select, Loop, Seq and Branch build graphs programmatically.
	TaskNode = taskgraph.TaskNode
	// Select models the task_select construct.
	Select = taskgraph.Select
	// Loop models the task_loop construct.
	Loop = taskgraph.Loop
	// Seq runs nodes in order.
	Seq = taskgraph.Seq
	// Branch is one when-arm of a Select.
	Branch = taskgraph.Branch
	// Par is a parallel step group (task_par): execution paths become DAGs.
	Par = taskgraph.Par
	// GraphConfig is one admissible task configuration.
	GraphConfig = taskgraph.Config
	// Env binds control parameters during path enumeration.
	Env = taskgraph.Env
)

// Scheduler policy constants, re-exported for Options.
const (
	EngineProfile = core.EngineProfile
	EngineHoles   = core.EngineHoles

	TieBreakPaper     = core.TieBreakPaper
	TieBreakFirstFit  = core.TieBreakFirstFit
	TieBreakMinArea   = core.TieBreakMinArea
	TieBreakUtilFirst = core.TieBreakUtilFirst

	MalleableDescending     = core.MalleableDescending
	MalleableEarliestFinish = core.MalleableEarliestFinish

	PlaceGreedy    = core.PlaceGreedy
	PlaceBacktrack = core.PlaceBacktrack

	ProfileIndexOn  = core.ProfileIndexOn
	ProfileIndexOff = core.ProfileIndexOff
)

// IndexStats reports the segment-tree profile index's work counters (see
// Options.ProfileIndex and Scheduler.IndexStats).
type IndexStats = core.IndexStats

// ErrRejected is returned when admission control rejects a job.
var ErrRejected = qos.ErrRejected

// NewScheduler returns the greedy admission-control scheduler for `procs`
// processors starting at time origin (nil opts = the paper's policies).
func NewScheduler(procs int, origin float64, opts *Options) *Scheduler {
	return core.NewScheduler(procs, origin, opts)
}

// NewArbitrator returns a QoS arbitrator.
func NewArbitrator(cfg ArbitratorConfig) (*Arbitrator, error) {
	return qos.NewArbitrator(cfg)
}

// NewAgent returns a QoS agent for the application task system.
func NewAgent(job Job) *Agent { return qos.NewAgent(job) }

// ParseTunability compiles tunability-language source (the paper's
// Section-4 extensions) into a task graph; the graph's Job method
// materializes admissible jobs.
func ParseTunability(name, src string) (*Graph, error) {
	return tunelang.Parse(name, src)
}

// AssignProcessors converts count-based placements into concrete
// processor-ID bindings.
func AssignProcessors(capacity int, placements []*Placement) ([]Assignment, error) {
	return core.AssignProcessors(capacity, placements)
}

// DAG scheduling ("a chain, or more generally, a dag" — Section 3.1).
type (
	// DAG is a precedence graph of tasks.
	DAG = core.DAG
	// DAGTask is one DAG node: a task plus predecessor indices.
	DAGTask = core.DAGTask
	// DAGJob is a tunable job over alternative DAGs.
	DAGJob = core.DAGJob
)

// Renegotiation (Section 3.1's dynamic resource levels).
type (
	// DynamicArbitrator renegotiates reservations when capacity changes.
	DynamicArbitrator = qos.DynamicArbitrator
	// DynamicStats counts renegotiation events.
	DynamicStats = qos.DynamicStats
)

// RangeSpec is a fine-continuous tunability knob with symbolic resource
// expressions (Section 4.1's third tunability model).
type RangeSpec = taskgraph.RangeSpec

// NewDynamicArbitrator returns a renegotiating arbitrator for capacity
// that changes over time (machines joining or leaving the pool).
func NewDynamicArbitrator(procs int, opts *Options) (*DynamicArbitrator, error) {
	return qos.NewDynamicArbitrator(procs, opts)
}

// Multi-resource scheduling: the paper's request-vector model ("a vector
// of values, one for each resource in the system").
type (
	// VectorCapacity names the machine's resource dimensions.
	VectorCapacity = core.VectorCapacity
	// VectorTask is a task with a per-dimension request.
	VectorTask = core.VectorTask
	// VectorChain is one execution path of a vector job.
	VectorChain = core.VectorChain
	// VectorJob is a tunable job over vector chains.
	VectorJob = core.VectorJob
	// VectorScheduler admits vector jobs.
	VectorScheduler = core.VectorScheduler
	// VectorPlacement is a vector job's reservation.
	VectorPlacement = core.VectorPlacement
)

// NewVectorScheduler returns a scheduler over a multi-dimensional
// capacity (processors, memory, bandwidth, ...).
func NewVectorScheduler(vc VectorCapacity, origin float64) (*VectorScheduler, error) {
	return core.NewVectorScheduler(vc, origin)
}

// Observability layer: metrics registry, structured decision tracing and
// chrome://tracing export (internal/obs).
type (
	// Observer ties metrics and trace sinks together and adapts them to
	// the hook points of the scheduler, arbitrators, runtime and sim.
	Observer = obs.Observer
	// ObserverConfig configures NewObserver.
	ObserverConfig = obs.Config
	// Registry is a named collection of atomic metrics.
	Registry = obs.Registry
	// RegistrySnapshot is a point-in-time registry state.
	RegistrySnapshot = obs.Snapshot
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// TraceEventType names a trace event.
	TraceEventType = obs.EventType
	// TraceSink receives structured trace events.
	TraceSink = obs.TraceSink
	// RingSink retains the most recent trace events.
	RingSink = obs.RingSink
	// JSONLSink streams trace events as JSON lines.
	JSONLSink = obs.JSONLSink
	// SchedulerHooks instruments the admission pipeline (core.Options.Hooks).
	SchedulerHooks = core.Hooks
	// Tracer mints per-request trace identities and retains completed
	// lifecycle spans (arrival → route → plan → reserve → run → finish).
	Tracer = obs.Tracer
	// SpanRec is one completed span of a request's lifecycle.
	SpanRec = obs.SpanRec
	// SpanNode is one node of a reconstructed per-request span tree.
	SpanNode = obs.SpanNode
)

// Predictability auditor: streaming SLO engine (admitted ⇒ deadline met),
// anomaly-triggered flight recorder and differential snapshot replay
// (internal/obs/slo).
type (
	// SLOEngine audits deadline conformance, admission latency and
	// utilization objectives with multi-window burn-rate alerts.
	SLOEngine = slo.Engine
	// SLOOptions configures NewSLOEngine.
	SLOOptions = slo.Options
	// SLOReport is a point-in-time conformance report.
	SLOReport = slo.Report
	// FlightRecorder snapshots recent spans and decision events to JSONL
	// when an anomaly trips.
	FlightRecorder = slo.Recorder
	// FlightSnapshot is one decoded flight-recorder snapshot.
	FlightSnapshot = slo.Snapshot
	// ReplayVerdict localizes a snapshot's fault to planner, router,
	// rebalancer or runtime.
	ReplayVerdict = slo.Verdict
)

// NewSLOEngine returns a streaming SLO auditor.
func NewSLOEngine(opts SLOOptions) *SLOEngine { return slo.New(opts) }

// NewFlightRecorder returns an anomaly-triggered flight recorder holding
// up to spanCap spans and eventCap decision events per snapshot.
func NewFlightRecorder(spanCap, eventCap int) *FlightRecorder {
	return slo.NewRecorder(spanCap, eventCap)
}

// ReplaySnapshot localizes a flight snapshot's fault offline; the verdict
// is a pure function of the snapshot.
func ReplaySnapshot(s *FlightSnapshot) ReplayVerdict { return slo.Replay(s) }

// BuildSpanTrees reconstructs one span tree per trace from completed
// span records (e.g. Tracer.Spans or a flight snapshot's spans).
func BuildSpanTrees(recs []SpanRec) map[obs.TraceID]*SpanNode {
	return obs.BuildSpanTrees(recs)
}

// Sharded admission plane: the machine's processor pool partitioned across
// independently locked arbitrator shards with best-of-k routing and
// broker-driven capacity rebalancing (internal/fed).
type (
	// FedArbitrator is the federated admission plane; it satisfies the
	// same negotiation surface as Arbitrator.
	FedArbitrator = fed.Arbitrator
	// FedConfig configures NewFederatedArbitrator.
	FedConfig = fed.Config
	// FedShard is one partition of the plane's processor pool.
	FedShard = fed.Shard
	// FedMetrics are the plane's obs instruments.
	FedMetrics = fed.Metrics
	// Rebalancer migrates processors between a plane's shards.
	Rebalancer = fed.Rebalancer
)

// NewFederatedArbitrator returns a sharded admission plane.
func NewFederatedArbitrator(cfg FedConfig) (*FedArbitrator, error) {
	return fed.New(cfg)
}

// NewFedMetrics resolves the plane's instruments in a registry, for
// FedConfig.Metrics.
func NewFedMetrics(reg *Registry) *FedMetrics { return fed.NewMetrics(reg) }

// Admission forensics (rejection explainer, counterfactual what-if
// probes, headroom forecasting — internal/core + internal/obs/forensics).
type (
	// PlanDiagnosis explains one failed planning pass per candidate chain,
	// with a replay-verified suggestion that would admit the job.
	PlanDiagnosis = core.PlanDiagnosis
	// ChainDiagnosis is one candidate chain's failure analysis.
	ChainDiagnosis = core.ChainDiagnosis
	// SlackVector is the per-axis minimal relaxation admitting a chain.
	SlackVector = core.SlackVector
	// Constraint names the binding constraint of a failed placement
	// (width, deadline or capacity).
	Constraint = core.Constraint
	// WhatIfDelta is a counterfactual relaxation for Scheduler.WhatIf /
	// Arbitrator.WhatIf probes.
	WhatIfDelta = core.WhatIfDelta
	// Headroom is the "largest admissible job" frontier of a machine (or,
	// merged, of a sharded plane) over a sliding window.
	Headroom = core.Headroom
	// ForensicsRecorder retains recent rejection diagnoses in a bounded
	// ring with a per-job index, JSONL export and an /explain endpoint.
	ForensicsRecorder = forensics.Recorder
	// ForensicsRecord is one retained rejection diagnosis.
	ForensicsRecord = forensics.Record
	// HeadroomForecaster publishes the advertised frontier as gauges and
	// audits rejections against it (forecast misses).
	HeadroomForecaster = forensics.Forecaster
)

// Binding-constraint names reported by ChainDiagnosis.Constraint.
const (
	ConstraintWidth    = core.ConstraintWidth
	ConstraintDeadline = core.ConstraintDeadline
	ConstraintCapacity = core.ConstraintCapacity
)

// NewForensicsRecorder returns a rejection recorder retaining up to n
// diagnoses (n <= 0 selects the default capacity).  Install its Sink as
// Options.Diagnosis (or FedConfig.Diagnosis) to capture every rejection.
func NewForensicsRecorder(n int) *ForensicsRecorder { return forensics.NewRecorder(n) }

// NewHeadroomForecaster returns an empty headroom forecaster; feed it
// with Advertise (e.g. from FedConfig.HeadroomSink) and audit rejections
// with NoteRejection.
func NewHeadroomForecaster() *HeadroomForecaster { return forensics.NewForecaster() }

// DecodeForensicsJSONL parses a ForensicsRecorder.WriteJSONL stream back
// into records (the offline half of the rejection-cause artifact).
func DecodeForensicsJSONL(r io.Reader) ([]ForensicsRecord, error) {
	return forensics.DecodeJSONL(r)
}

// NewObserver returns an observer with the given configuration.
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewRingSink returns a trace ring buffer holding up to n events.
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// Utilization ledger: per-tenant capacity accounting with waste
// attribution across shards (internal/obs/ledger).
type (
	// Ledger is one shard's time-bucketed per-tenant capacity ledger
	// (committed, realized and capacity areas; tiered-ring retention).
	Ledger = ledger.Ledger
	// LedgerConfig configures NewLedger / NewShardedLedger.
	LedgerConfig = ledger.Config
	// LedgerKey identifies one accounting stream (tenant, class).
	LedgerKey = ledger.Key
	// ShardedLedger is one ledger per admission shard with lock-free
	// merged snapshots, for FedConfig.Ledger.
	ShardedLedger = ledger.Sharded
	// LedgerSnapshot is an immutable point-in-time view: per-key totals,
	// time buckets and the derived utilization/waste/fragmentation/
	// fair-share series.
	LedgerSnapshot = ledger.Snapshot
	// LedgerTotals is one (tenant, class) stream's exact totals.
	LedgerTotals = ledger.Totals
	// LedgerBucket is one time slot of a snapshot.
	LedgerBucket = ledger.Bucket
	// FairShare is one stream's share of reserved area relative to an
	// equal split.
	FairShare = ledger.FairShare
)

// NewLedger returns a single utilization ledger (a monolithic
// arbitrator's accounting; hook it with Ledger.DecisionObserver).
func NewLedger(cfg LedgerConfig) *Ledger { return ledger.New(cfg) }

// NewShardedLedger returns n per-shard ledgers for a federated plane.
func NewShardedLedger(cfg LedgerConfig, n int) *ShardedLedger {
	return ledger.NewSharded(cfg, n)
}

// DecodeLedgerJSONL parses a LedgerSnapshot.WriteJSONL stream back into
// a snapshot (the offline half of the accounting artifact).
func DecodeLedgerJSONL(r io.Reader) (*LedgerSnapshot, error) {
	return ledger.DecodeJSONL(r)
}

type (
	// Shedder fronts any Negotiator with saturation admission control:
	// per-tenant quotas, weighted-fair service across priority classes,
	// and graceful load shedding with a bounded-starvation guarantee.
	Shedder = qos.Shedder
	// ShedderConfig configures NewShedder (quotas, class weights,
	// saturation threshold, starvation window).
	ShedderConfig = qos.ShedConfig
	// ShedDecision is one admission-control verdict, delivered to
	// ShedderConfig.Observer.
	ShedDecision = qos.ShedDecision
	// ShedderStats aggregates offered/admitted/shed counts per class.
	ShedderStats = qos.ShedStats
)

// ErrShed is the rejection returned for load-shed jobs; it wraps
// ErrRejected, so existing callers observe a normal rejection.
var ErrShed = qos.ErrShed

// Durable admission plane: write-ahead log + snapshots + replay-on-open
// crash recovery (internal/durable, internal/durable/vfs).
type (
	// DurablePlane is a sharded admission plane whose every admission
	// decision is committed to a write-ahead log before it is
	// acknowledged; reopening the log recovers the plane bit-exactly.
	DurablePlane = durable.Plane
	// DurableConfig configures OpenDurablePlane.
	DurableConfig = durable.Config
	// DurableStoreOptions selects the log's sync policy and snapshot
	// cadence.
	DurableStoreOptions = durable.StoreOptions
	// DurableSyncPolicy is when the log fsyncs (always, every-n, never).
	DurableSyncPolicy = durable.SyncPolicy
	// DurableRecovered reports what replay-on-open reconstructed.
	DurableRecovered = durable.Recovered
	// DurableState is the plane's committed state: the capacity profile,
	// live grants and the recovery clock.
	DurableState = durable.State
	// DurableMetrics are the durability layer's obs instruments.
	DurableMetrics = durable.Metrics
	// VFS is the durability layer's filesystem seam.
	VFS = vfs.FS
	// MemFS is the deterministic in-memory filesystem with an explicit
	// crash/durability model, for tests and crash loops.
	MemFS = vfs.Mem
	// FaultFS wraps any VFS with failing- and lying-disk injection.
	FaultFS = vfs.Fault
)

// Log sync policies for DurableStoreOptions.Sync.
const (
	DurableSyncAlways = durable.SyncAlways
	DurableSyncEveryN = durable.SyncEveryN
	DurableSyncNever  = durable.SyncNever
)

// OpenDurablePlane opens (or creates) a durable admission plane backed by
// a write-ahead log under cfg.Dir, replaying any existing log first.
func OpenDurablePlane(cfg DurableConfig) (*DurablePlane, DurableRecovered, error) {
	return durable.OpenPlane(cfg)
}

// ParseDurableSyncPolicy parses "always", "every-n" or "never".
func ParseDurableSyncPolicy(s string) (DurableSyncPolicy, error) {
	return durable.ParseSyncPolicy(s)
}

// DiffDurableStates reports the first field where two recovered states
// diverge (nil = bitwise-identical); the crash-loop oracle's comparator.
func DiffDurableStates(got, want *DurableState) error {
	return durable.DiffStates(got, want)
}

// NewDurableMetrics resolves the durability instruments in a registry,
// for DurableConfig.Metrics.
func NewDurableMetrics(reg *Registry) *DurableMetrics { return durable.NewMetrics(reg) }

// NewMemFS returns an empty in-memory filesystem (nothing durable yet).
func NewMemFS() *MemFS { return vfs.NewMem() }

// NewFaultFS wraps a filesystem with fault injection (write/sync error
// countdowns, fsync/rename lies, crash simulation).
func NewFaultFS(inner VFS) *FaultFS { return vfs.NewFault(inner) }

// NewShedder wraps a negotiator (monolithic or federated arbitrator)
// with quota/weighted-fair admission shedding.
func NewShedder(inner Negotiator, cfg ShedderConfig) (*Shedder, error) {
	return qos.NewShedder(inner, cfg)
}
