package milan_test

import (
	"errors"
	"testing"

	"milan"
)

func TestFacadeEndToEnd(t *testing.T) {
	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	job := milan.Job{ID: 1, Chains: []milan.Chain{
		{Name: "fast", Quality: 1, Tasks: []milan.Task{
			{Name: "a", Procs: 8, Duration: 5, Deadline: 50},
		}},
		{Name: "slow", Quality: 0.9, Tasks: []milan.Task{
			{Name: "b", Procs: 2, Duration: 20, Deadline: 50},
		}},
	}}
	grant, err := milan.NewAgent(job).NegotiateWith(arb)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Chain != 0 {
		t.Fatalf("chain = %d, want 0 (earliest finish)", grant.Chain)
	}
	asn, err := milan.AssignProcessors(8, []*milan.Placement{&grant.Placement})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn) != 1 || len(asn[0].Procs) != 8 {
		t.Fatalf("assignment = %+v", asn)
	}
}

func TestFacadeRejection(t *testing.T) {
	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	job := milan.Job{ID: 1, Chains: []milan.Chain{
		{Name: "big", Tasks: []milan.Task{{Name: "a", Procs: 4, Duration: 5, Deadline: 50}}},
	}}
	_, err = milan.NewAgent(job).NegotiateWith(arb)
	if !errors.Is(err, milan.ErrRejected) {
		t.Fatalf("err = %v, want milan.ErrRejected", err)
	}
}

func TestFacadeParseTunability(t *testing.T) {
	g, err := milan.ParseTunability("demo", `
task_control_parameters { mode; }
task work deadline 20 params (mode) {
    config (mode = 1) require 4 procs 5 time quality 1.0;
    config (mode = 2) require 1 procs 18 time quality 0.8;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	job, envs, err := g.Job(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !job.Tunable() || len(envs) != 2 {
		t.Fatalf("job = %+v envs = %v", job, envs)
	}
	sched := milan.NewScheduler(4, 0, nil)
	pl, err := sched.Admit(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chain != 0 {
		t.Fatalf("chain = %d, want 0 (4x5 finishes first)", pl.Chain)
	}
}

func TestFacadeSchedulerOptions(t *testing.T) {
	opts := &milan.Options{
		Engine:    milan.EngineHoles,
		TieBreak:  milan.TieBreakMinArea,
		Malleable: milan.MalleableEarliestFinish,
	}
	s := milan.NewScheduler(4, 0, opts)
	job := milan.Job{ID: 1, Chains: []milan.Chain{
		{Name: "m", Tasks: []milan.Task{{Name: "w", Malleable: true, Work: 8, MaxProcs: 4, Deadline: 100}}},
	}}
	pl, err := s.Admit(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tasks[0].Procs != 4 {
		t.Fatalf("procs = %d, want 4", pl.Tasks[0].Procs)
	}
}
