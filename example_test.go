package milan_test

import (
	"errors"
	"fmt"

	"milan"
)

// The headline flow: a tunable job offers two shapes; the arbitrator
// reserves the one that finishes first on the current schedule.
func ExampleAgent_NegotiateWith() {
	arb, _ := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 16})
	job := milan.Job{ID: 1, Chains: []milan.Chain{
		{Name: "wide-first", Tasks: []milan.Task{
			{Name: "a", Procs: 16, Duration: 25, Deadline: 200},
			{Name: "b", Procs: 4, Duration: 100, Deadline: 250},
		}},
		{Name: "narrow-first", Tasks: []milan.Task{
			{Name: "b", Procs: 4, Duration: 100, Deadline: 200},
			{Name: "a", Procs: 16, Duration: 25, Deadline: 250},
		}},
	}}
	grant, err := milan.NewAgent(job).NegotiateWith(arb)
	if err != nil {
		fmt.Println("rejected")
		return
	}
	fmt.Printf("path %d finishes at t=%.0f\n", grant.Chain, grant.Finish())
	// Output: path 0 finishes at t=125
}

// Admission control rejects a job whose every path would miss a deadline,
// instead of letting it run late.
func ExampleArbitrator_rejection() {
	arb, _ := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 4})
	hog := milan.Job{ID: 1, Chains: []milan.Chain{
		{Tasks: []milan.Task{{Name: "h", Procs: 4, Duration: 50, Deadline: 50}}},
	}}
	milan.NewAgent(hog).NegotiateWith(arb)

	urgent := milan.Job{ID: 2, Chains: []milan.Chain{
		{Tasks: []milan.Task{{Name: "u", Procs: 4, Duration: 10, Deadline: 30}}},
	}}
	_, err := milan.NewAgent(urgent).NegotiateWith(arb)
	fmt.Println(errors.Is(err, milan.ErrRejected))
	// Output: true
}

// Tunability in the paper's language: the preprocessor derives the task
// graph, the arbitrator picks a path, and the environment carries the
// control-parameter values to configure the application with.
func ExampleParseTunability() {
	graph, err := milan.ParseTunability("app", `
task_control_parameters { passes; }
task analyze deadline 30 params (passes) {
    config (passes = 2) require 8 procs 10 time quality 1.0;
    config (passes = 1) require 2 procs 10 time quality 0.9;
}
`)
	if err != nil {
		panic(err)
	}
	job, envs, _ := graph.Job(1, 0, 0)

	// A busy machine pushes the job onto the cheap path.
	arb, _ := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 8})
	busy := milan.Job{ID: 0, Chains: []milan.Chain{
		{Tasks: []milan.Task{{Name: "bg", Procs: 6, Duration: 15, Deadline: 15}}},
	}}
	milan.NewAgent(busy).NegotiateWith(arb)

	grant, _ := milan.NewAgent(job).NegotiateWith(arb)
	fmt.Printf("passes=%v quality=%.1f\n", envs[grant.Chain]["passes"], grant.Quality)
	// Output: passes=1 quality=0.9
}

// DAG jobs: a fork-join diamond schedules its independent branches
// concurrently when the machine is wide enough.
func ExampleScheduler_AdmitDAG() {
	s := milan.NewScheduler(8, 0, nil)
	diamond := milan.DAG{
		Name: "diamond",
		Tasks: []milan.DAGTask{
			{Task: milan.Task{Name: "prep", Procs: 2, Duration: 5, Deadline: 100}},
			{Task: milan.Task{Name: "left", Procs: 4, Duration: 10, Deadline: 100}, Preds: []int{0}},
			{Task: milan.Task{Name: "right", Procs: 4, Duration: 10, Deadline: 100}, Preds: []int{0}},
			{Task: milan.Task{Name: "merge", Procs: 2, Duration: 5, Deadline: 100}, Preds: []int{1, 2}},
		},
	}
	pl, _ := s.AdmitDAG(milan.DAGJob{ID: 1, Alts: []milan.DAG{diamond}})
	fmt.Printf("branches start together at t=%.0f; makespan %.0f\n",
		pl.Tasks[1].Start, pl.Tasks[3].Finish)
	// Output: branches start together at t=5; makespan 20
}

// Multi-resource requests: memory can be the binding constraint even when
// processors are free.
func ExampleVectorScheduler() {
	vc := milan.VectorCapacity{Names: []string{"procs", "memMB"}, Size: []int{8, 1024}}
	s, _ := milan.NewVectorScheduler(vc, 0)
	hog := milan.VectorJob{ID: 1, Chains: []milan.VectorChain{
		{Tasks: []milan.VectorTask{{Req: []int{1, 900}, Duration: 20, Deadline: 100}}},
	}}
	s.Admit(hog)
	job := milan.VectorJob{ID: 2, Chains: []milan.VectorChain{
		{Tasks: []milan.VectorTask{{Req: []int{4, 512}, Duration: 5, Deadline: 100}}},
	}}
	pl, _ := s.Admit(job)
	fmt.Printf("starts at t=%.0f (memory-bound)\n", pl.Tasks[0].Start)
	// Output: starts at t=20 (memory-bound)
}
